"""Ablation — the vertex replication threshold.

§4.5: "Each split incurs an overhead, and so we only want to target
vertices that cause significant load imbalance or memory pressure and
reduce the number of unnecessary replications."  This ablation sweeps
the threshold from split-everything-hot to split-nothing and shows the
trade-off the paper's choice navigates: load balance vs replica-sync
overhead.
"""

import numpy as np
import pytest

from benchmarks.common import dataset_edges
from repro.bench import Table, print_experiment_header
from repro.core import ElGA, PageRank
from repro.net.message import PacketType

NODES = 4
AGENTS_PER_NODE = 8
# Thresholds as multiples of the per-agent fair share of edges.
MULTIPLIERS = [0.25, 0.5, 1.0, 2.0, None]  # None = splitting disabled


def run_experiment():
    us, vs, _ = dataset_edges("twitter-2010", scale=0.6)
    per_agent = len(us) // (NODES * AGENTS_PER_NODE)
    rows = []
    for mult in MULTIPLIERS:
        threshold = 10**9 if mult is None else max(50, int(mult * per_agent))
        elga = ElGA(
            nodes=NODES,
            agents_per_node=AGENTS_PER_NODE,
            seed=19,
            replication_threshold=threshold,
            keep_reference=False,
        )
        elga.ingest_edges(us, vs, n_streamers=4)
        loads = np.array(list(elga.cluster.edge_loads().values()), dtype=float)
        result = elga.run(PageRank(max_iters=5, tol=1e-15))
        sync_msgs = elga.cluster.network.stats.by_type_count[PacketType.REPLICA_SYNC]
        rows.append(
            {
                "mult": "off" if mult is None else f"{mult}x",
                "splits": len(elga.cluster.lead.state.split_vertices),
                "imbalance": float(loads.max() / loads.mean()),
                "s_per_iter": result.mean_step_seconds(),
                "sync_msgs": int(sync_msgs),
            }
        )
    return rows


def test_ablation_replication_threshold(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Ablation", "replication threshold (multiples of per-agent edge share)"
    )
    table = Table(["threshold", "split vertices", "edge imbalance", "PR s/iter", "replica msgs"])
    for r in rows:
        table.add_row(r["mult"], r["splits"], f"{r['imbalance']:.3f}", r["s_per_iter"], r["sync_msgs"])
    table.show()

    by = {r["mult"]: r for r in rows}
    # Splitting the imbalance-causing vertices improves balance over not
    # splitting (0.5x splits the real hubs at this scale; 1.0x may only
    # catch one or two and is noisier)...
    assert by["0.5x"]["imbalance"] < by["off"]["imbalance"]
    # ...and lowers per-iteration runtime (the straggler shrinks).
    assert by["0.5x"]["s_per_iter"] < by["off"]["s_per_iter"]
    # Lower thresholds split more vertices and pay more replica traffic
    # — the "unnecessary replications" the paper avoids.
    assert by["0.25x"]["splits"] >= by["0.5x"]["splits"] >= by["off"]["splits"]
    assert by["0.25x"]["sync_msgs"] > by["0.5x"]["sync_msgs"]
    assert by["off"]["sync_msgs"] == 0
