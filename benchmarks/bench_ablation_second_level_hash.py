"""Ablation — the second-level consistent hash for split vertices.

§3.4.1's two-level design: the first consistent hash picks a split
vertex's replica set; a second *consistent* hash (rendezvous here)
distributes its edges among the replicas.  The obvious cheaper
alternative — ``hash(other) % k`` — balances just as well but is not
consistent: when the replication factor k grows by one, modulo
reassigns ~(k−1)/k of the vertex's edges, while the consistent scheme
moves only the share the new replica claims (~1/k).  Edge movement is
exactly what elasticity needs to minimize.
"""

import numpy as np
import pytest

from benchmarks.common import dataset_edges
from repro.bench import Table, print_experiment_header
from repro.hashing import ConsistentHashRing, wang64
from repro.partition.placer import _rendezvous_pick

U64 = np.uint64


def modulo_pick(replicas, other_hashes):
    reps = np.asarray(replicas, dtype=np.int64)
    return reps[(other_hashes % U64(len(reps))).astype(np.int64)]


def run_experiment():
    us, vs, _ = dataset_edges("twitter-2010", scale=0.6)
    ring = ConsistentHashRing(range(32), virtual_factor=100)
    hub = int(np.argmax(np.bincount(us)))  # a real hub's out-edges
    others = vs[us == hub].astype(np.uint64)
    other_hashes = np.asarray(wang64(others))

    rows = []
    for k in (2, 3, 4, 6, 8):
        replicas_k = ring.successors(hub, k)
        replicas_k1 = ring.successors(hub, k + 1)
        rz_before = _rendezvous_pick(replicas_k, other_hashes)
        rz_after = _rendezvous_pick(replicas_k1, other_hashes)
        mod_before = modulo_pick(replicas_k, other_hashes)
        mod_after = modulo_pick(replicas_k1, other_hashes)
        rows.append(
            {
                "k": k,
                "rz_moved": float((rz_before != rz_after).mean()),
                "mod_moved": float((mod_before != mod_after).mean()),
                "rz_balance": float(np.bincount(
                    np.searchsorted(np.sort(replicas_k), rz_before), minlength=k
                ).max() * k / len(others)),
                "mod_balance": float(np.bincount(
                    np.searchsorted(np.sort(replicas_k), mod_before), minlength=k
                ).max() * k / len(others)),
            }
        )
    return rows, len(others)


def test_ablation_second_level_hash(benchmark):
    rows, n_edges = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Ablation", f"second-level hash on a hub's {n_edges} edges: movement when k -> k+1"
    )
    table = Table(["k", "moved (consistent)", "moved (modulo)", "imbalance (consistent)", "imbalance (modulo)"])
    for r in rows:
        table.add_row(
            r["k"],
            f"{100 * r['rz_moved']:.1f}%",
            f"{100 * r['mod_moved']:.1f}%",
            f"{r['rz_balance']:.2f}",
            f"{r['mod_balance']:.2f}",
        )
    table.show()

    for r in rows:
        k = r["k"]
        # Consistent (rendezvous) movement ≈ 1/(k+1): only the new
        # replica's claim moves.
        assert r["rz_moved"] < 1.6 / (k + 1), r
        # Modulo reshuffles ≈ k/(k+1) of the edges — k× more.  The
        # ratio grows with k (2× at k=2, ~8× at k=8).
        assert r["mod_moved"] > 1.8 * r["rz_moved"], r
        assert r["mod_moved"] > 0.5
        # Both balance the edges across replicas comparably.
        assert r["rz_balance"] < 1.5
