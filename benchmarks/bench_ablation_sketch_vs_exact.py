"""Ablation — CountMinSketch vs an exact global degree table.

§1.2 / §3: prior dynamic partitioners needed O(n) global state (a
degree entry per vertex) on *every participant*; ElGA's contribution is
replacing it with a fixed-size sketch.  This ablation quantifies the
trade at paper scale and at ours: broadcast size (what every
directory update ships to every participant) vs estimation error (which
the replication decision tolerates because CountMin only overestimates).
"""

import numpy as np
import pytest

from benchmarks.common import dataset_edges
from repro.bench import Table, print_experiment_header
from repro.sketch import CountMinSketch


def run_experiment():
    us, vs, n = dataset_edges("twitter-2010", scale=1.0)
    true_deg = np.bincount(us, minlength=n) + np.bincount(vs, minlength=n)
    vertices = np.nonzero(true_deg)[0]

    sketch = CountMinSketch(width=2**12, depth=8, seed=20)
    sketch.add(us)
    sketch.add(vs)
    est = sketch.query(vertices)
    err = est - true_deg[vertices]

    exact_bytes = len(vertices) * 16  # id + count per present vertex
    rows = {
        "exact_bytes": exact_bytes,
        "sketch_bytes": sketch.nbytes,
        "max_err": int(err.max()),
        "underestimates": int((err < 0).sum()),
        "n_vertices": len(vertices),
    }
    # Paper-scale projection: Table 2's largest graph has 4.0 B vertices.
    rows["paper_exact_gb"] = 4.0e9 * 16 / 1e9
    rows["paper_sketch_mb"] = CountMinSketch(width=2**18, depth=8, dtype=np.int32).nbytes / 1e6
    return rows


def test_ablation_sketch_vs_exact(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Ablation", "global degree state: CountMinSketch vs exact table"
    )
    table = Table(["quantity", "exact table", "CountMinSketch"])
    table.add_row("broadcast bytes (this scale)", r["exact_bytes"], r["sketch_bytes"])
    table.add_row("broadcast at paper scale", f"{r['paper_exact_gb']:.0f} GB", f"{r['paper_sketch_mb']:.0f} MB")
    table.add_row("max degree error", 0, r["max_err"])
    table.add_row("underestimates", 0, r["underestimates"])
    table.show()

    # The sketch never underestimates (the safe direction) ...
    assert r["underestimates"] == 0
    # ... and at paper scale the exact table is thousands of times the
    # sketch's size — per participant, on every directory broadcast.
    assert r["paper_exact_gb"] * 1e3 / r["paper_sketch_mb"] > 1000
    # At our scale the sketch is within the same order as the small
    # exact table (the win grows with n, which is the whole point:
    # sketch size is O(d·w), independent of the graph).
    assert r["sketch_bytes"] < 20 * r["exact_bytes"]
