"""Data-plane fast-path benchmark — combining + coalescing on vs off.

Runs PageRank and WCC on a hub-heavy power-law graph at several split
fractions (controlled via the replication threshold) twice each:

* **off** — the pre-PR data plane: one packet per emission, one ack per
  packet, raw batches buffered whole (``combining=False``,
  ``coalescing=False``, ``ack_batch_window=0``),
* **on**  — the fast path (defaults): sender-side canonical combining,
  per-(dst, ptype) round coalescing, cumulative batched acks.

Reported per cell:

* logical (dst, val) pairs emitted per wall-clock second — the
  end-to-end throughput number the PR claims,
* data-plane packets and bytes on the wire (VERTEX_MSG + REPLICA_SYNC +
  REPLICA_VALUE + VERTEX_MSG_ACK),
* the measured split fraction, pairs combined away, acks batched away.

Results land in ``BENCH_dataplane.json``.  ``--smoke`` runs only the
10%-split PageRank cell and asserts the >= 2x wire message reduction
the PR gates CI on.
"""

from __future__ import annotations

import gc
import json
import math
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench import Table, print_experiment_header
from repro.core import ElGA, PageRank, WCC
from repro.gen import powerlaw_graph
from repro.net.message import PacketType

N_VERTICES = 600
N_EDGES = 4000
ALPHA = 1.8  # heavy hubs: lots of split-vertex choreography
PR_ITERS = 10
SEED = 9
# Thresholds chosen so the measured split fraction lands near the
# labelled mix on this graph (hubs in a Zipf(1.8) degree sequence).
SPLIT_MIXES = {"0%": 10_000, "1%": 120, "10%": 28}
DATA_PTYPES = (
    PacketType.VERTEX_MSG,
    PacketType.REPLICA_SYNC,
    PacketType.REPLICA_VALUE,
    PacketType.VERTEX_MSG_ACK,
)
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dataplane.json"

OFF = dict(combining=False, coalescing=False, ack_batch_window=0.0)
ON = {}  # the defaults are the fast path


def _graph():
    us, vs, n = powerlaw_graph(N_VERTICES, N_EDGES, alpha=ALPHA, seed=SEED)
    return us, vs, n


def _program(name: str):
    if name == "pagerank":
        return PageRank(max_iters=PR_ITERS, tol=1e-15)
    return WCC()


def _run_cell(program_name: str, threshold: int, overrides: dict, repeats: int = 2) -> dict:
    us, vs, n = _graph()
    # The sim is deterministic, so every repeat produces identical
    # counters and values; repeating only de-noises the wall clock
    # (best-of, GC paused while timed) on a shared/contended host.
    wall = float("inf")
    for _ in range(max(1, repeats)):
        engine = ElGA(
            nodes=2,
            agents_per_node=4,
            seed=SEED,
            replication_threshold=threshold,
            keep_reference=False,
            **overrides,
        )
        engine.ingest_edges(us, vs)
        before = engine.cluster.network.stats.snapshot()
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        result = engine.run(_program(program_name))
        wall = min(wall, time.perf_counter() - start)
        gc.enable()

    stats = engine.cluster.network.stats
    agents = list(engine.cluster.agents.values())
    pairs = sum(a.perf.counts.get("dataplane_pairs_emitted", 0) for a in agents)
    packets = sum(
        stats.by_type_count[p] - before.by_type_count[p] for p in DATA_PTYPES
    )
    nbytes = sum(
        stats.by_type_bytes[p] - before.by_type_bytes[p] for p in DATA_PTYPES
    )
    return {
        "wall_seconds": wall,
        "pairs_emitted": int(pairs),
        "pairs_per_sec": pairs / wall,
        "data_packets": int(packets),
        "data_bytes": int(nbytes),
        "sim_seconds": result.sim_seconds,
        "split_vertices": len(engine.cluster.lead.state.split_vertices),
        "split_fraction": len(engine.cluster.lead.state.split_vertices) / n,
        "pairs_combined": sum(a.metrics.pairs_combined for a in agents),
        "acks_batched": sum(a.metrics.acks_batched for a in agents),
        "checksum": float(sum(result.values.values())),
    }


def _cell(program_name: str, mix: str) -> dict:
    threshold = SPLIT_MIXES[mix]
    off = _run_cell(program_name, threshold, OFF)
    on = _run_cell(program_name, threshold, ON)
    # The legacy baseline reduces each round in one flat fold; the fast
    # path reduces in two canonical levels (per-sender partials, then a
    # cross-sender fold).  For min/max the grouping is irrelevant; for
    # float sums it regroups the additions, so the cells agree to ~1 ulp
    # rather than bitwise.  The *bitwise* contracts (combining on vs off
    # under coalescing; chaos vs fault-free) live in tests/cluster/
    # test_dataplane.py and tests/chaos/.
    assert math.isclose(on["checksum"], off["checksum"], rel_tol=1e-12), (
        f"fast path changed the answer: {on['checksum']} != {off['checksum']}"
    )
    return {
        "replication_threshold": threshold,
        "split_fraction": on["split_fraction"],
        "off": off,
        "on": on,
        "pairs_per_sec_speedup": on["pairs_per_sec"] / off["pairs_per_sec"],
        "packet_reduction": off["data_packets"] / max(1, on["data_packets"]),
        "byte_reduction": off["data_bytes"] / max(1, on["data_bytes"]),
    }


def run_experiment(smoke: bool = False) -> dict:
    cells = (
        [("pagerank", "10%")]
        if smoke
        else [(p, m) for p in ("pagerank", "wcc") for m in SPLIT_MIXES]
    )
    results: dict = {}
    for program_name, mix in cells:
        results.setdefault(program_name, {})[mix] = _cell(program_name, mix)
    payload = {
        "n_vertices": N_VERTICES,
        "n_edges": N_EDGES,
        "alpha": ALPHA,
        "pr_iters": PR_ITERS,
        "split_mixes": {k: v for k, v in SPLIT_MIXES.items()},
        "programs": results,
    }
    if not smoke:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def show(payload: dict) -> None:
    print_experiment_header(
        "Data-plane fast path",
        "combining + coalescing + batched acks, on vs off",
    )
    table = Table(
        ["program", "mix", "split%", "pairs/s off", "pairs/s on",
         "speedup", "pkt ÷", "bytes ÷"]
    )
    for program_name, mixes in payload["programs"].items():
        for mix, cell in mixes.items():
            table.add_row(
                program_name,
                mix,
                100.0 * cell["split_fraction"],
                cell["off"]["pairs_per_sec"],
                cell["on"]["pairs_per_sec"],
                cell["pairs_per_sec_speedup"],
                cell["packet_reduction"],
                cell["byte_reduction"],
            )
    table.show()
    if RESULT_PATH.exists():
        print(f"[written] {RESULT_PATH}")


def _assert_smoke_bar(cell: dict) -> None:
    # CI gate: combining + coalescing must at least halve the number of
    # data-plane messages on the 10%-split PageRank mix.
    assert cell["packet_reduction"] >= 2.0, cell
    assert cell["byte_reduction"] > 1.0, cell


def test_dataplane_fast_path():
    payload = run_experiment()
    show(payload)
    cell = payload["programs"]["pagerank"]["10%"]
    _assert_smoke_bar(cell)
    # The headline claim: >= 2x logical pairs per wall-clock second on
    # the 10%-split PageRank mix.
    assert cell["pairs_per_sec_speedup"] >= 2.0, cell


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    payload = run_experiment(smoke=smoke)
    show(payload)
    if smoke:
        _assert_smoke_bar(payload["programs"]["pagerank"]["10%"])
        print("[smoke] ok: >=2x data-plane message reduction")
