"""Figure 4 — A-BTER scaling fidelity.

Per-iteration PageRank runtime on the LiveJournal stand-in and three
A-BTER-generated replicas (×1, ×4, ×16 here; the paper uses ×1/×10/×100
of the real graph).  The paper's finding: "the relative runtimes, i.e.,
ratio between ElGA's and Blogel's runtimes remain consistent" as the
synthetic graphs scale — A-BTER replicas are valid performance proxies.
"""

import numpy as np
import pytest

from benchmarks.common import dataset_edges, elga_pr_iter_seconds
from repro.baselines import Blogel
from repro.bench import Table, print_experiment_header
from repro.gen import bter_scale

SCALES = [1, 4, 16]


def run_experiment():
    seed_us, seed_vs, seed_n = dataset_edges("livejournal", scale=0.06)
    rows = []

    def measure(us, vs, label):
        elga_t = elga_pr_iter_seconds(us, vs, nodes=4, agents_per_node=4, seed=1)
        blogel = Blogel(nodes=4, ranks_per_node=2)
        blogel.load(us, vs)
        blogel_t = blogel.pagerank(max_iters=5, tol=1e-15).mean_iter_seconds
        rows.append(
            {
                "graph": label,
                "m": len(us),
                "elga": elga_t,
                "blogel": blogel_t,
                "ratio": elga_t / blogel_t,
            }
        )

    measure(seed_us, seed_vs, "livejournal (original)")
    for factor in SCALES:
        us, vs, _ = bter_scale(seed_us, seed_vs, seed_n, factor=factor, seed=factor)
        measure(us, vs, f"A-BTER ×{factor}")
    return rows


def test_fig04_abter_fidelity(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 4", "PageRank per-iteration on LiveJournal and A-BTER replicas"
    )
    table = Table(["graph", "edges", "ElGA s/iter", "Blogel s/iter", "ElGA/Blogel"])
    for r in rows:
        table.add_row(r["graph"], r["m"], r["elga"], r["blogel"], f"{r['ratio']:.2f}")
    table.show()

    # Shape 1: the ×1 replica behaves like the original.
    original, x1 = rows[0], rows[1]
    assert x1["elga"] == pytest.approx(original["elga"], rel=0.5)
    # Shape 2: the ElGA/Blogel ratio stays consistent across scales
    # (the blue line of Figure 4 is roughly flat).
    ratios = [r["ratio"] for r in rows]
    assert max(ratios) / min(ratios) < 3.0
    # Shape 3: runtime grows with scale for both systems.
    assert rows[-1]["elga"] > rows[1]["elga"]
    assert rows[-1]["blogel"] > rows[1]["blogel"]
