"""Figure 5 — the hash function's impact.

(a) PageRank iteration runtime per hash function; (b) the edge
distribution quality across 2048 Agents (CDF of normalized loads; a
vertical line at 1.0 is ideal).  The paper's finding: Thomas Wang's
64-bit hash performs best, and "the runtime performance follows the
quality of the edge distributions".
"""

import numpy as np
import pytest

from benchmarks.common import dataset_edges, elga_pr_iter_seconds
from repro.bench import Series, Table, print_experiment_header
from repro.hashing import HASH_FUNCTIONS, ConsistentHashRing
from repro.partition import EdgePlacer, edge_loads, imbalance_factor
from repro.sketch import CountMinSketch

HASHES = ["wang", "mult", "abseil", "crc64", "identity"]
# The paper measures distributions over 2048 Agents on 42 M vertices
# (~20 k vertices/Agent); at our downscale the same vertices-per-agent
# regime needs a smaller agent count, else graph skew drowns out hash
# quality.
N_AGENTS_DIST = 64


def placement_quality(us, vs, hash_name, threshold):
    """Edge-load distribution of a pure placement pass."""
    ring = ConsistentHashRing(
        range(N_AGENTS_DIST), virtual_factor=100, hash_fn=HASH_FUNCTIONS[hash_name]
    )
    sketch = CountMinSketch(width=8192, depth=8)
    deg_keys = np.concatenate([us, vs])
    sketch.add(deg_keys)
    split = frozenset(
        int(v)
        for v in np.unique(deg_keys)
        if sketch.query(int(v)) >= threshold
    )
    placer = EdgePlacer(
        ring,
        sketch,
        replication_threshold=threshold,
        hash_fn=HASH_FUNCTIONS[hash_name],
        split_gate=split,
    )
    owners = placer.owner_of_edges(us, vs)
    return edge_loads(owners, N_AGENTS_DIST)


def run_experiment():
    us, vs, _ = dataset_edges("email-euall", scale=1.0)
    threshold = max(50, 4 * len(us) // N_AGENTS_DIST)
    rows = []
    for name in HASHES:
        runtime = elga_pr_iter_seconds(
            us, vs, nodes=4, agents_per_node=4, seed=2, hash_name=name
        )
        loads = placement_quality(us, vs, name, threshold)
        rows.append(
            {
                "hash": name,
                "runtime": runtime,
                "imbalance": imbalance_factor(loads),
                "cv": float(loads.std() / loads.mean()),
            }
        )
    return rows


def test_fig05_hash_functions(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 5", "hash function impact: PR iteration runtime + edge distribution"
    )
    table = Table(["hash", "PR s/iter (a)", "imbalance (b)", "load CV (b)"])
    for r in rows:
        table.add_row(r["hash"], r["runtime"], f"{r['imbalance']:.3f}", f"{r['cv']:.3f}")
    table.show()

    by_name = {r["hash"]: r for r in rows}
    real_hashes = [r for r in rows if r["hash"] != "identity"]
    # Wang's hash gives near-best distribution quality among the real
    # hashes (the paper's winner; ties with other strong mixers are
    # within noise at this scale)...
    best_cv = min(r["cv"] for r in real_hashes)
    assert by_name["wang"]["cv"] <= best_cv * 1.15
    # ...and near-best runtime.
    best_runtime = min(r["runtime"] for r in real_hashes)
    assert by_name["wang"]["runtime"] <= best_runtime * 1.15
    # The identity control shows what hash quality is worth: its
    # distribution collapses and its runtime follows ("the runtime
    # performance follows the quality of the edge distributions").
    assert by_name["identity"]["imbalance"] > 2 * by_name["wang"]["imbalance"]
    assert by_name["identity"]["runtime"] > by_name["wang"]["runtime"]
