"""Figure 6 — load balance vs. virtual agents per Agent.

The load-balance distribution for 2048 Agents as the virtual-agent
factor varies from 1 to 1000 on Twitter-2010.  The paper's finding:
balance improves steeply up to ~100 virtual agents per Agent; beyond
that, improvements no longer outweigh the added lookup cost — hence the
system default of 100.
"""

import numpy as np
import pytest

from benchmarks.common import dataset_edges
from repro.bench import Table, print_experiment_header
from repro.cluster.costmodel import DEFAULT_COSTS
from repro.hashing import ConsistentHashRing
from repro.partition import EdgePlacer, edge_loads, load_distribution
from repro.partition.balance import balance_summary
from repro.sketch import CountMinSketch

VIRTUAL_FACTORS = [1, 5, 10, 50, 100, 1000]
# The paper's 2048-Agent/42 M-vertex regime has ~20 k vertices per
# Agent; 64 Agents over our downscaled vertex counts is the same
# regime (graph skew must not drown out the ring-geometry effect).
N_AGENTS = 64


def run_experiment():
    us, vs, _ = dataset_edges("email-euall", scale=1.0)
    threshold = max(50, 4 * len(us) // N_AGENTS)
    sketch = CountMinSketch(8192, 8)
    deg_keys = np.concatenate([us, vs])
    sketch.add(deg_keys)
    split = frozenset(
        int(v) for v in np.unique(deg_keys) if sketch.query(int(v)) >= threshold
    )
    rows = []
    for vf in VIRTUAL_FACTORS:
        ring = ConsistentHashRing(range(N_AGENTS), virtual_factor=vf)
        placer = EdgePlacer(
            ring, sketch, replication_threshold=threshold, split_gate=split
        )
        loads = edge_loads(placer.owner_of_edges(us, vs), N_AGENTS)
        summary = balance_summary(loads)
        normalized, cumulative = load_distribution(loads)
        # 10th/90th percentile of the normalized load CDF — the spread
        # of Figure 6's distribution curves.
        p10 = float(np.percentile(normalized, 10))
        p90 = float(np.percentile(normalized, 90))
        lookup = DEFAULT_COSTS.placement_lookup_cost(4096, 8, N_AGENTS * vf)
        rows.append(
            {
                "vf": vf,
                "cv": summary["cv"],
                "p10": p10,
                "p90": p90,
                "lookup_ns": lookup * 1e9,
            }
        )
    return rows


def test_fig06_virtual_agents(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 6", f"load balance across {N_AGENTS} Agents vs virtual agents per Agent"
    )
    table = Table(["virtual agents", "load CV", "p10 load", "p90 load", "lookup ns"])
    for r in rows:
        table.add_row(r["vf"], f"{r['cv']:.3f}", f"{r['p10']:.2f}", f"{r['p90']:.2f}", f"{r['lookup_ns']:.1f}")
    table.show()

    by_vf = {r["vf"]: r for r in rows}
    # Balance improves monotonically (allowing small noise) with vf...
    assert by_vf[100]["cv"] < by_vf[10]["cv"] < by_vf[1]["cv"]
    # ...but 100 → 1000 buys little while lookups keep getting dearer
    # ("beyond 100 improvements do not outweigh the computational cost").
    gain_10_to_100 = by_vf[10]["cv"] - by_vf[100]["cv"]
    gain_100_to_1000 = by_vf[100]["cv"] - by_vf[1000]["cv"]
    assert gain_100_to_1000 < gain_10_to_100
    assert by_vf[1000]["lookup_ns"] > by_vf[100]["lookup_ns"]
