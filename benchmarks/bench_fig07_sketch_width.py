"""Figure 7 — CountMinSketch width: lookup overhead vs degree error.

(a) The runtime cost of resolving edges to Agents per PageRank
iteration as the table width varies — it inflects upward once the table
falls out of cache; (b) the maximum and average degree-estimation
errors — they fall with width.  The paper picks width ~10^4.2 with a
replication threshold of 10⁷: below the overhead inflection and with a
max error under the threshold, so the sketch causes no replication
error.
"""

import numpy as np
import pytest

from benchmarks.common import dataset_edges
from repro.bench import Table, print_experiment_header
from repro.cluster.costmodel import DEFAULT_COSTS
from repro.sketch import CountMinSketch

WIDTHS = [2**8, 2**10, 2**12, 2**14, 2**16, 2**18]
DEPTH = 8


def run_experiment():
    us, vs, n = dataset_edges("twitter-2010", scale=1.0)
    true_deg = np.bincount(us, minlength=n) + np.bincount(vs, minlength=n)
    vertices = np.nonzero(true_deg)[0]
    m = len(us)
    rows = []
    for width in WIDTHS:
        sketch = CountMinSketch(width=width, depth=DEPTH, seed=3)
        sketch.add(us)
        sketch.add(vs)
        est = sketch.query(vertices)
        err = est - true_deg[vertices]
        # Per-iteration overhead: one placement lookup per edge access.
        lookup = DEFAULT_COSTS.placement_lookup_cost(width, DEPTH, ring_positions=2048 * 100)
        rows.append(
            {
                "width": width,
                "overhead": m * lookup,
                "max_err": int(err.max()),
                "avg_err": float(err.mean()),
            }
        )
    return rows, m


def test_fig07_sketch_width(benchmark):
    rows, m = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 7", "sketch width: per-iteration lookup overhead + degree errors"
    )
    table = Table(["width", "overhead s/iter (a)", "max err (b)", "avg err (b)"])
    for r in rows:
        table.add_row(r["width"], r["overhead"], r["max_err"], f"{r['avg_err']:.2f}")
    table.show()

    by_width = {r["width"]: r for r in rows}
    # (b) error is monotone non-increasing with width and hits zero for
    # wide tables (no collisions at this scale).
    errs = [r["max_err"] for r in rows]
    assert all(a >= b for a, b in zip(errs, errs[1:]))
    assert by_width[2**18]["max_err"] == 0
    # (a) the overhead inflects upward once the table leaves cache.
    assert by_width[2**18]["overhead"] > 2 * by_width[2**12]["overhead"]
    # The paper's operating point: a moderate width already has a max
    # error far below a proportional replication threshold, so the
    # sketch introduces no replication error.
    threshold_at_scale = 4 * m // 16  # the downscaled 10^7 analogue
    assert by_width[2**14]["max_err"] < threshold_at_scale
