"""Figure 8 — strong scaling with node count.

Per-iteration PageRank time as the number of nodes varies (agents per
node fixed).  The paper's finding: "for each graph, adding more nodes
results in lower runtimes" (the largest graphs cannot run on few nodes
for memory reasons — a constraint the simulator does not share, so all
points run here).
"""

import numpy as np
import pytest

from benchmarks.common import N_TRIALS, dataset_edges, elga_pr_iter_seconds
from repro.bench import Series, print_experiment_header, trials

NODE_COUNTS = [1, 2, 4, 8, 16]
GRAPHS = ["twitter-2010", "livejournal", "graph500-30"]
AGENTS_PER_NODE = 4


def run_experiment():
    series = {}
    for graph in GRAPHS:
        us, vs, _ = dataset_edges(graph)
        points = []
        for nodes in NODE_COUNTS:
            stat = trials(
                lambda seed: elga_pr_iter_seconds(
                    us, vs, nodes=nodes, agents_per_node=AGENTS_PER_NODE, seed=seed
                ),
                n_trials=N_TRIALS,
                base_seed=8,
            )
            points.append((nodes, stat))
        series[graph] = points
    return series


def test_fig08_strong_scaling(benchmark):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 8", f"PageRank s/iteration vs nodes ({AGENTS_PER_NODE} agents/node)"
    )
    for graph, points in series.items():
        s = Series(graph, x_name="nodes", y_name="s/iter")
        for nodes, stat in points:
            s.add(nodes, stat)
        s.show()

    for graph, points in series.items():
        times = [stat.mean for _, stat in points]
        # Adding nodes lowers runtime: last point well below the first,
        # and the curve is (near-)monotone.
        assert times[-1] < 0.5 * times[0], graph
        for a, b in zip(times, times[1:]):
            assert b < a * 1.15, graph  # small non-monotonic noise allowed
