"""Figure 9 — scaling with Agents per node.

Nodes fixed at the cluster size; the number of Agents per node varies.
The paper's finding: "adding more Agents results in faster runtimes" —
ElGA profits from every core (unlike Blogel, fastest at 8 ranks/node).
"""

import numpy as np
import pytest

from benchmarks.common import N_TRIALS, dataset_edges, elga_pr_iter_seconds
from repro.bench import Series, print_experiment_header, trials

NODES = 8
AGENTS_PER_NODE = [1, 2, 4, 8]
GRAPHS = ["twitter-2010", "skitter"]


def run_experiment():
    series = {}
    for graph in GRAPHS:
        us, vs, _ = dataset_edges(graph)
        points = []
        for apn in AGENTS_PER_NODE:
            stat = trials(
                lambda seed: elga_pr_iter_seconds(
                    us, vs, nodes=NODES, agents_per_node=apn, seed=seed
                ),
                n_trials=N_TRIALS,
                base_seed=9,
            )
            points.append((apn, stat))
        series[graph] = points
    return series


def test_fig09_agents_per_node(benchmark):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 9", f"PageRank s/iteration vs agents per node ({NODES} nodes)"
    )
    for graph, points in series.items():
        s = Series(graph, x_name="agents/node", y_name="s/iter")
        for apn, stat in points:
            s.add(apn, stat)
        s.show()

    for graph, points in series.items():
        times = [stat.mean for _, stat in points]
        assert times[-1] < 0.6 * times[0], graph
        for a, b in zip(times, times[1:]):
            assert b < a * 1.15, graph
