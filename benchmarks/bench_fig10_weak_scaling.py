"""Figure 10 — weak scaling on the Pokec family.

Graph size and node count grow together (the paper scales Pokec from
×39 to ×2500 across 1–64 nodes); the y-axis is per-iteration time, so a
horizontal line is ideal.  The paper's finding: tiny deployments beat
the ideal line (little communication); "above 16 nodes our scaling is
close to ideal".
"""

import numpy as np
import pytest

from benchmarks.common import dataset_edges, elga_pr_iter_seconds
from repro.bench import Series, print_experiment_header

# (nodes, graph scale): edges per node held constant.  The per-node
# share is large enough that per-edge compute dominates the O(P)
# per-agent message overheads, as at paper scale (55 M edges/agent).
LADDER = [(1, 0.16), (2, 0.32), (4, 0.64), (8, 1.28), (16, 2.56)]
AGENTS_PER_NODE = 4


def run_experiment():
    points = []
    for nodes, scale in LADDER:
        us, vs, _ = dataset_edges("pokec-x1000", scale=scale, seed=10)
        seconds = elga_pr_iter_seconds(
            us, vs, nodes=nodes, agents_per_node=AGENTS_PER_NODE, seed=10
        )
        points.append({"nodes": nodes, "m": len(us), "s_per_iter": seconds})
    return points


def test_fig10_weak_scaling(benchmark):
    points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 10", "weak scaling on Pokec (edges per node constant; flat is ideal)"
    )
    s = Series("elga", x_name="nodes (m grows with nodes)", y_name="s/iter")
    for p in points:
        s.add(f"{p['nodes']} ({p['m']} edges)", p["s_per_iter"])
    s.show()

    times = [p["s_per_iter"] for p in points]
    # Small deployments beat the flat line (less communication)...
    assert times[0] < times[-1]
    # ...and the curve is close to ideal (horizontal) at the top end:
    # two doublings of scale past 4 nodes cost well under 2×.
    assert times[-1] / times[2] < 2.0
    # No doubling step blows up.
    for a, b in zip(times, times[1:]):
        assert b < 1.8 * a
