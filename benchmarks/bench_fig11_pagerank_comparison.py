"""Figure 11 — PageRank per-iteration: ElGA vs Blogel vs GraphX.

The headline static comparison.  The paper (64 nodes): ElGA beats both
tuned baselines on every dataset (t-test p < 0.0005, except Graph500-30
where the test is inconclusive), despite Blogel's faster CSR scans and
20× lower MPI latency — because ElGA uses every core (32/node, vs
Blogel's 8-rank optimum) and overlaps communication.  GraphX runs out
of memory on the largest graphs.

As in §4.2, each baseline runs at its best-found configuration: Blogel's
rank count is swept and the fastest kept.
"""

import numpy as np
import pytest

from benchmarks.common import COMPARISON_DATASETS, N_TRIALS, dataset_edges
from repro.baselines import Blogel, GraphX, graphx_would_oom
from repro.bench import Table, print_experiment_header, trials
from repro.bench.stats import welch_t_test
from repro.core import PageRank
from benchmarks.common import build_engine
from repro.gen import DATASETS

# Scaled-down nodes: 8 cores each (the paper's are 32-core).  ElGA uses
# every core; Blogel's memory-bound scans saturate a node's DRAM at 1/4
# core utilization (the paper's 8-of-32 observation), so its rank sweep
# includes configurations past that point — they simply don't win.
NODES = 4
ELGA_AGENTS_PER_NODE = 8
BLOGEL_RANK_SWEEP = [1, 2, 4, 8]  # "we used the best found settings"
BLOGEL_BW_RANKS = 2               # 1/4 of the 8 scaled-down cores
PR_ITERS = 5


def elga_seconds(us, vs, seed):
    elga = build_engine(us, vs, nodes=NODES, agents_per_node=ELGA_AGENTS_PER_NODE, seed=seed)
    return elga.run(PageRank(max_iters=PR_ITERS, tol=1e-15)).mean_step_seconds()


def blogel_seconds(us, vs, seed):
    best = np.inf
    for rpn in BLOGEL_RANK_SWEEP:
        b = Blogel(
            nodes=NODES,
            ranks_per_node=rpn,
            seed=seed,
            memory_bandwidth_ranks=BLOGEL_BW_RANKS,
        )
        b.load(us, vs)
        best = min(best, b.pagerank(max_iters=PR_ITERS, tol=1e-15).mean_iter_seconds)
    return best


def graphx_seconds(us, vs, seed):
    g = GraphX(nodes=NODES, partitioner="rvc", seed=seed)
    g.load(us, vs)
    return g.pagerank(max_iters=PR_ITERS, tol=1e-15).mean_iter_seconds


def run_experiment():
    rows = []
    for name in COMPARISON_DATASETS:
        us, vs, _ = dataset_edges(name)
        elga = trials(lambda s: elga_seconds(us, vs, s), n_trials=N_TRIALS, base_seed=11)
        blogel = trials(lambda s: blogel_seconds(us, vs, s), n_trials=N_TRIALS, base_seed=11)
        oom = graphx_would_oom(DATASETS[name].paper_m)
        graphx = (
            None
            if oom
            else trials(lambda s: graphx_seconds(us, vs, s), n_trials=N_TRIALS, base_seed=11)
        )
        rows.append(
            {
                "graph": name,
                "elga": elga,
                "blogel": blogel,
                "graphx": graphx,
                "p_vs_blogel": welch_t_test(elga.samples, blogel.samples),
            }
        )
    return rows


def test_fig11_pagerank_comparison(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 11", "PageRank s/iteration: ElGA vs Blogel vs GraphX (OOM at paper scale shown as —)"
    )
    table = Table(["graph", "ElGA", "Blogel", "GraphX", "speedup vs Blogel", "p"])
    for r in rows:
        table.add_row(
            r["graph"],
            r["elga"],
            r["blogel"],
            r["graphx"] if r["graphx"] is not None else "OOM",
            f"{r['blogel'].mean / r['elga'].mean:.2f}x",
            f"{r['p_vs_blogel']:.4f}",
        )
    table.show()

    wins = sum(r["elga"].mean < r["blogel"].mean for r in rows)
    # ElGA is fastest on (essentially) every dataset.
    assert wins >= len(rows) - 1
    for r in rows:
        if r["graphx"] is not None:
            # GraphX is far slower per iteration (JVM + stage overheads).
            assert r["graphx"].mean > 5 * r["elga"].mean, r["graph"]
    # The largest graphs OOM GraphX at paper scale.
    assert any(r["graphx"] is None for r in rows)
