"""Figure 12 — WCC runtime: ElGA vs Blogel vs GraphX.

Total weakly-connected-components runtime (the full run, not per
iteration — WCC's active set shrinks every superstep).  The paper:
ElGA fastest everywhere (p < 0.0005, p < 0.03 on Graph500-30); the
input is symmetrized for Blogel (its WCC bug, §4.7); GraphX with CRVC
partitioning ran out of memory on almost all graphs.
"""

import numpy as np
import pytest

from benchmarks.common import COMPARISON_DATASETS, N_TRIALS, build_engine, dataset_edges
from repro.baselines import Blogel, GraphX, graphx_would_oom
from repro.bench import Table, print_experiment_header, trials
from repro.bench.stats import welch_t_test
from repro.core import WCC
from repro.gen import DATASETS

NODES = 4
ELGA_AGENTS_PER_NODE = 8
BLOGEL_RANK_SWEEP = [1, 2, 4, 8]
BLOGEL_BW_RANKS = 2
# WCC shrinks its active set every superstep, so fixed per-round costs
# loom large at tiny scales; 0.5 restores the compute-dominated regime
# the paper's billion-edge runs live in.
SCALE = 0.5


def elga_seconds(us, vs, seed):
    elga = build_engine(us, vs, nodes=NODES, agents_per_node=ELGA_AGENTS_PER_NODE, seed=seed)
    return elga.run(WCC()).sim_seconds


def blogel_seconds(us, vs, seed):
    best = np.inf
    for rpn in BLOGEL_RANK_SWEEP:
        b = Blogel(
            nodes=NODES, ranks_per_node=rpn, seed=seed, memory_bandwidth_ranks=BLOGEL_BW_RANKS
        )
        b.load(us, vs)
        best = min(best, b.wcc().total_seconds)
    return best


def graphx_seconds(us, vs, seed):
    g = GraphX(nodes=NODES, partitioner="rvc", seed=seed)
    g.load(us, vs)
    return g.wcc().compute_seconds


def run_experiment():
    rows = []
    for name in COMPARISON_DATASETS:
        us, vs, _ = dataset_edges(name, scale=SCALE)
        elga = trials(lambda s: elga_seconds(us, vs, s), n_trials=N_TRIALS, base_seed=12)
        blogel = trials(lambda s: blogel_seconds(us, vs, s), n_trials=N_TRIALS, base_seed=12)
        oom = graphx_would_oom(DATASETS[name].paper_m)
        crvc_oom = graphx_would_oom(DATASETS[name].paper_m, partitioner="crvc")
        graphx = (
            None
            if oom
            else trials(lambda s: graphx_seconds(us, vs, s), n_trials=N_TRIALS, base_seed=12)
        )
        rows.append(
            {
                "graph": name,
                "elga": elga,
                "blogel": blogel,
                "graphx": graphx,
                "crvc_oom": crvc_oom,
                "p": welch_t_test(elga.samples, blogel.samples),
            }
        )
    return rows


def test_fig12_wcc_comparison(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header("Figure 12", "WCC total runtime: ElGA vs Blogel vs GraphX")
    table = Table(["graph", "ElGA", "Blogel", "GraphX (RVC)", "CRVC", "speedup", "p"])
    for r in rows:
        table.add_row(
            r["graph"],
            r["elga"],
            r["blogel"],
            r["graphx"] if r["graphx"] is not None else "OOM",
            "OOM" if r["crvc_oom"] else "ok",
            f"{r['blogel'].mean / r['elga'].mean:.2f}x",
            f"{r['p']:.4f}",
        )
    table.show()

    wins = sum(r["elga"].mean < r["blogel"].mean for r in rows)
    assert wins >= len(rows) - 1
    for r in rows:
        if r["graphx"] is not None:
            assert r["graphx"].mean > 5 * r["elga"].mean, r["graph"]
    # "We were not able to run GraphX with CRVC partitioning as it ran
    # out of memory on almost all graphs."
    assert sum(r["crvc_oom"] for r in rows) >= len(rows) - 2
