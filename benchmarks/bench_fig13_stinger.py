"""Figure 13 — ElGA vs STINGER maintaining components (+ GAPbs COST).

Per-batch latency of maintaining WCC while inserting the final edges of
LiveJournal and Email-EuAll.  The paper runs these at *original* scale
(69 M and 0.42 M edges — the only experiment small enough for the
shared-memory baseline); our graphs are downscaled, so STINGER's
resident-graph sweep cost is projected back to the original sizes via
its ``edge_scale`` knob.

Paper findings reproduced as shape checks: STINGER's latencies are
bimodal ("it can likely optimize for some easy batches due to its
global view"); ElGA's median is comparable to STINGER's (0.027 s vs
0.032 s at paper scale) despite ElGA being distributed; GAPbs — the
static shared-memory COST yardstick — recomputes LiveJournal in ~0.94 s.
"""

import numpy as np
import pytest

from benchmarks.common import dataset_edges
from repro.baselines import Stinger, gapbs_wcc
from repro.bench import Table, print_experiment_header
from repro.core import ElGA, WCC
from repro.graph import EdgeBatch, compact_ids

# Original (non-A-BTER) edge counts: the scales the paper ran Fig 13 at.
ORIGINAL_EDGES = {"livejournal": 69e6, "email-euall": 420e3}
N_BATCHES = 40


def make_batches(us, vs, n, rng):
    """Alternating easy/hard batches over the loaded graph.

    Easy: an edge inside the giant component (labels already equal).
    Hard: a fresh two-vertex component bridged into the giant one —
    the merge relabels and sweeps, STINGER's slow mode.
    """
    batches = []
    fresh = n + 1000
    for i in range(N_BATCHES):
        if i % 2 == 0:
            a, b = rng.choice(n, 2, replace=False)
            batches.append(EdgeBatch.insertions([int(a)], [int(b)]))
        else:
            batches.append(
                EdgeBatch.insertions([fresh, fresh + 1], [fresh + 1, int(rng.integers(0, n))])
            )
            fresh += 2
    return batches


def run_one_graph(name):
    us, vs, n = dataset_edges(name, scale=0.4)
    edge_scale = ORIGINAL_EDGES[name] / len(us)
    rng = np.random.default_rng(13)
    batches = make_batches(us, vs, n, rng)

    elga = ElGA(nodes=2, agents_per_node=4, seed=13, keep_reference=False)
    elga.ingest_edges(us, vs, n_streamers=2)
    elga.run(WCC())
    elga_latencies = []
    for batch in batches:
        report = elga.apply_batch(batch, n_streamers=1)
        result = elga.run(WCC(), incremental=True)
        elga_latencies.append(report["sim_seconds"] + result.sim_seconds)

    stinger = Stinger(edge_scale=edge_scale)
    stinger.load(us, vs)
    stinger_latencies = [stinger.insert_batch(batch) for batch in batches]

    cu, cv, ids = compact_ids(us, vs)
    _, gap_seconds = gapbs_wcc(cu, cv, len(ids))
    return {
        "graph": name,
        "elga": np.array(elga_latencies),
        "stinger": np.array(stinger_latencies),
        "gapbs": gap_seconds * edge_scale,  # projected to original scale
    }


def run_experiment():
    return [run_one_graph(name) for name in ORIGINAL_EDGES]


def test_fig13_stinger(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 13", "per-batch WCC maintenance latency: ElGA vs STINGER (+ GAPbs static)"
    )
    table = Table(
        ["graph", "ElGA median", "STINGER fast mode", "STINGER slow mode", "GAPbs static"]
    )
    for r in results:
        table.add_row(
            r["graph"],
            float(np.median(r["elga"])),
            float(np.percentile(r["stinger"], 25)),
            float(np.percentile(r["stinger"], 90)),
            r["gapbs"],
        )
    table.show()

    # The COST comparison is stated for LiveJournal (§4.8 compares
    # GAPbs' 0.94 s there; EuAll's original graph is so small that a
    # static recompute beats any per-batch overhead).
    lj = next(r for r in results if r["graph"] == "livejournal")
    assert np.median(lj["elga"]) < lj["gapbs"] / 10
    assert np.median(lj["stinger"]) < lj["gapbs"] / 10
    # GAPbs lands near the paper's 0.94 s at LiveJournal scale.
    assert 0.4 < lj["gapbs"] < 2.0
    # STINGER is bimodal on LiveJournal: hard-mode batches pay a
    # resident-graph sweep that easy batches skip.
    fast = np.percentile(lj["stinger"], 25)
    slow = np.percentile(lj["stinger"], 90)
    assert slow > 1.5 * fast
    # Medians comparable across the two systems (paper: 0.027 vs 0.032).
    ratio = np.median(lj["stinger"]) / np.median(lj["elga"])
    assert 0.05 < ratio < 100
