"""Figure 14 — edge insertion rate vs cluster size.

Skitter streamed in with half the cluster acting as Streamers; the
paper measures above 2 M edges/s/Agent with near-linear scaling (the
dashed ideal line).
"""

import numpy as np
import pytest

from benchmarks.common import N_TRIALS, dataset_edges
from repro.bench import Series, print_experiment_header, trials
from repro.core import ElGA
from repro.graph import EdgeBatch

NODE_COUNTS = [1, 2, 4, 8]
AGENTS_PER_NODE = 4


def insertion_rate(us, vs, nodes, seed):
    elga = ElGA(
        nodes=nodes, agents_per_node=AGENTS_PER_NODE, seed=seed, keep_reference=False
    )
    # Half the cluster's nodes drive streams (the paper's setup).
    n_streamers = max(1, nodes * AGENTS_PER_NODE // 2)
    report = elga.apply_batch(
        EdgeBatch.insertions(us, vs), n_streamers=n_streamers, flush=False
    )
    return report["edges_per_second"]


def run_experiment():
    us, vs, _ = dataset_edges("skitter", scale=0.5)
    points = []
    for nodes in NODE_COUNTS:
        stat = trials(
            lambda seed: insertion_rate(us, vs, nodes, seed),
            n_trials=N_TRIALS,
            base_seed=14,
        )
        points.append((nodes, stat))
    return points, len(us)


def test_fig14_insertion_rate(benchmark):
    points, m = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 14", f"edge insertion rate vs nodes (skitter, {m} edges, half streamers)"
    )
    s = Series("elga ingest", x_name="nodes", y_name="edges/s (simulated)")
    for nodes, stat in points:
        s.add(nodes, stat)
    s.show()
    per_agent = points[-1][1].mean / (NODE_COUNTS[-1] * AGENTS_PER_NODE)
    print(f"    rate per agent at {NODE_COUNTS[-1]} nodes: {per_agent:,.0f} edges/s")

    rates = [stat.mean for _, stat in points]
    # Rate grows near-linearly with cluster size...
    assert rates[-1] > 2.5 * rates[0]
    # ...and the per-agent rate is within the paper's order of
    # magnitude ("above 2 million edges per second per Agent"; our
    # calibrated ingest path lands just under 1 M — same regime).
    assert per_agent > 5e5
