"""Figure 15 — maintaining connectivity on Twitter-2010.

100 insertion batches of varying size are applied to the converged
graph; (a) per-batch runtime and (b) iterations until convergence.  The
paper's findings: per-batch runtimes of 0.025–0.59 s (average 0.12 s)
for single-edge changes vs GraphX's ≥ 49.45 s snapshot recompute —
speedups of 83× to 1962×; from scratch ElGA takes 14 s; iteration
counts stay small for small batches.
"""

import numpy as np
import pytest

from benchmarks.common import dataset_edges
from repro.baselines import GraphX
from repro.bench import Table, print_experiment_header
from repro.core import ElGA, WCC
from repro.graph import EdgeBatch

N_BATCHES = 24  # log-spaced sizes standing in for the paper's 100
BATCH_SIZES = np.unique(np.logspace(0, 3, N_BATCHES).astype(int))


def run_experiment():
    us, vs, n = dataset_edges("twitter-2010", scale=0.6)
    # Hold back enough edges to feed every batch.
    total_held = int(BATCH_SIZES.sum())
    base_us, base_vs = us[:-total_held], vs[:-total_held]
    tail_us, tail_vs = us[-total_held:], vs[-total_held:]

    elga = ElGA(nodes=4, agents_per_node=4, seed=15, keep_reference=False)
    elga.ingest_edges(base_us, base_vs, n_streamers=4)
    scratch = elga.run(WCC())

    batches = []
    cursor = 0
    for size in BATCH_SIZES:
        batch = EdgeBatch.insertions(
            tail_us[cursor : cursor + size], tail_vs[cursor : cursor + size]
        )
        cursor += size
        report = elga.apply_batch(batch, n_streamers=2)
        result = elga.run(WCC(), incremental=True)
        batches.append(
            {
                "size": int(size),
                "seconds": report["sim_seconds"] + result.sim_seconds,
                "iterations": result.steps,
            }
        )

    # The GraphX snapshot-recompute baseline: partitioning ignored
    # ("the best achievable performance if a perfect elastic load
    # balancer is put into GraphX"), but job startup is unavoidable.
    gx = GraphX(nodes=64, partitioner="rvc")
    gx.load(us, vs)
    graphx_floor = gx.wcc_incremental({}, np.array([int(us[0])])).job_seconds
    return batches, scratch, graphx_floor


def test_fig15_dynamic_batches(benchmark):
    batches, scratch, graphx_floor = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 15", "incremental WCC per batch on Twitter-2010 (runtime + iterations)"
    )
    table = Table(["batch size", "seconds (a)", "iterations (b)"])
    for b in batches:
        table.add_row(b["size"], b["seconds"], b["iterations"])
    table.show()
    times = np.array([b["seconds"] for b in batches])
    speedups = graphx_floor / times
    print(f"    ElGA from scratch: {scratch.sim_seconds:.4f} s ({scratch.steps} iterations)")
    print(f"    GraphX recompute floor: {graphx_floor:.2f} s")
    print(
        f"    speedups over GraphX: {speedups.min():.0f}x – {speedups.max():.0f}x "
        f"(min/avg/max batch: {times.min():.2e}/{times.mean():.2e}/{times.max():.2e} s)"
    )

    # Every incremental batch beats the from-scratch run.
    assert times.max() < scratch.sim_seconds
    # The speedup over snapshot recompute is enormous (paper: 83x-1962x).
    assert speedups.min() > 50
    # Iterations grow with batch size but stay far below from-scratch.
    iters = [b["iterations"] for b in batches]
    assert max(iters) <= scratch.steps
    assert iters[0] <= 3  # single-edge batches converge almost at once
