"""Figure 16 — the cost of adding and removing one Agent.

(a) The percent of edges moved when one Agent joins and then a random
one leaves; (b) the total time for the add + remove cycle.  The paper
(starting from 2048 Agents): only a small fraction of edges moves —
consistent hashing's promise — so "ElGA can elastically scale as needed
without incurring significant overheads".
"""

import numpy as np
import pytest

from benchmarks.common import build_engine, dataset_edges
from repro.bench import Table, print_experiment_header
from repro.net.message import PacketType

GRAPHS = ["twitter-2010", "uk-2007-05", "livejournal", "gowalla", "pokec-x1000"]
NODES = 8
AGENTS_PER_NODE = 4  # 32 agents (the paper's 2048, scaled with the cluster)


def migrated_edges(cluster, before):
    after = cluster.network.stats.by_type_bytes[PacketType.EDGE_MIGRATE]
    return cluster.network.stats.by_type_count[PacketType.EDGE_MIGRATE], after - before


def run_experiment():
    rows = []
    for name in GRAPHS:
        us, vs, _ = dataset_edges(name, scale=0.3)
        elga = build_engine(us, vs, nodes=NODES, agents_per_node=AGENTS_PER_NODE, seed=16)
        cluster = elga.cluster
        resident = cluster.total_resident_edges()

        moved_before = sum(a.metrics.edges_migrated for a in cluster.agents.values())
        t0 = cluster.kernel.now
        new_agent = cluster.add_agent()
        t_add = cluster.kernel.now - t0
        moved_add = (
            sum(a.metrics.edges_migrated for a in cluster.agents.values()) - moved_before
        )

        rng = np.random.default_rng(17)
        victim_id = int(
            rng.choice([a for a in sorted(cluster.agents) if a != new_agent.agent_id])
        )
        victim = cluster.agents[victim_id]  # keep a handle: it leaves the dict
        moved_before = victim.metrics.edges_migrated + sum(
            a.metrics.edges_migrated for a in cluster.agents.values() if a is not victim
        )
        t0 = cluster.kernel.now
        cluster.remove_agent(victim_id)
        t_remove = cluster.kernel.now - t0
        moved_remove = (
            victim.metrics.edges_migrated
            + sum(a.metrics.edges_migrated for a in cluster.agents.values())
            - moved_before
        )

        rows.append(
            {
                "graph": name,
                "resident": resident,
                "pct_add": 100.0 * moved_add / resident,
                "pct_remove": 100.0 * moved_remove / resident,
                "t_total": t_add + t_remove,
            }
        )
        assert cluster.total_resident_edges() == resident  # nothing lost
    return rows


def test_fig16_elastic_cost(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 16", f"cost of adding then removing one Agent (from {NODES * AGENTS_PER_NODE})"
    )
    table = Table(["graph", "resident edges", "% moved (add)", "% moved (remove)", "add+remove s"])
    for r in rows:
        table.add_row(
            r["graph"],
            r["resident"],
            f"{r['pct_add']:.2f}%",
            f"{r['pct_remove']:.2f}%",
            r["t_total"],
        )
    table.show()

    P = NODES * AGENTS_PER_NODE
    for r in rows:
        # Consistent hashing: one membership change moves on the order
        # of 1/P of the edges, never a wholesale reshuffle.
        assert r["pct_add"] < 100.0 / P * 5, r["graph"]
        assert 0 < r["pct_remove"] < 100.0 / P * 5, r["graph"]
        # The whole cycle completes in simulated milliseconds.
        assert r["t_total"] < 1.0, r["graph"]
