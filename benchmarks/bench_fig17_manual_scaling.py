"""Figure 17 — manual elastic scaling during a computation.

PageRank runs on Gowalla starting small; after one iteration an
operator scales the cluster up (the paper: 16 → 64 nodes), ElGA
migrates and continues, and after the run the cluster shrinks back for
cost savings.  The figure shows per-iteration progress with visibly
faster iterations after the scale-up.
"""

import numpy as np
import pytest

from benchmarks.common import build_engine, dataset_edges
from repro.bench import Series, print_experiment_header
from repro.core import PageRank

START_AGENTS = (2, 2)   # nodes, agents/node — "16 nodes" scaled down
TARGET_AGENTS = 16      # "64 nodes"
ITERATIONS = 5


def run_experiment():
    us, vs, _ = dataset_edges("gowalla", scale=0.5)
    elga = build_engine(us, vs, nodes=START_AGENTS[0], agents_per_node=START_AGENTS[1], seed=17)
    result = elga.run(
        PageRank(max_iters=ITERATIONS, tol=1e-15), scale_plan={1: TARGET_AGENTS}
    )
    final_agents = elga.n_agents
    shrink = elga.scale_to(START_AGENTS[0] * START_AGENTS[1])
    return result, final_agents, shrink


def test_fig17_manual_scaling(benchmark):
    result, final_agents, shrink = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 17",
        f"PageRank with mid-run scale-up {START_AGENTS[0]*START_AGENTS[1]} → {TARGET_AGENTS} agents after iteration 1",
    )
    s = Series("per-round simulated seconds", x_name="round (phase, step)", y_name="seconds")
    for phase, step, duration in result.round_durations:
        s.add(f"{phase} {step}", duration)
    s.show()
    print(f"    agents after scale-up: {final_agents}; after shrink: {START_AGENTS[0]*START_AGENTS[1]}")
    print(f"    shrink migration: {shrink['migrate_messages']} messages in {shrink['sim_seconds']:.4f}s")

    assert final_agents == TARGET_AGENTS
    # The computation continued correctly across the reshaping.
    assert result.steps == ITERATIONS
    # Iterations on the scaled-up cluster are faster than before.
    steps = [(step, dur) for phase, step, dur in result.round_durations if phase == "step"]
    before = np.mean([d for s_, d in steps if s_ <= 1]) if any(s_ <= 1 for s_, _ in steps) else None
    early = [d for phase, s_, d in result.round_durations if phase in ("init", "step") and s_ <= 1]
    late = [d for s_, d in steps if s_ >= 3]
    assert np.mean(late) < np.mean(early)
