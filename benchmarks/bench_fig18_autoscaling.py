"""Figure 18 — fully elastic autoscaling.

Client query rates follow a step function (emulating sudden workload
changes on Skitter); the reactive autoscaler takes the EMA of the query
rate over 30 s, divides by a scaling factor, waits 60 s between actions,
and drives the cluster's Agent count.  The paper: "ElGA converges
quickly to the autoscaler's target ... and hence elastically matches
the load" (the target and actual lines mostly overlap).
"""

import numpy as np
import pytest

from benchmarks.common import build_engine, dataset_edges
from repro.bench import Series, print_experiment_header
from repro.cluster import ReactiveAutoscaler
from repro.core import WCC

# (epoch end time, queries/s): a step-function workload.
WORKLOAD = [(120.0, 40.0), (300.0, 240.0), (480.0, 80.0)]
SAMPLE_PERIOD = 10.0
QUERIES_PER_AGENT = 20.0  # scaling factor: one agent absorbs 20 q/s


def run_experiment():
    us, vs, n = dataset_edges("skitter", scale=0.3)
    elga = build_engine(us, vs, nodes=2, agents_per_node=2, seed=18)
    elga.run(WCC())
    client = elga.cluster.new_client()
    autoscaler = ReactiveAutoscaler(
        scaling_factor=QUERIES_PER_AGENT,
        ema_window=30.0,
        cooldown=60.0,
        min_agents=2,
        max_agents=64,
    )
    kernel = elga.cluster.kernel
    rng = np.random.default_rng(18)
    timeline = []
    base = kernel.now
    # The autoscaler consumes the in-protocol metric path: Agents push
    # METRIC_REPORTs to their Directories (§3.4.3) and the rate is the
    # delta of the directory-collected queries_served counters.
    prev_served = {
        aid: snap["queries_served"]
        for aid, snap in elga.cluster.collect_metrics().items()
    }
    for end, rate in WORKLOAD:
        while kernel.now - base < end:
            sample_start = kernel.now
            n_queries = rng.poisson(rate * SAMPLE_PERIOD)
            for _ in range(int(n_queries)):
                client.query(int(rng.integers(0, n)), "wcc")
            elga.cluster.settle()
            # Advance the clock to the end of the sample period (queries
            # resolve far faster than the period).
            kernel.run(until=sample_start + SAMPLE_PERIOD)
            snaps = elga.cluster.collect_metrics()
            served = sum(
                snap["queries_served"] - prev_served.get(aid, 0)
                for aid, snap in snaps.items()
            )
            prev_served = {
                aid: snap["queries_served"] for aid, snap in snaps.items()
            }
            observed_rate = served / SAMPLE_PERIOD
            autoscaler.observe(observed_rate, kernel.now - base)
            target = autoscaler.target()
            desired = autoscaler.desired(elga.n_agents, kernel.now - base)
            if desired is not None:
                elga.scale_to(desired)
            timeline.append(
                {
                    "t": kernel.now - base,
                    "rate": observed_rate,
                    "target": target,
                    "agents": elga.n_agents,
                }
            )
    return timeline


def test_fig18_autoscaling(benchmark):
    timeline = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header(
        "Figure 18", "reactive autoscaling under a step-function query load (skitter)"
    )
    s = Series("load / target / agents", x_name="sim seconds", y_name="(rate, target, agents)")
    for point in timeline[:: max(1, len(timeline) // 24)]:
        s.add(f"{point['t']:.0f}", f"rate={point['rate']:6.1f}  target={point['target']:3d}  agents={point['agents']:3d}")
    s.show()

    # Convergence: by the end of each workload phase the agent count
    # matches the autoscaler's target.
    by_phase_end = {}
    for end, rate in WORKLOAD:
        tail = [p for p in timeline if p["t"] <= end]
        by_phase_end[end] = tail[-1]
    high = by_phase_end[300.0]
    low_again = by_phase_end[480.0]
    # The cluster grew for the burst and shrank after it.
    assert high["agents"] > by_phase_end[120.0]["agents"]
    assert low_again["agents"] < high["agents"]
    # At each phase end, actual tracks target (the overlapping lines).
    for point in by_phase_end.values():
        assert abs(point["agents"] - point["target"]) <= max(2, 0.3 * point["target"])
