"""Incremental delta engine benchmark — sustained updates/s vs full recompute.

Drives two identical engines through the same 10%-churn RMAT update
stream in 0.1% batches.  After every batch, engine A re-converges
**incrementally** (strategy ``"delta"``: warm start from the previous
fixpoint, frontier seeded from the dirty edge mutations, residual
propagation, frontier-quiescence termination) while engine B re-runs
the program **from scratch**.  The sustained update rate is

    edges changed / sum of per-batch analysis sim-seconds

so the headline ratio is exactly "how many more graph updates per
second can the cluster absorb when analysis converges from the previous
fixpoint instead of restarting".

Two programs, two stream shapes:

* **PageRank** — vertex-preserving churn (deletes only edges whose
  endpoints keep degree >= 2, inserts only between existing vertices,
  so ``requires_stable_n`` holds and the delta strategy engages).
  Correctness bar: the incremental result matches the from-scratch
  result within ``tol`` after every batch.
* **WCC** — insert-only batches (min-label WCC cannot undo a label, so
  ``deletions_invalidate`` forces scratch on deletes).  Correctness
  bar: bit-identical labels after every batch.

Results land in ``BENCH_incremental.json``.  ``--smoke`` runs a small
scale with a short stream and asserts the >= 2x sustained speedup the
PR gates CI on; the full run asserts the >= 5x headline claim.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench import Table, print_experiment_header
from repro.core import ElGA, PageRank, WCC
from repro.gen.rmat import rmat_graph
from repro.graph.stream import EdgeBatch

SCALE = 14
EDGE_FACTOR = 8
GRAPH_SEED = 3
TOL = 1e-5          # comparison bar + scratch engine's convergence tolerance
# The incremental chain carries its halting slack forward: each delta
# run starts from the previous (approximate) fixpoint, so halting at
# TOL would let ~TOL-sized errors random-walk across the 100-batch
# stream (measured drift: 1.3e-5 by batch 100).  Converging the
# incremental runs 5x tighter arrests the drift (standing error vs a
# 1e-13 reference stays in 2-6e-6 with no growth) at negligible cost —
# the extra rounds ride a tiny frontier.  The scratch engine recomputes
# fresh each batch and needs no such guard.
INC_TOL = 2e-6      # incremental runs' halting tolerance
DELTA_TOL = 1e-8    # per-vertex activation threshold for delta runs
BATCH_FRAC = 0.001  # edges changed per batch, as a fraction of |E|
N_BATCHES = 100     # 0.1% x 100 = the 10%-churn stream

SMOKE_SCALE = 12
SMOKE_BATCHES = 5

# Hub splitting is elasticity machinery, orthogonal to what this bench
# measures; a split hub would force the safe "dense" fallback and turn
# the cells into a warm-start-only comparison.
ENGINE = dict(nodes=2, agents_per_node=2, seed=7, replication_threshold=10**9)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"


def _engines(us, vs):
    a = ElGA(**ENGINE)
    a.ingest_edges(us, vs)
    b = ElGA(**ENGINE)
    b.ingest_edges(us, vs)
    return a, b


def churn_batch(ref, rng, frac: float) -> EdgeBatch:
    """A vertex-preserving churn batch: k deletes + k inserts.

    Deletes only edges whose endpoints keep total degree >= 2 afterwards
    and inserts only between already-present vertices, so no vertex
    appears or disappears and PageRank's ``requires_stable_n`` holds.
    """
    edges = [(u, v) for u in ref.vertices() for v in ref.out_neighbors(u)]
    deg: dict = {}
    for u, v in edges:
        deg[u] = deg.get(u, 0) + 1
        deg[v] = deg.get(v, 0) + 1
    k = max(1, int(len(edges) * frac))
    dels = []
    for i in rng.permutation(len(edges)):
        u, v = edges[i]
        if deg[u] >= 2 and deg[v] >= 2:
            dels.append((u, v))
            deg[u] -= 1
            deg[v] -= 1
            if len(dels) == k:
                break
    verts = np.fromiter(deg, dtype=np.int64)
    have = set(edges)
    ins = []
    while len(ins) < len(dels):
        u, v = int(rng.choice(verts)), int(rng.choice(verts))
        if u != v and (u, v) not in have:
            ins.append((u, v))
            have.add((u, v))
    actions = np.concatenate(
        [np.full(len(dels), -1), np.ones(len(ins))]
    ).astype(np.int8)
    eu = np.array([e[0] for e in dels] + [e[0] for e in ins], dtype=np.int64)
    ev = np.array([e[1] for e in dels] + [e[1] for e in ins], dtype=np.int64)
    return EdgeBatch(actions, eu, ev)


def insert_batch(verts: np.ndarray, rng, k: int) -> EdgeBatch:
    """k random inserts between existing vertices (self-loops dropped)."""
    eu = rng.choice(verts, k)
    ev = rng.choice(verts, k)
    keep = eu != ev
    eu, ev = eu[keep], ev[keep]
    return EdgeBatch(np.ones(len(eu), dtype=np.int8), eu, ev)


def _run_pagerank(scale: int, n_batches: int) -> dict:
    us, vs, n = rmat_graph(scale=scale, edge_factor=EDGE_FACTOR, seed=GRAPH_SEED)
    a, b = _engines(us, vs)
    pr_inc = PageRank(max_iters=400, tol=INC_TOL, delta_tol=DELTA_TOL)
    pr_full = PageRank(max_iters=200, tol=TOL)
    a.run(pr_inc)  # establish the fixpoint both streams start from
    rng = np.random.default_rng(0)
    t_inc = t_full = 0.0
    edges_changed = 0
    errs = []
    steps_inc = []
    steps_full = []
    for _ in range(n_batches):
        batch = churn_batch(a.reference, rng, BATCH_FRAC)
        a.apply_batch(batch)
        b.apply_batch(batch)
        # Drain post-ingest maintenance (sketch-flush migration checks)
        # so the timed window holds only analysis work — for both sides.
        a.quiesce()
        b.quiesce()
        r_inc = a.run(pr_inc, incremental=True)
        r_full = b.run(pr_full)
        assert r_inc.strategy == "delta", r_inc.strategy
        t_inc += r_inc.sim_seconds
        t_full += r_full.sim_seconds
        edges_changed += len(batch.us)
        steps_inc.append(r_inc.steps)
        steps_full.append(r_full.steps)
        errs.append(
            float(
                np.abs(
                    r_inc.as_array(n, default=0.0) - r_full.as_array(n, default=0.0)
                ).max()
            )
        )
    assert max(errs) < TOL, f"incremental diverged: err {max(errs):.2e} >= tol {TOL:.0e}"
    return {
        "n_vertices": n,
        "n_edges": len(us),
        "batches": n_batches,
        "edges_changed": edges_changed,
        "sim_seconds_incremental": t_inc,
        "sim_seconds_scratch": t_full,
        "updates_per_sec_incremental": edges_changed / t_inc,
        "updates_per_sec_scratch": edges_changed / t_full,
        "speedup": t_full / t_inc,
        "err_max": max(errs),
        "tol": TOL,
        "mean_steps_incremental": float(np.mean(steps_inc)),
        "mean_steps_scratch": float(np.mean(steps_full)),
    }


def _run_wcc(scale: int, n_batches: int) -> dict:
    us, vs, n = rmat_graph(scale=scale, edge_factor=EDGE_FACTOR, seed=GRAPH_SEED)
    a, b = _engines(us, vs)
    wcc = WCC()
    a.run(wcc)
    rng = np.random.default_rng(1)
    verts = np.fromiter(a.reference.vertices(), dtype=np.int64)
    k = max(1, int(len(us) * BATCH_FRAC))
    t_inc = t_full = 0.0
    edges_changed = 0
    steps_inc = []
    steps_full = []
    for _ in range(n_batches):
        batch = insert_batch(verts, rng, k)
        a.apply_batch(batch)
        b.apply_batch(batch)
        a.quiesce()
        b.quiesce()
        r_inc = a.run(wcc, incremental=True)
        r_full = b.run(WCC())
        assert r_inc.strategy == "delta", r_inc.strategy
        assert r_inc.values == r_full.values, "incremental WCC labels diverged"
        t_inc += r_inc.sim_seconds
        t_full += r_full.sim_seconds
        edges_changed += len(batch.us)
        steps_inc.append(r_inc.steps)
        steps_full.append(r_full.steps)
    return {
        "n_vertices": n,
        "n_edges": len(us),
        "batches": n_batches,
        "edges_changed": edges_changed,
        "sim_seconds_incremental": t_inc,
        "sim_seconds_scratch": t_full,
        "updates_per_sec_incremental": edges_changed / t_inc,
        "updates_per_sec_scratch": edges_changed / t_full,
        "speedup": t_full / t_inc,
        "exact_match": True,
        "mean_steps_incremental": float(np.mean(steps_inc)),
        "mean_steps_scratch": float(np.mean(steps_full)),
    }


def run_experiment(smoke: bool = False) -> dict:
    scale = SMOKE_SCALE if smoke else SCALE
    batches = SMOKE_BATCHES if smoke else N_BATCHES
    start = time.perf_counter()
    payload = {
        "scale": scale,
        "edge_factor": EDGE_FACTOR,
        "batch_frac": BATCH_FRAC,
        "batches": batches,
        "tol": TOL,
        "inc_tol": INC_TOL,
        "delta_tol": DELTA_TOL,
        "engine": {k: v for k, v in ENGINE.items()},
        "programs": {
            "pagerank": _run_pagerank(scale, batches),
            "wcc": _run_wcc(scale, batches),
        },
    }
    payload["wall_seconds"] = time.perf_counter() - start
    if not smoke:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def show(payload: dict) -> None:
    print_experiment_header(
        "Incremental delta engine",
        "converge from the previous fixpoint vs full recompute",
    )
    table = Table(
        ["program", "upd/s incr", "upd/s scratch", "speedup",
         "steps incr", "steps scratch", "err max"]
    )
    for name, cell in payload["programs"].items():
        table.add_row(
            name,
            cell["updates_per_sec_incremental"],
            cell["updates_per_sec_scratch"],
            cell["speedup"],
            cell["mean_steps_incremental"],
            cell["mean_steps_scratch"],
            cell.get("err_max", 0.0),
        )
    table.show()
    if RESULT_PATH.exists():
        print(f"[written] {RESULT_PATH}")


def _assert_smoke_bar(payload: dict) -> None:
    # CI gate: the delta strategy must at least double the sustained
    # update rate on both programs, even at smoke scale.
    for name, cell in payload["programs"].items():
        assert cell["speedup"] >= 2.0, (name, cell)


def test_incremental_sustained_rate():
    payload = run_experiment(smoke=True)
    show(payload)
    _assert_smoke_bar(payload)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    payload = run_experiment(smoke=smoke)
    show(payload)
    if smoke:
        _assert_smoke_bar(payload)
        print("[smoke] ok: >=2x sustained updates/s on both programs")
    else:
        for name, cell in payload["programs"].items():
            assert cell["speedup"] >= 5.0, (name, cell)
        print("[full] ok: >=5x sustained updates/s on both programs")
