"""Kernel acceleration benchmark — C backend vs the numpy reference.

Three layers, matching the raw-speed push:

* **Microbenches** — the three hot kernels (placement hash, canonical
  ``combine_pairs``, PageRank fold + apply) timed head-to-head against
  the pure-numpy reference on realistic RMAT-derived batches.  Results
  must be *bit-identical* between backends (the reference path is the
  determinism oracle), and the full run gates a >= 5x wall-clock
  speedup per kernel.
* **Million-edge end-to-end** — a scale-17 RMAT (~10^6 edges) ingested
  into the cluster and run through PageRank, wall-clock and simulated
  seconds both reported.  This is the "routine" scale the storage
  refactor + kernels buy; it runs in CI.
* **Scenario rows** — k-core, label propagation, and count-sketch
  triangle counting at mid scale, with the sketch estimate checked
  against the exact scipy oracle.

Results land in ``BENCH_kernels.json``.  ``--smoke`` runs only the
microbenches at reduced size and asserts a >= 3x speedup per kernel —
the CI regression gate.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.common import timed_run
except ModuleNotFoundError:  # script mode: sys.path[0] is benchmarks/
    from common import timed_run
from repro import kernels
from repro.bench import Table, print_experiment_header
from repro.core import ElGA, PageRank
from repro.core.algorithms import KCore, LabelPropagation
from repro.gen.rmat import rmat_graph
from repro.kernels import reference
from repro.sketch.triangles import triangle_count_exact, triangle_count_sketch

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

SEED = 5
# Microbench batch sizes: full mode exercises the million-row regime
# the cluster's hot loops see at scale 17; smoke keeps CI fast.
MICRO_ROWS = 1 << 21
SMOKE_ROWS = 1 << 19
MICRO_REPEATS = 5
# Gates: the committed full run must clear 5x per kernel; the CI smoke
# run (noisier shared runners, smaller batches) gates at 3x.
FULL_BAR = 5.0
SMOKE_BAR = 3.0

E2E_SCALE = 17
E2E_EDGE_FACTOR = 8
E2E_PR_ITERS = 3
SCENARIO_SCALE = 13
TRIANGLE_SCALE = 12


def _require_backend() -> None:
    if not kernels.available():
        raise SystemExit(
            "C kernel backend unavailable on this host "
            "(no compiler?) — the kernels bench cannot run"
        )


def _best_of(fn, repeats: int = MICRO_REPEATS) -> float:
    """Best wall-clock of ``repeats`` calls, GC paused while timed."""
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        gc.enable()
    return best


def _pair_workload(rows: int) -> tuple:
    """(dst, val) batches shaped like a scale-17 scatter: heavy-tailed
    destinations, float64 message values."""
    rng = np.random.default_rng(SEED)
    us, vs, n = rmat_graph(14, edge_factor=4, seed=SEED)
    dst = vs[rng.integers(0, len(vs), size=rows)].astype(np.int64)
    val = rng.standard_normal(rows)
    ids = np.unique(dst)
    return dst, val, ids


def micro_hash(rows: int) -> dict:
    rng = np.random.default_rng(SEED)
    keys = rng.integers(0, 1 << 63, size=rows, dtype=np.uint64)
    ref = reference.wang64_u64(keys)
    acc = kernels.c_wang64_u64(keys)
    assert np.array_equal(ref, acc), "hash backends diverged"
    t_ref = _best_of(lambda: reference.wang64_u64(keys))
    t_acc = _best_of(lambda: kernels.c_wang64_u64(keys))
    return {
        "rows": rows,
        "ref_seconds": t_ref,
        "accel_seconds": t_acc,
        "speedup": t_ref / t_acc,
        "bit_identical": True,
    }


def micro_combine(rows: int) -> dict:
    dst, val, _ = _pair_workload(rows)
    ref = reference.combine_pairs(dst, val, np.add, 0.0)
    acc = kernels.c_combine_pairs(dst, val, np.add, 0.0)
    assert np.array_equal(ref[0], acc[0]) and np.array_equal(ref[1], acc[1]), (
        "combine_pairs backends diverged"
    )
    t_ref = _best_of(lambda: reference.combine_pairs(dst, val, np.add, 0.0))
    t_acc = _best_of(lambda: kernels.c_combine_pairs(dst, val, np.add, 0.0))
    return {
        "rows": rows,
        "ref_seconds": t_ref,
        "accel_seconds": t_acc,
        "speedup": t_ref / t_acc,
        "bit_identical": True,
    }


def micro_fold(rows: int) -> dict:
    dst, val, ids = _pair_workload(rows)

    def run_ref():
        accum = np.zeros(len(ids))
        got = np.zeros(len(ids), dtype=bool)
        reference.fold_pairs(accum, got, ids, dst, val, np.add)
        return accum, got

    def run_acc():
        accum = np.zeros(len(ids))
        got = np.zeros(len(ids), dtype=bool)
        kernels.c_fold_pairs(accum, got, ids, dst, val, np.add)
        return accum, got

    ra, rg = run_ref()
    aa, ag = run_acc()
    assert np.array_equal(ra, aa) and np.array_equal(rg, ag), (
        "fold_pairs backends diverged"
    )
    t_ref = _best_of(run_ref)
    t_acc = _best_of(run_acc)
    return {
        "rows": rows,
        "hosted_ids": len(ids),
        "ref_seconds": t_ref,
        "accel_seconds": t_acc,
        "speedup": t_ref / t_acc,
        "bit_identical": True,
    }


MICROS = {"wang64": micro_hash, "combine_pairs": micro_combine, "pagerank_fold": micro_fold}


def run_micros(rows: int) -> dict:
    return {name: fn(rows) for name, fn in MICROS.items()}


def _build_engine(us, vs, seed=SEED, threshold=4096) -> ElGA:
    elga = ElGA(
        nodes=2,
        agents_per_node=2,
        seed=seed,
        replication_threshold=threshold,
        keep_reference=False,
    )
    elga.ingest_edges(us, vs, n_streamers=4)
    return elga


def run_end_to_end() -> dict:
    """Scale-17 RMAT (~10^6 edges) through ingest + PageRank, run once
    accelerated and once on the reference path; the two runs must agree
    bit for bit (the determinism-oracle contract, trace-diff clean)."""
    us, vs, n = rmat_graph(E2E_SCALE, edge_factor=E2E_EDGE_FACTOR, seed=SEED)
    runs = {}
    values = {}
    for label, flag in (("accel", True), ("reference", False)):
        kernels.set_enabled(flag)
        try:
            start = time.perf_counter()
            engine = _build_engine(us, vs)
            ingest_wall = time.perf_counter() - start
            result, pr_wall = timed_run(
                engine, PageRank(max_iters=E2E_PR_ITERS, tol=1e-15)
            )
        finally:
            kernels.set_enabled(False)
        runs[label] = {
            "backend": "c" if flag else "numpy",
            "ingest_wall_seconds": ingest_wall,
            "pagerank_wall_seconds": pr_wall,
            "pagerank_sim_seconds": result.sim_seconds,
            "steps": result.steps,
            "checksum": float(sum(result.values.values())),
        }
        values[label] = result.values
    bit_identical = values["accel"] == values["reference"]
    assert bit_identical, "accelerated scale-17 run diverged from reference"
    return {
        "scale": E2E_SCALE,
        "n_vertices": n,
        "n_edges": int(len(us)),
        "pr_iters": E2E_PR_ITERS,
        "bit_identical": bit_identical,
        **runs,
    }


def run_scenarios() -> dict:
    """k-core / LPA / triangles riding the new scale."""
    us, vs, n = rmat_graph(SCENARIO_SCALE, edge_factor=8, seed=SEED)
    out: dict = {"scale": SCENARIO_SCALE, "n_vertices": n, "n_edges": int(len(us))}

    engine = _build_engine(us, vs)
    kcore_res, kcore_wall = timed_run(engine, KCore(4))
    out["kcore4"] = {
        "wall_seconds": kcore_wall,
        "sim_seconds": kcore_res.sim_seconds,
        "steps": kcore_res.steps,
        "in_core": int(sum(kcore_res.values.values())),
    }

    engine = _build_engine(us, vs)
    lpa = LabelPropagation(max_iters=20)
    lpa_res, lpa_wall = timed_run(engine, lpa)
    labels = lpa.labels(np.fromiter(lpa_res.values.values(), dtype=np.float64))
    out["lpa"] = {
        "wall_seconds": lpa_wall,
        "sim_seconds": lpa_res.sim_seconds,
        "steps": lpa_res.steps,
        "communities": int(len(np.unique(labels))),
    }

    tus, tvs, _ = rmat_graph(TRIANGLE_SCALE, edge_factor=8, seed=SEED)
    start = time.perf_counter()
    exact = triangle_count_exact(tus, tvs)
    exact_wall = time.perf_counter() - start
    start = time.perf_counter()
    est = triangle_count_sketch(tus, tvs, width=256, seed=SEED)
    sketch_wall = time.perf_counter() - start
    out["triangles"] = {
        "scale": TRIANGLE_SCALE,
        "exact": int(exact),
        "sketch_estimate": est,
        "relative_error": abs(est - exact) / max(exact, 1),
        "exact_wall_seconds": exact_wall,
        "sketch_wall_seconds": sketch_wall,
    }
    return out


def run_experiment(smoke: bool = False) -> dict:
    _require_backend()
    rows = SMOKE_ROWS if smoke else MICRO_ROWS
    payload: dict = {
        "micro_rows": rows,
        "micro": run_micros(rows),
    }
    if not smoke:
        payload["end_to_end"] = run_end_to_end()
        payload["scenarios"] = run_scenarios()
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def show(payload: dict) -> None:
    print_experiment_header(
        "Kernel acceleration",
        "C backend vs numpy reference (bit-identical by construction)",
    )
    table = Table(["kernel", "rows", "ref ms", "accel ms", "speedup"])
    for name, cell in payload["micro"].items():
        table.add_row(
            name,
            cell["rows"],
            1e3 * cell["ref_seconds"],
            1e3 * cell["accel_seconds"],
            cell["speedup"],
        )
    table.show()
    e2e = payload.get("end_to_end")
    if e2e:
        acc = e2e["accel"]
        print(
            f"[e2e] scale-{e2e['scale']} RMAT: {e2e['n_edges']:,} edges — "
            f"ingest {acc['ingest_wall_seconds']:.1f}s wall, "
            f"pagerank x{e2e['pr_iters']} {acc['pagerank_wall_seconds']:.1f}s wall "
            f"/ {acc['pagerank_sim_seconds']:.3f}s sim; "
            f"accel == reference bit-identical: {e2e['bit_identical']}"
        )
    sc = payload.get("scenarios")
    if sc:
        print(
            f"[scenarios] scale-{sc['scale']}: "
            f"kcore4 {sc['kcore4']['wall_seconds']:.1f}s wall "
            f"({sc['kcore4']['in_core']} in core), "
            f"lpa {sc['lpa']['wall_seconds']:.1f}s wall "
            f"({sc['lpa']['communities']} communities), "
            f"triangles sketch err {sc['triangles']['relative_error']:.3f}"
        )
    if RESULT_PATH.exists():
        print(f"[written] {RESULT_PATH}")


def _assert_bar(payload: dict, bar: float) -> None:
    for name, cell in payload["micro"].items():
        assert cell["bit_identical"], f"{name}: backends diverged"
        assert cell["speedup"] >= bar, (
            f"{name}: speedup {cell['speedup']:.2f}x below the {bar}x gate"
        )


def test_kernel_speedups():
    payload = run_experiment()
    show(payload)
    _assert_bar(payload, FULL_BAR)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    payload = run_experiment(smoke=smoke)
    show(payload)
    _assert_bar(payload, SMOKE_BAR if smoke else FULL_BAR)
    if smoke:
        print(f"[smoke] ok: >={SMOKE_BAR}x on all three kernels")
