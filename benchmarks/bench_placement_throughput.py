"""Placement fast-path microbenchmark — edges/sec through owner_of_edges.

Measures the tentpole win of the placement fast path directly, outside
the simulator: resolve a large edge batch with

* the **pre-PR scalar path** (reimplemented inline below, faithful to
  the per-unique-hub Python loop this PR removed),
* the **vectorized path** (batched ring successors + matrix rendezvous),
* the **warm epoch-versioned cache** on top of the vectorized path,

for split-vertex mixes of 0%, 1%, and 10% of rows touching a hub.
Results (and the speedup the PR claims) are written to
``BENCH_placement.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bench import Table, print_experiment_header
from repro.hashing import ConsistentHashRing
from repro.hashing.hashes import as_u64_keys, wang64
from repro.partition import EdgePlacer, PlacementCache
from repro.partition.placer import _LEVEL2_SALT, _rendezvous_pick
from repro.sketch import CountMinSketch

N_EDGES = 120_000
N_AGENTS = 64
# Power-law graphs have thousands of above-threshold hubs; the pre-PR
# scalar path pays one Python iteration (plus an O(split rows) scan)
# per unique hub in the batch.
N_HUBS = 3_000
N_VERTICES = 60_000
MIXES = [0.0, 0.01, 0.10]
TRIALS = 3
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_placement.json"


def scalar_owner_of_edges(placer: EdgePlacer, own, other) -> np.ndarray:
    """The pre-PR scalar split path, verbatim: one Python iteration per
    unique split vertex, scalar ring walk, per-vertex rendezvous pick."""
    own = np.atleast_1d(np.asarray(own, dtype=np.int64))
    other = np.atleast_1d(np.asarray(other, dtype=np.int64))
    k = placer.replication_factor(own)
    own_hash = np.asarray(placer.hash_fn(as_u64_keys(own)))
    owners = placer.ring.lookup_hash(own_hash)
    split = np.nonzero(k > 1)[0]
    if len(split):
        owners = owners.copy()
        other_hash = np.asarray(placer.hash_fn(as_u64_keys(other[split])))
        uniq, inverse = np.unique(own[split], return_inverse=True)
        for idx, _vertex in enumerate(uniq):
            rows = np.nonzero(inverse == idx)[0]
            kv = int(k[split[rows[0]]])
            replicas = placer.ring.successors_hash(int(own_hash[split[rows[0]]]), kv)
            owners[split[rows]] = _rendezvous_pick(replicas, other_hash[rows])
    return owners


def build_placer() -> EdgePlacer:
    ring = ConsistentHashRing(list(range(N_AGENTS)), virtual_factor=16, seed=3)
    sketch = CountMinSketch(width=8192, depth=4, seed=3)
    sketch.add(np.repeat(np.arange(N_HUBS, dtype=np.int64), 200))
    return EdgePlacer(ring, sketch, replication_threshold=100)


def workload(split_frac: float, seed: int = 7):
    rng = np.random.default_rng(seed)
    own = rng.integers(N_HUBS, N_VERTICES, size=N_EDGES).astype(np.int64)
    other = rng.integers(0, N_VERTICES, size=N_EDGES).astype(np.int64)
    if split_frac > 0:
        mask = rng.random(N_EDGES) < split_frac
        own[mask] = rng.integers(0, N_HUBS, size=int(mask.sum()))
    return own, other


def best_rate(fn, *args) -> float:
    """Best-of-TRIALS edges/sec (best-of defeats interpreter noise)."""
    best = 0.0
    for _ in range(TRIALS):
        start = time.perf_counter()
        fn(*args)
        elapsed = time.perf_counter() - start
        best = max(best, N_EDGES / elapsed)
    return best


def run_experiment() -> dict:
    placer = build_placer()
    results = {}
    for frac in MIXES:
        own, other = workload(frac)
        expected = scalar_owner_of_edges(placer, own, other)
        assert np.array_equal(placer.owner_of_edges(own, other), expected), (
            "vectorized path diverged from the scalar reference"
        )
        cache = PlacementCache().bind((1, 0, 0), build_placer())
        assert np.array_equal(cache.owner_of_edges(own, other), expected)

        scalar = best_rate(scalar_owner_of_edges, placer, own, other)
        vectorized = best_rate(placer.owner_of_edges, own, other)
        warm = best_rate(cache.owner_of_edges, own, other)
        assert cache.last_misses == 0, "warm cache still missing"
        results[f"{frac:.0%}"] = {
            "split_fraction": frac,
            "scalar_edges_per_sec": scalar,
            "vectorized_edges_per_sec": vectorized,
            "warm_cache_edges_per_sec": warm,
            "vectorized_speedup": vectorized / scalar,
            "warm_cache_speedup": warm / scalar,
        }
    payload = {
        "n_edges": N_EDGES,
        "n_agents": N_AGENTS,
        "n_hubs": N_HUBS,
        "trials": TRIALS,
        "mixes": results,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def show(payload: dict) -> None:
    print_experiment_header(
        "Placement throughput", "owner_of_edges edges/sec by split mix"
    )
    table = Table(
        ["split mix", "scalar e/s", "vectorized e/s", "warm cache e/s", "vec ×", "cache ×"]
    )
    for mix, row in payload["mixes"].items():
        table.add_row(
            mix,
            row["scalar_edges_per_sec"],
            row["vectorized_edges_per_sec"],
            row["warm_cache_edges_per_sec"],
            row["vectorized_speedup"],
            row["warm_cache_speedup"],
        )
    table.show()
    print(f"[written] {RESULT_PATH}")


def test_placement_throughput():
    payload = run_experiment()
    show(payload)
    ten_pct = payload["mixes"]["10%"]
    # The PR's acceptance bar: >= 3x edges/sec on the 10%-split mix over
    # the pre-PR scalar path.
    assert ten_pct["vectorized_speedup"] >= 3.0, ten_pct
    # The warm cache must never be slower than going to the placer.
    assert ten_pct["warm_cache_speedup"] >= ten_pct["vectorized_speedup"] * 0.8


if __name__ == "__main__":
    show(run_experiment())
