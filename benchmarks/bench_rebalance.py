"""Closed-loop rebalance benchmark — straggler excess, static vs adaptive.

Scenario: a ring whose weights have gone stale — e.g. tuned for a graph
that has since churned — so one agent carries ~2x its fair share of a
power-law graph and every superstep waits on it at the barrier.  Both
arms start from the same mis-weighted ring:

* **static** — keeps the stale weights for every run,
* **rebalanced** — closes the loop after each run:
  ``maybe_rebalance()`` reads the per-agent compute totals from the
  trace window recorded since its previous call, plans a bounded
  re-weight, and the lead adopts it (term-fenced, epoch-bumping) over
  the EDGE_MIGRATE path.

Metric: **straggler excess** — per superstep, the max per-agent compute
minus the mean (the time every other agent idles at the barrier),
summed over the measured runs.  Simulated seconds, fully deterministic.
Each run is scored from its own trace window: round ids restart per
run, so summarising the cumulative trace would merge rows across runs
and corrupt both the metric and the planner's signal.

Results land in ``BENCH_rebalance.json``.  ``--smoke`` runs one small
cell and asserts the >= 1.5x straggler-excess reduction the PR gates
CI on, plus result preservation across the migrations.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

from repro.bench import Table, print_experiment_header
from repro.core import ElGA, PageRank
from repro.gen import powerlaw_graph
from repro.obs.summary import TraceSummary
from repro.obs.trace import Trace

ALPHA = 2.3
PR_ITERS = 8
ENGINE_SEED = 7
#: The stale ring: agent 0 at 2.4x its fair share of the key space.
STALE_WEIGHTS = {0: 2.4, 1: 0.5, 2: 1.2, 3: 0.6}
SKEW_THRESHOLD = 1.05
FULL_CELLS = [("g3", 3), ("g5", 5), ("g11", 11)]  # graph seeds
FULL_SIZE = (600, 4000, 3)  # vertices, edges, measured runs
SMOKE_SIZE = (300, 2000, 2)
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_rebalance.json"
SMOKE_BAR = 1.5


def _build(n_vertices: int, n_edges: int, graph_seed: int) -> ElGA:
    elga = ElGA(
        nodes=2,
        agents_per_node=2,
        seed=ENGINE_SEED,
        tracing=True,
        keep_reference=False,
        replication_threshold=10**9,  # keep the skew a placement problem
        rebalance_skew_threshold=SKEW_THRESHOLD,
    )
    us, vs, _ = powerlaw_graph(n_vertices, n_edges, alpha=ALPHA, seed=graph_seed)
    elga.ingest_edges(us, vs)
    elga.quiesce()
    # Both arms inherit the same stale partition.
    elga.rebalance(STALE_WEIGHTS)
    return elga


def _window(elga: ElGA, mark: tuple) -> tuple:
    """One run's summary: the trace slice appended since ``mark``."""
    trace = elga.trace()
    summary = TraceSummary.from_trace(
        Trace(spans=trace.spans[mark[0] :], events=trace.events[mark[1] :])
    )
    return summary, (len(trace.spans), len(trace.events))


def _program() -> PageRank:
    return PageRank(max_iters=PR_ITERS, tol=1e-15)


def _run_arm(n_vertices: int, n_edges: int, graph_seed: int, runs: int, adaptive: bool) -> dict:
    elga = _build(n_vertices, n_edges, graph_seed)
    mark = (0, 0)
    # Probe run: the adaptive arm needs one observed run before it can
    # plan; excluded from both arms' scores to keep them symmetric.
    elga.run(_program())
    _, mark = _window(elga, mark)
    reports = []
    if adaptive:
        report = elga.maybe_rebalance()
        if report is not None:
            reports.append(report)
    excess = 0.0
    checksum = 0.0
    for _ in range(runs):
        result = elga.run(_program())
        checksum = float(sum(result.values.values()))
        summary, mark = _window(elga, mark)
        excess += summary.straggler_excess()
        if adaptive:
            report = elga.maybe_rebalance()
            if report is not None:
                reports.append(report)
    return {
        "straggler_excess_s": excess,
        "checksum": checksum,
        "weights": {int(k): v for k, v in elga.cluster.current_weights().items()},
        "rebalance_rounds": len(reports),
        "migrate_messages": sum(r["migrate_messages"] for r in reports),
        "skew_first": reports[0]["skew_before"] if reports else None,
        "skew_last": reports[-1]["skew_before"] if reports else None,
    }


def _cell(n_vertices: int, n_edges: int, graph_seed: int, runs: int) -> dict:
    static = _run_arm(n_vertices, n_edges, graph_seed, runs, adaptive=False)
    adaptive = _run_arm(n_vertices, n_edges, graph_seed, runs, adaptive=True)
    # Different partitions regroup PageRank's float adds, so the arms
    # agree to ~1 ulp rather than bitwise.  The bitwise contracts
    # (results move with the edges; WCC identical across migration;
    # chaos mirrors) live in tests/rebalance/ and tests/chaos/.
    assert math.isclose(static["checksum"], adaptive["checksum"], rel_tol=1e-12), (
        f"rebalancing changed the answer: {adaptive['checksum']} != {static['checksum']}"
    )
    assert adaptive["migrate_messages"] > 0, "the loop never migrated anything"
    return {
        "n_vertices": n_vertices,
        "n_edges": n_edges,
        "graph_seed": graph_seed,
        "measured_runs": runs,
        "static": static,
        "rebalanced": adaptive,
        "excess_reduction": static["straggler_excess_s"]
        / max(1e-12, adaptive["straggler_excess_s"]),
    }


def run_experiment(smoke: bool = False) -> dict:
    cells: dict = {}
    if smoke:
        nv, ne, runs = SMOKE_SIZE
        cells["smoke"] = _cell(nv, ne, FULL_CELLS[0][1], runs)
    else:
        nv, ne, runs = FULL_SIZE
        for label, graph_seed in FULL_CELLS:
            cells[label] = _cell(nv, ne, graph_seed, runs)
    payload = {
        "alpha": ALPHA,
        "pr_iters": PR_ITERS,
        "stale_weights": {str(k): v for k, v in STALE_WEIGHTS.items()},
        "skew_threshold": SKEW_THRESHOLD,
        "cells": cells,
    }
    if not smoke:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def show(payload: dict) -> None:
    print_experiment_header(
        "Load-adaptive rebalancing",
        "straggler excess per run window, stale ring vs closed loop",
    )
    table = Table(
        ["cell", "excess static (ms)", "excess rebal (ms)", "reduction",
         "skew 1st", "rounds", "migrates"]
    )
    for label, cell in payload["cells"].items():
        table.add_row(
            label,
            1e3 * cell["static"]["straggler_excess_s"],
            1e3 * cell["rebalanced"]["straggler_excess_s"],
            cell["excess_reduction"],
            cell["rebalanced"]["skew_first"] or 0.0,
            cell["rebalanced"]["rebalance_rounds"],
            cell["rebalanced"]["migrate_messages"],
        )
    table.show()
    if RESULT_PATH.exists():
        print(f"[written] {RESULT_PATH}")


def _assert_smoke_bar(cell: dict) -> None:
    # CI gate: closing the loop must cut barrier idle time by >= 1.5x
    # on the stale-ring cell (measured headroom is ~4x or better).
    assert cell["excess_reduction"] >= SMOKE_BAR, cell
    assert cell["rebalanced"]["rebalance_rounds"] >= 1, cell


def test_rebalance_closes_the_gap():
    payload = run_experiment(smoke=True)
    show(payload)
    _assert_smoke_bar(payload["cells"]["smoke"])


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    payload = run_experiment(smoke=smoke)
    show(payload)
    if smoke:
        _assert_smoke_bar(payload["cells"]["smoke"])
        print(f"[smoke] ok: >={SMOKE_BAR}x straggler-excess reduction")
