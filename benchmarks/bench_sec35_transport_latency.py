"""§3.5 — transport latency microbenchmark.

"Using Mellanox ConnectX/5 NICs, we benchmarked the latency of an MPI
send at around 1 µs, a raw TCP send at 4 µs and a send through ZeroMQ
at over 20 µs."  This harness runs an in-simulator ping-pong over each
transport model and reports the measured one-way latencies — the
constants every other experiment's communication costs are built on.
"""

import pytest

from repro.bench import Table, print_experiment_header
from repro.net import Message, Network, PacketType, TransportModel
from repro.sim import Entity, SimKernel


class Ping(Entity):
    def __init__(self, network, name, node):
        super().__init__(network, name)
        self.node = node
        self.received_at = []

    def handle_message(self, message):
        self.received_at.append(self.now)


def one_way_latency(transport: TransportModel, size_bytes: int = 64) -> float:
    kernel = SimKernel()
    network = Network(kernel, transport=transport)
    a = Ping(network, "a", node=0)
    b = Ping(network, "b", node=1)
    msg = Message(ptype=PacketType.VERTEX_MSG, payload=None, size_bytes=size_bytes)
    msg.src = a.address
    msg.dst = b.address
    start = kernel.now
    network.send(msg)
    kernel.run()
    return b.received_at[0] - start


def run_experiment():
    return {
        "mpi": one_way_latency(TransportModel.mpi()),
        "tcp": one_way_latency(TransportModel.raw_tcp()),
        "zmq": one_way_latency(TransportModel.zeromq()),
        "zmq_ipc": one_way_latency_intra(),
    }


def one_way_latency_intra() -> float:
    kernel = SimKernel()
    network = Network(kernel, transport=TransportModel.zeromq())
    a = Ping(network, "a", node=0)
    b = Ping(network, "b", node=0)  # same node: ipc:// path
    msg = Message(ptype=PacketType.VERTEX_MSG, payload=None, size_bytes=64)
    msg.src = a.address
    msg.dst = b.address
    network.send(msg)
    kernel.run()
    return b.received_at[0]


def test_sec35_transport_latency(benchmark):
    latencies = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment_header("§3.5", "one-way send latency per transport (64 B)")
    table = Table(["transport", "latency µs", "paper"])
    table.add_row("MPI", latencies["mpi"] * 1e6, "~1 µs")
    table.add_row("raw TCP", latencies["tcp"] * 1e6, "4 µs")
    table.add_row("ZeroMQ (tcp)", latencies["zmq"] * 1e6, ">20 µs")
    table.add_row("ZeroMQ (ipc, same node)", latencies["zmq_ipc"] * 1e6, "—")
    table.show()

    assert latencies["mpi"] == pytest.approx(1e-6, rel=0.05)
    assert latencies["tcp"] == pytest.approx(4e-6, rel=0.05)
    assert latencies["zmq"] >= 20e-6
    # The paper's 20× MPI-vs-ZeroMQ gap (§4.7).
    assert latencies["zmq"] / latencies["mpi"] == pytest.approx(20.0, rel=0.05)
    assert latencies["zmq_ipc"] < latencies["zmq"]
