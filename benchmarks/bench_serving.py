"""Query-serving plane benchmark — cache + coalescing on vs off.

Runs WCC on a power-law graph, then drives an open-loop Zipf(1.0)
query stream (diurnal rate curve, a six-figure simulated client
population multiplexed over a handful of proxies) through the serving
plane twice:

* **off** — the pre-PR proxy: no result cache, no coalescing; every
  query is one agent fan-out (``serving_cache_ttl=0``,
  ``serving_coalesce_window=0``);
* **on**  — the serving plane defaults plus a bench-length TTL.

The agent-side cost of answering a query is deliberately raised
(``elga_query_op``) so agent capacity is the bottleneck, as in a real
deployment where the serving tier exists precisely because the compute
tier cannot absorb read traffic; the cache op stays at its calibrated
nanoseconds-scale cost.  Reported per cell: delivered QPS (simulated),
p50/p99/p999 latency, cache hit rate, CLIENT_QUERY wire messages.  A
rate ladder under the default admission control then finds the max
sustainable QPS (shed <= 1%, p99 <= SLO).

Every delivered reply in the ON cell is audited against the converged
fixpoint — the zero-stale-read claim is checked, not assumed.

Results land in ``BENCH_serving.json``.  ``--smoke`` runs one reduced
cell pair and asserts the CI gates: cache hit rate >= 50% and >= 2x
CLIENT_QUERY message reduction.
"""

from __future__ import annotations

import json
import sys
from dataclasses import replace as dc_replace
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.bench import Table, print_experiment_header
from repro.cluster.costmodel import DEFAULT_COSTS
from repro.core import ElGA, WCC
from repro.gen import powerlaw_graph
from repro.net.message import PacketType
from repro.serving import OpenLoopWorkload, percentile

N_VERTICES = 400
N_EDGES = 2500
ALPHA = 1.8
SEED = 9
N_PROXIES = 4
N_CLIENTS = 200_000   # simulated client population (>= 1e5 acceptance bar)
ZIPF_S = 1.0
HEADLINE_RATE = 150_000.0   # offered queries/s, simulated
HEADLINE_DURATION = 0.2     # simulated seconds
LADDER_RATES = (50_000.0, 100_000.0, 200_000.0, 400_000.0)
LADDER_DURATION = 0.05
LADDER_WARMUP = 0.03        # fill the cache before the measured window
# The SLO is relative to the (deliberately inflated) 4e-4 s backend
# query op: ~60 backend service times of queueing headroom.  Cache hits
# answer in sub-microsecond; the p99 lives in the miss/refresh tail.
P99_SLO = 2.5e-2            # simulated seconds
SHED_SLO = 0.01
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Agent capacity bottleneck: ~2e-4 s per agent-side query answer vs the
#: calibrated 2e-7 s proxy cache probe — the asymmetry the serving
#: plane's headroom comes from.
BENCH_COSTS = dc_replace(DEFAULT_COSTS, elga_query_op=4e-4)

OFF = dict(serving_cache_ttl=0.0, serving_coalesce_window=0.0)
# TTL sized to the stream (the graph is immutable during serving; the
# version/epoch fences, not the TTL, carry correctness — see DESIGN §6h).
ON = dict(serving_cache_ttl=5e-2)


def _build_engine(overrides: dict, unbounded_admission: bool = True) -> ElGA:
    config = dict(
        nodes=2,
        agents_per_node=4,
        seed=SEED,
        keep_reference=False,
        costs=BENCH_COSTS,
        **overrides,
    )
    if unbounded_admission:
        # Headline cells measure raw capacity; admission control gets
        # its own rate-ladder section below.
        config["serving_max_inflight"] = 10_000_000
    us, vs, _ = powerlaw_graph(N_VERTICES, N_EDGES, alpha=ALPHA, seed=SEED)
    engine = ElGA(**config)
    engine.ingest_edges(us, vs)
    return engine


def _serve_cell(
    overrides: dict,
    rate: float,
    duration: float,
    unbounded_admission: bool = True,
    audit: bool = False,
    warmup: float = 0.0,
) -> dict:
    engine = _build_engine(overrides, unbounded_admission)
    result = engine.run(WCC())
    cluster = engine.cluster
    proxies = [cluster.new_client(node=i % 2) for i in range(N_PROXIES)]
    if audit:
        for proxy in proxies:
            proxy.audit = []
    vertices = np.arange(N_VERTICES, dtype=np.int64)
    if warmup > 0:
        # Steady-state measurement: fill the cache with a warm-up
        # stream, then drop its latency samples before the timed window.
        OpenLoopWorkload(
            proxies,
            vertices,
            "wcc",
            rate=rate,
            duration=warmup,
            n_clients=N_CLIENTS,
            zipf_s=ZIPF_S,
            seed=SEED + 1,
        ).start()
        cluster.settle()
        for proxy in proxies:
            proxy.latencies.clear()
    before = cluster.network.stats.snapshot()
    workload = OpenLoopWorkload(
        proxies,
        vertices,
        "wcc",
        rate=rate,
        duration=duration,
        n_clients=N_CLIENTS,
        zipf_s=ZIPF_S,
        seed=SEED,
        max_resubmits=8,
    ).start()
    start = cluster.kernel.now
    cluster.settle()
    elapsed = cluster.kernel.now - start

    metrics = cluster.collect_client_metrics()
    samples: List[float] = []
    for proxy in proxies:
        samples.extend(proxy.latencies)
    hits = metrics.get("serving_cache_hits", 0)
    misses = metrics.get("serving_cache_misses", 0)
    query_packets = int(
        cluster.network.stats.by_type_count[PacketType.CLIENT_QUERY]
        - before.by_type_count[PacketType.CLIENT_QUERY]
    )
    stale_reads: Optional[int] = None
    if audit:
        stale_reads = 0
        for proxy in proxies:
            for entry in proxy.audit:
                expected = result.values.get(entry["vertex"])
                if entry["value"] != expected:
                    stale_reads += 1
    return {
        "offered_rate": rate,
        "duration": duration,
        "submitted": workload.submitted,
        "delivered": workload.delivered,
        "shed": workload.shed,
        "dropped": workload.dropped,
        "outstanding": workload.outstanding,
        "distinct_clients": workload.distinct_clients,
        "elapsed_sim_seconds": elapsed,
        "qps": workload.delivered / max(elapsed, 1e-12),
        "p50_us": percentile(samples, 50.0) * 1e6,
        "p99_us": percentile(samples, 99.0) * 1e6,
        "p999_us": percentile(samples, 99.9) * 1e6,
        "cache_hit_rate": hits / max(hits + misses, 1),
        "coalesced": int(metrics.get("client_queries_coalesced", 0)),
        "snapshot_retries": int(metrics.get("client_snapshot_retries", 0)),
        "client_query_packets": query_packets,
        "stale_reads": stale_reads,
    }


def _rate_ladder() -> dict:
    """Max sustainable QPS under the default admission control."""
    ladder = []
    max_sustainable = 0.0
    for rate in LADDER_RATES:
        cell = _serve_cell(
            ON, rate, LADDER_DURATION, unbounded_admission=False, warmup=LADDER_WARMUP
        )
        shed_fraction = cell["shed"] / max(cell["submitted"], 1)
        sustainable = (
            shed_fraction <= SHED_SLO
            and cell["p99_us"] <= P99_SLO * 1e6
            and cell["dropped"] == 0
        )
        ladder.append(
            {**cell, "shed_fraction": shed_fraction, "sustainable": sustainable}
        )
        if sustainable:
            max_sustainable = max(max_sustainable, cell["qps"])
    return {"cells": ladder, "max_sustainable_qps": max_sustainable}


def run_experiment(smoke: bool = False) -> dict:
    rate = HEADLINE_RATE / 2 if smoke else HEADLINE_RATE
    duration = HEADLINE_DURATION / 2 if smoke else HEADLINE_DURATION
    off = _serve_cell(OFF, rate, duration)
    on = _serve_cell(ON, rate, duration, audit=True)
    payload = {
        "graph": {"n_vertices": N_VERTICES, "n_edges": N_EDGES, "alpha": ALPHA},
        "workload": {
            "n_clients": N_CLIENTS,
            "zipf_s": ZIPF_S,
            "rate": rate,
            "duration": duration,
            "proxies": N_PROXIES,
        },
        "costs": {
            "elga_query_op": BENCH_COSTS.elga_query_op,
            "elga_serving_cache_op": BENCH_COSTS.elga_serving_cache_op,
        },
        "off": off,
        "on": on,
        "qps_speedup": on["qps"] / max(off["qps"], 1e-12),
        "query_message_reduction": off["client_query_packets"]
        / max(on["client_query_packets"], 1),
        "p99_speedup": off["p99_us"] / max(on["p99_us"], 1e-12),
    }
    if not smoke:
        payload["rate_ladder"] = _rate_ladder()
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def show(payload: dict) -> None:
    print_experiment_header(
        "Query-serving plane",
        "result cache + coalescing + snapshot-consistent fan-out, on vs off",
    )
    table = Table(
        ["cell", "delivered", "QPS", "p50 us", "p99 us", "p999 us",
         "hit rate", "QUERY pkts"]
    )
    for name in ("off", "on"):
        cell = payload[name]
        table.add_row(
            name,
            cell["delivered"],
            f"{cell['qps']:,.0f}",
            f"{cell['p50_us']:.2f}",
            f"{cell['p99_us']:.2f}",
            f"{cell['p999_us']:.2f}",
            f"{cell['cache_hit_rate']:.3f}",
            cell["client_query_packets"],
        )
    table.show()
    print(
        f"QPS speedup: {payload['qps_speedup']:.2f}x, "
        f"CLIENT_QUERY reduction: {payload['query_message_reduction']:.2f}x, "
        f"stale reads: {payload['on']['stale_reads']}"
    )
    ladder = payload.get("rate_ladder")
    if ladder:
        table = Table(["offered rate", "QPS", "p99 us", "shed %", "sustainable"])
        for cell in ladder["cells"]:
            table.add_row(
                f"{cell['offered_rate']:,.0f}",
                f"{cell['qps']:,.0f}",
                f"{cell['p99_us']:.2f}",
                f"{100 * cell['shed_fraction']:.2f}",
                "yes" if cell["sustainable"] else "no",
            )
        table.show()
        print(f"max sustainable QPS: {ladder['max_sustainable_qps']:,.0f}")
    if "rate_ladder" in payload and RESULT_PATH.exists():
        print(f"[written] {RESULT_PATH}")


def _assert_smoke_bar(payload: dict) -> None:
    # CI gates: the cache must actually absorb the Zipf head, and
    # coalescing + caching together must at least halve the wire load.
    assert payload["on"]["cache_hit_rate"] >= 0.5, payload["on"]
    assert payload["query_message_reduction"] >= 2.0, payload
    assert payload["on"]["stale_reads"] == 0, payload["on"]
    assert payload["on"]["dropped"] == 0 and payload["on"]["outstanding"] == 0


def test_serving_plane():
    payload = run_experiment()
    show(payload)
    _assert_smoke_bar(payload)
    # The headline acceptance bar: >= 5x QPS over the no-cache,
    # no-coalescing baseline on Zipf(1.0), with a six-figure simulated
    # client population and zero stale reads.
    assert payload["qps_speedup"] >= 5.0, payload
    assert payload["workload"]["n_clients"] >= 100_000
    assert payload["rate_ladder"]["max_sustainable_qps"] > 0, payload["rate_ladder"]


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    payload = run_experiment(smoke=smoke)
    show(payload)
    if smoke:
        _assert_smoke_bar(payload)
        print("[smoke] ok: hit rate >= 50%, >= 2x CLIENT_QUERY reduction, 0 stale")
