"""Table 2 — the graphs used in the experiments.

Regenerates the dataset inventory: every row of Table 2, with the
paper-scale n/m alongside the downscaled stand-in actually generated,
its measured max degree (the skew the sketch targets), and the linear
downscale factor.
"""

import numpy as np

from benchmarks.common import BENCH_SCALE
from repro.bench import Table, print_experiment_header
from repro.gen import DATASETS, load_dataset


def generate_inventory(scale: float = BENCH_SCALE):
    rows = []
    for name, spec in DATASETS.items():
        data = load_dataset(name, scale=scale, seed=0)
        deg = np.bincount(data.us, minlength=data.n) + np.bincount(data.vs, minlength=data.n)
        rows.append(
            {
                "name": name,
                "paper_n": spec.paper_n,
                "paper_m": spec.paper_m,
                "abter": spec.abter_scale,
                "n": data.n,
                "m": len(data.us),
                "max_deg": int(deg.max()),
                "avg_deg": 2 * len(data.us) / max(1, len(np.nonzero(deg)[0])),
            }
        )
    return rows


def test_table2_inventory(benchmark):
    rows = benchmark.pedantic(generate_inventory, rounds=1, iterations=1)
    print_experiment_header("Table 2", "graphs used in the experiments (downscaled)")
    table = Table(
        ["graph", "paper n", "paper m", "A-BTER", "gen n", "gen m", "max deg", "avg deg"]
    )
    for r in rows:
        table.add_row(
            r["name"],
            f"{r['paper_n']:.2g}",
            f"{r['paper_m']:.2g}",
            f"×{r['abter']}" if r["abter"] else "—",
            r["n"],
            r["m"],
            r["max_deg"],
            f"{r['avg_deg']:.1f}",
        )
    table.show()

    assert len(rows) == 14
    # Skew survives downscaling: every graph has a hub well above
    # average (datagen-fb is near-dense at this scale, hence the
    # conservative 3× bound).
    for r in rows:
        assert r["max_deg"] > 3 * r["avg_deg"], r["name"]
