"""Shared helpers for the per-figure benchmark harnesses.

Every ``bench_*.py`` regenerates one table or figure from the paper's
evaluation: it builds the workload, runs ElGA (and baselines where the
figure compares), prints the same rows/series the paper reports, and
asserts the figure's qualitative *shape* (who wins, how curves trend).
Absolute values are simulated time at ~10⁻⁴ graph scale; EXPERIMENTS.md
maps them back to the paper's numbers.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core import ElGA, PageRank, WCC
from repro.core.superstep import RunResult
from repro.gen import load_dataset

# Benchmark-wide knobs: small enough that the whole harness finishes in
# minutes, large enough that hubs split and stragglers matter.
BENCH_SCALE = 0.15
N_TRIALS = 3
PR_ITERS = 5


def build_engine(
    us: np.ndarray,
    vs: np.ndarray,
    nodes: int = 4,
    agents_per_node: int = 4,
    seed: int = 0,
    replication_threshold: Optional[int] = None,
    **overrides,
) -> ElGA:
    """An ElGA engine loaded with the given edges.

    The replication threshold defaults to the balanced per-agent edge
    share: a vertex whose degree alone exceeds one agent's fair share
    is exactly the kind that "causes significant load imbalance or
    memory pressure" (§4.5) and gets split.
    """
    if replication_threshold is None:
        per_agent = max(1, len(us) // (nodes * agents_per_node))
        replication_threshold = max(50, per_agent)
    elga = ElGA(
        nodes=nodes,
        agents_per_node=agents_per_node,
        seed=seed,
        replication_threshold=replication_threshold,
        keep_reference=False,
        **overrides,
    )
    elga.ingest_edges(us, vs, n_streamers=min(4, nodes * 2))
    return elga


def timed_run(engine: ElGA, program, **kw) -> Tuple[RunResult, float]:
    """Run a program and report ``(result, wall_seconds)``.

    Simulated seconds measure the modeled system; wall-clock measures
    this reproduction's own raw speed.  Benches publish both columns —
    the kernels push is judged on the second.  GC is paused while timed
    so the measurement isn't a collection artifact.
    """
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = engine.run(program, **kw)
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return result, wall


def elga_pr_iter_seconds(
    us: np.ndarray,
    vs: np.ndarray,
    nodes: int = 4,
    agents_per_node: int = 4,
    seed: int = 0,
    iters: int = PR_ITERS,
    **kw,
) -> float:
    """Mean simulated per-iteration PageRank time on a fresh cluster."""
    elga = build_engine(us, vs, nodes=nodes, agents_per_node=agents_per_node, seed=seed, **kw)
    result = elga.run(PageRank(max_iters=iters, tol=1e-15))
    return result.mean_step_seconds()


def dataset_edges(name: str, scale: float = BENCH_SCALE, seed: int = 0) -> Tuple[np.ndarray, np.ndarray, int]:
    data = load_dataset(name, scale=scale, seed=seed)
    return data.us, data.vs, data.n


# A representative cross-section of Table 2 used by the comparison
# figures (running all 14 at 5 trials × 3 systems is minutes of wall
# time per figure; these cover social/web/rmat/datagen families).
COMPARISON_DATASETS = [
    "twitter-2010",
    "uk-2007-05",
    "datagen-9.4-fb",
    "livejournal",
    "graph500-30",
    "pokec-x1000",
]
