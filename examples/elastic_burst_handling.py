#!/usr/bin/env python
"""Elastic burst handling: scale with the workload, pay for what you use.

Graphs "experience periods of relative calm and periods of significant
bursts of changes" (§1) — the paper's example is Twitter's
tweets-per-second record.  This scenario drives an ElGA cluster through
calm → burst → calm, letting the reactive autoscaler (§3.4.3) resize
the cluster from observed query rates, and reports the agent-hours a
fixed peak-provisioned cluster would have wasted.

Run:  python examples/elastic_burst_handling.py
"""

import numpy as np

from repro import ElGA, WCC
from repro.cluster import ReactiveAutoscaler
from repro.gen import powerlaw_graph


PHASES = [  # (duration s, client queries/s)
    ("overnight calm", 120.0, 30.0),
    ("morning burst", 180.0, 300.0),
    ("afternoon", 120.0, 90.0),
]
QUERIES_PER_AGENT = 25.0


def main() -> None:
    us, vs, n = powerlaw_graph(3000, 30000, alpha=2.1, seed=3)
    elga = ElGA(nodes=2, agents_per_node=2, seed=9)
    elga.ingest_edges(us, vs, n_streamers=2)
    elga.run(WCC())
    client = elga.cluster.new_client()
    kernel = elga.cluster.kernel

    autoscaler = ReactiveAutoscaler(
        scaling_factor=QUERIES_PER_AGENT,
        ema_window=30.0,
        cooldown=60.0,
        min_agents=2,
        max_agents=32,
    )

    rng = np.random.default_rng(4)
    base = kernel.now
    agent_seconds = 0.0
    peak_agents = 0
    sample = 10.0
    print(f"{'t':>6}  {'phase':>15}  {'rate':>6}  {'target':>6}  {'agents':>6}")
    for phase, duration, rate in PHASES:
        phase_end = kernel.now - base + duration
        while kernel.now - base < phase_end:
            start = kernel.now
            n_queries = int(rng.poisson(rate * sample))
            for _ in range(n_queries):
                client.query(int(rng.integers(0, n)), "wcc")
            elga.cluster.settle()
            kernel.run(until=start + sample)
            autoscaler.observe(n_queries / sample, kernel.now - base)
            desired = autoscaler.desired(elga.n_agents, kernel.now - base)
            if desired is not None:
                elga.scale_to(desired)
            agent_seconds += elga.n_agents * sample
            peak_agents = max(peak_agents, elga.n_agents)
            t = kernel.now - base
            if int(t) % 30 == 0:
                print(f"{t:6.0f}  {phase:>15}  {n_queries / sample:6.1f}  "
                      f"{autoscaler.target():6d}  {elga.n_agents:6d}")

    total_time = kernel.now - base
    fixed_cost = peak_agents * total_time
    print(f"\nelastic agent-seconds: {agent_seconds:,.0f}")
    print(f"fixed peak-provisioned ({peak_agents} agents): {fixed_cost:,.0f}")
    print(f"resource savings from elasticity: "
          f"{100 * (1 - agent_seconds / fixed_cost):.0f}%")

    # The graph survived all the churn intact.
    assert elga.cluster.consistent()


if __name__ == "__main__":
    main()
