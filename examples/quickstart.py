#!/usr/bin/env python
"""Quickstart: bring up ElGA, stream a graph in, run algorithms, query.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ElGA, PageRank, WCC


def main() -> None:
    # A deployment: 4 simulated nodes x 4 Agents, deterministic seed.
    elga = ElGA(nodes=4, agents_per_node=4, seed=42)

    # A small random graph, streamed in through Streamers (each edge is
    # routed to its owning Agent via the sketch + consistent hashing).
    rng = np.random.default_rng(0)
    us = rng.integers(0, 1000, 8000)
    vs = rng.integers(0, 1000, 8000)
    keep = us != vs
    report = elga.ingest_edges(us[keep], vs[keep], n_streamers=4)
    print(f"ingested {report['edges']:.0f} edges "
          f"at {report['edges_per_second']:,.0f} edges/s (simulated)")
    print(f"graph: {elga.global_n} vertices, {elga.global_m} edges, "
          f"{elga.n_agents} agents")

    # PageRank: a synchronous vertex program with directory barriers.
    result = elga.run(PageRank(damping=0.85, tol=1e-8))
    top = sorted(result.values, key=result.values.get, reverse=True)[:5]
    print(f"\nPageRank converged in {result.steps} supersteps "
          f"({result.sim_seconds * 1e3:.2f} ms simulated)")
    print("top vertices:", {v: round(result.values[v], 6) for v in top})

    # WCC, then point queries through a ClientProxy (the low-latency
    # path — a random replica answers).
    wcc = elga.run(WCC())
    n_components = len(set(wcc.values.values()))
    print(f"\nWCC: {n_components} weakly connected component(s) "
          f"in {wcc.steps} supersteps")
    print(f"component of vertex 0 (via client query): {elga.query(0, 'wcc'):.0f}")

    # Elasticity: grow the cluster; only ~1/P of edges move.
    info = elga.scale_to(24)
    print(f"\nscaled to {info['agents']} agents in "
          f"{info['sim_seconds'] * 1e3:.2f} ms simulated "
          f"({info['migrate_messages']} migration messages)")


if __name__ == "__main__":
    main()
