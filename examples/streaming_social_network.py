#!/usr/bin/env python
"""Continuous social-network analysis: the paper's motivating workload.

A social graph (follows/friendships) arrives as a continuous stream.
The pipeline keeps weakly-connected components — "which community is
this user in?" — up to date with *incremental* maintenance, answering
client queries between batches, exactly the fully-dynamic usage of
Goal 4 and Figure 15: small batches converge in a couple of supersteps
instead of recomputing from scratch.

Run:  python examples/streaming_social_network.py
"""

import numpy as np

from repro import ElGA, WCC
from repro.gen import powerlaw_graph
from repro.graph import EdgeBatch


def main() -> None:
    elga = ElGA(nodes=4, agents_per_node=4, seed=7, replication_threshold=800)

    # Historical backlog: a skewed follower graph (celebrities = hubs).
    us, vs, n = powerlaw_graph(4000, 40000, alpha=2.1, seed=1)
    elga.ingest_edges(us, vs, n_streamers=4)
    hubs = len(elga.cluster.lead.state.split_vertices)
    print(f"backlog loaded: {elga.global_m} edges, "
          f"{hubs} celebrity vertices split across agents")

    # Converge components once, from scratch.
    scratch = elga.run(WCC())
    print(f"initial WCC: {len(set(scratch.values.values()))} communities, "
          f"{scratch.steps} supersteps, {scratch.sim_seconds * 1e3:.2f} ms simulated")

    # Live stream: batches of new follows arrive; maintain incrementally.
    rng = np.random.default_rng(2)
    total_incremental = 0.0
    for batch_no in range(8):
        size = int(rng.integers(5, 200))
        new_us = rng.integers(0, n + 50, size)  # some brand-new users too
        new_vs = rng.integers(0, n, size)
        batch = EdgeBatch.insertions(new_us[new_us != new_vs], new_vs[new_us != new_vs])
        ingest = elga.apply_batch(batch, n_streamers=2)
        result = elga.run(WCC(), incremental=True)
        total_incremental += ingest["sim_seconds"] + result.sim_seconds
        print(f"  batch {batch_no}: {len(batch):4d} follows -> "
              f"{result.steps} superstep(s), "
              f"{(ingest['sim_seconds'] + result.sim_seconds) * 1e3:6.2f} ms")

        # Queries are served concurrently with maintenance (Goal 4).
        user = int(rng.integers(0, n))
        community = elga.query(user, "wcc")
        assert community is not None

    print(f"\n8 incremental batches: {total_incremental * 1e3:.2f} ms total "
          f"(one from-scratch run costs {scratch.sim_seconds * 1e3:.2f} ms)")
    speedup = scratch.sim_seconds / (total_incremental / 8)
    print(f"average per-batch speedup vs recompute: {speedup:.0f}x")


if __name__ == "__main__":
    main()
