#!/usr/bin/env python
"""Web-crawl reachability with asynchronous SSSP and mid-run scaling.

A crawler discovers a web graph; operators want hop distances from the
seed page ("how deep is this page?") while the crawl continues, and
want to add capacity *during* long computations rather than restarting
them (Figure 17).  This scenario:

1. streams in an R-MAT web-like graph,
2. computes hop distances asynchronously (monotone relaxation — ElGA's
   async mode, §3.2),
3. grows the graph with another crawl frontier and re-runs,
4. runs a synchronous PageRank and scales the cluster up mid-run.

Run:  python examples/web_crawl_reachability.py
"""

import numpy as np

from repro import ElGA, PageRank, SSSP
from repro.gen import rmat_graph
from repro.graph import EdgeBatch


def main() -> None:
    elga = ElGA(nodes=2, agents_per_node=4, seed=11)

    # Crawl phase 1: an R-MAT web graph (skewed, hub-heavy).
    us, vs, n = rmat_graph(11, edge_factor=12, seed=5)
    elga.ingest_edges(us, vs, n_streamers=4)
    deg = np.bincount(us, minlength=n)
    seed_page = int(np.argmax(deg))
    print(f"crawled {elga.global_m} links across {elga.global_n} pages; "
          f"seed page {seed_page} (out-degree {deg[seed_page]})")

    # Asynchronous SSSP: distances relax the moment messages arrive —
    # no barriers, quiescence terminates the run.
    dist = elga.run(SSSP(source=seed_page), mode="async")
    reached = {v: d for v, d in dist.values.items() if np.isfinite(d)}
    depth = max(reached.values())
    print(f"async SSSP: {len(reached)} pages reachable, max depth {depth:.0f}, "
          f"{dist.sim_seconds * 1e3:.2f} ms simulated")

    # Crawl phase 2: a new frontier links into fresh pages.
    rng = np.random.default_rng(6)
    frontier_src = rng.choice(list(reached), 300)
    frontier_dst = rng.integers(n, n + 400, 300)
    elga.apply_batch(EdgeBatch.insertions(frontier_src, frontier_dst), n_streamers=2)
    dist2 = elga.run(SSSP(source=seed_page), mode="async")
    newly = sum(1 for v, d in dist2.values.items() if np.isfinite(d)) - len(reached)
    print(f"after frontier batch: {newly} newly reachable pages")

    # A long synchronous PageRank: the operator adds capacity after two
    # iterations without restarting (Figure 17's manual scaling).
    result = elga.run(PageRank(max_iters=8, tol=1e-15), scale_plan={2: 16})
    per_step = [d for phase, _, d in result.round_durations if phase == "step"]
    print(f"\nPageRank with mid-run scale-up to {elga.n_agents} agents:")
    print("  per-superstep ms:",
          [f"{d * 1e3:.2f}" for d in per_step])
    print(f"  iterations after the scale-up run "
          f"{per_step[0] / per_step[-1]:.1f}x faster than before")


if __name__ == "__main__":
    main()
