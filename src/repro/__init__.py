"""ElGA reproduction: elastic and scalable dynamic graph analysis.

A from-scratch Python reproduction of *ElGA* (Gabert, Sancak, Özkaya,
Pınar, Çatalyürek — SC '21): a distributed, dynamic, elastic
vertex-centric graph analysis system, rebuilt on a deterministic
discrete-event simulator with calibrated cost models.

Quick start::

    import numpy as np
    from repro import ElGA, PageRank

    elga = ElGA(nodes=4, agents_per_node=4, seed=1)
    elga.ingest_edges(np.array([0, 1, 2]), np.array([1, 2, 0]))
    result = elga.run(PageRank())
    print(result.values)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.cluster.config import ClusterConfig
from repro.core.algorithms import DegreeCount, PageRank, PersonalizedPageRank, SSSP, WCC
from repro.core.engine import ElGA
from repro.core.program import RunSpec, VertexProgram
from repro.core.superstep import RunResult
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import EdgeBatch
from repro.hashing.ring import ConsistentHashRing
from repro.sketch.countmin import CountMinSketch

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "ConsistentHashRing",
    "CountMinSketch",
    "DegreeCount",
    "DynamicGraph",
    "EdgeBatch",
    "ElGA",
    "PageRank",
    "PersonalizedPageRank",
    "RunResult",
    "RunSpec",
    "SSSP",
    "VertexProgram",
    "WCC",
    "__version__",
]
