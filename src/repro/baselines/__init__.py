"""Baseline systems from the evaluation (§4.2, §4.8).

* :class:`~repro.baselines.blogel.Blogel` — the state-of-the-art static
  BSP system (C++/MPI, CSR, vertex partitioning), plus its Voronoi
  variant (Blogel-Vor).
* :class:`~repro.baselines.graphx.GraphX` — the Spark-based snapshot
  engine with its three vertex-cut partitioners, including the
  recompute-from-prior-output dynamic strategy of Figure 15.
* :class:`~repro.baselines.stinger.Stinger` — the shared-memory dynamic
  graph system with batch WCC maintenance (Figure 13).
* :func:`~repro.baselines.gapbs.gapbs_wcc` — the shared-memory static
  WCC (COST comparison, §4.8).

Every baseline executes its algorithm for real (results are exact and
cross-checked against ElGA's), while its *runtime* is modeled with the
same calibrated cost constants the simulator uses — per-partition work,
cut/shuffle volume, synchronization, and fixed overheads — so relative
performance reflects the mechanisms the paper identifies, not the
Python interpreter.
"""

from repro.baselines.blogel import Blogel, BlogelResult
from repro.baselines.gapbs import gapbs_wcc
from repro.baselines.graphx import GraphX, GraphXResult, graphx_would_oom
from repro.baselines.stinger import Stinger

__all__ = [
    "Blogel",
    "BlogelResult",
    "GraphX",
    "GraphXResult",
    "Stinger",
    "gapbs_wcc",
    "graphx_would_oom",
]
