"""Blogel: the static BSP baseline (§4.2, §4.7).

Blogel [89] is the state-of-the-art static distributed system the paper
competes against.  Characteristics modeled here, each from the paper:

* **CSR storage** — faster per-edge scans than ElGA's flat hash maps
  (§4.7), but rebuilt from scratch on any change (hence "static").
* **Vertex partitioning** — an edge lives with its source, assigned by
  hashing (the competitive variant), or by Voronoi block growth
  (Blogel-Vor, confirmed uncompetitive in §4.2).
* **MPI transport** — ~1 µs sends (§3.5), but per-superstep allreduce
  barriers whose cost grows with rank count; the paper found Blogel
  fastest at only 8 ranks/node because allreduces saturate the network
  beyond that, leaving most cores idle.
* **Combiners** — messages to the same destination vertex from one rank
  are pre-aggregated, so cross-rank volume counts distinct
  (rank, destination) pairs.

The algorithms (PageRank, WCC) are executed exactly, vectorized over
the global edge arrays, while per-superstep *time* is the straggler
rank's compute plus communication plus the allreduce term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.costmodel import CostModel, DEFAULT_COSTS
from repro.graph.csr import compact_ids, symmetrize
from repro.net.latency import TransportModel
from repro.partition.baselines import hash_vertex_partition, voronoi_partition


@dataclass
class BlogelResult:
    """One Blogel run: exact values plus modeled timing."""

    values: np.ndarray
    vertex_ids: np.ndarray
    iterations: int
    per_iter_seconds: List[float]
    total_seconds: float

    def value_map(self) -> dict:
        return {int(v): float(x) for v, x in zip(self.vertex_ids, self.values)}

    @property
    def mean_iter_seconds(self) -> float:
        return float(np.mean(self.per_iter_seconds)) if self.per_iter_seconds else 0.0


class Blogel:
    """A Blogel deployment.

    Parameters
    ----------
    nodes, ranks_per_node:
        Cluster shape; the paper's tuned configuration is 64 nodes × 8
        MPI ranks.
    partitioner:
        ``"hash"`` (simple vertex partitioning) or ``"voronoi"``
        (Blogel-Vor).
    """

    def __init__(
        self,
        nodes: int = 64,
        ranks_per_node: int = 8,
        partitioner: str = "hash",
        costs: CostModel = DEFAULT_COSTS,
        transport: Optional[TransportModel] = None,
        seed: int = 0,
        memory_bandwidth_ranks: int = 8,
    ):
        if partitioner not in ("hash", "voronoi"):
            raise ValueError(f"unknown partitioner {partitioner!r}")
        self.nodes = int(nodes)
        self.ranks_per_node = int(ranks_per_node)
        self.ranks = int(nodes * ranks_per_node)
        self.partitioner = partitioner
        self.costs = costs
        self.transport = transport if transport is not None else TransportModel.mpi()
        self.seed = seed
        # The paper found Blogel fastest at 8 MPI ranks per 32-core node:
        # its CSR scans are memory-bound, so ~8 ranks already saturate a
        # node's DRAM bandwidth and further ranks add no scan throughput
        # (§4.2, §4.7).  The contention factor scales per-rank scan cost
        # back up once ranks_per_node exceeds this saturation point.
        self.memory_bandwidth_ranks = int(memory_bandwidth_ranks)
        self._loaded = False

    @property
    def _contention(self) -> float:
        return max(1.0, self.ranks_per_node / self.memory_bandwidth_ranks)

    # ------------------------------------------------------------------

    def load(self, us: np.ndarray, vs: np.ndarray) -> None:
        """Partition and build the per-rank CSRs (static load phase).

        Loading/partitioning time is deliberately not part of any
        result: the paper excludes static systems' load, partition, and
        save costs (§4.2).
        """
        self.us, self.vs, self.vertex_ids = compact_ids(us, vs)
        self.n = len(self.vertex_ids)
        if self.partitioner == "hash":
            vertex_rank_all = hash_vertex_partition(
                np.arange(self.n), np.arange(self.n), self.ranks
            )
        else:
            rng = np.random.default_rng(self.seed)
            edge_rank = voronoi_partition(self.us, self.vs, self.n, self.ranks, rng)
            # Voronoi assigns blocks; derive the vertex map from each
            # vertex's (source-side) block.
            vertex_rank_all = np.zeros(self.n, dtype=np.int64)
            vertex_rank_all[self.us] = edge_rank
        self.vertex_rank = vertex_rank_all
        self.edge_rank = self.vertex_rank[self.us]  # edge lives with source
        self.out_deg = np.bincount(self.us, minlength=self.n).astype(np.float64)
        self.edges_per_rank = np.bincount(self.edge_rank, minlength=self.ranks)
        self.verts_per_rank = np.bincount(self.vertex_rank, minlength=self.ranks)
        self._loaded = True

    def _require_loaded(self) -> None:
        if not self._loaded:
            raise RuntimeError("call load() before running an algorithm")

    # -- timing model -----------------------------------------------------

    def _superstep_seconds(
        self, edge_mask: Optional[np.ndarray], dst_rank: np.ndarray
    ) -> float:
        """Straggler compute + combined message volume + allreduce."""
        costs = self.costs
        if edge_mask is None:
            active_src_rank = self.edge_rank
            active_us = self.us
            active_vs = self.vs
        else:
            active_src_rank = self.edge_rank[edge_mask]
            active_us = self.us[edge_mask]
            active_vs = self.vs[edge_mask]
            dst_rank = dst_rank[edge_mask]
        edges_per_rank = np.bincount(active_src_rank, minlength=self.ranks)
        recv_per_rank = np.bincount(dst_rank if edge_mask is None else dst_rank, minlength=self.ranks)
        compute = (
            edges_per_rank * costs.blogel_edge_op * self._contention
            + recv_per_rank * costs.blogel_combine_op * self._contention
            + self.verts_per_rank * costs.blogel_vertex_op
        )
        # Combiner: one 16-byte message per distinct (src rank, dst vertex)
        # pair crossing ranks.
        cross = active_src_rank != dst_rank
        if cross.any():
            pair = active_src_rank[cross].astype(np.int64) * self.n + active_vs[cross]
            n_msgs_by_rank = np.bincount(
                active_src_rank[cross][_first_occurrence(pair)], minlength=self.ranks
            )
        else:
            n_msgs_by_rank = np.zeros(self.ranks, dtype=np.int64)
        comm = n_msgs_by_rank * (16.0 / self.transport.bandwidth_Bps) + (
            n_msgs_by_rank > 0
        ) * self.transport.latency_s
        allreduce = costs.blogel_allreduce_base * max(
            1.0, np.log2(max(self.ranks, 2))
        ) + costs.blogel_allreduce_per_rank * self.ranks
        return float((compute + comm).max() + allreduce)

    # -- algorithms ---------------------------------------------------------

    def pagerank(
        self, damping: float = 0.85, tol: float = 1e-8, max_iters: int = 100
    ) -> BlogelResult:
        """Pregel PageRank, identical semantics to ElGA's program."""
        self._require_loaded()
        dst_rank = self.vertex_rank[self.vs]
        safe_deg = np.where(self.out_deg > 0, self.out_deg, 1.0)
        ranks = np.full(self.n, 1.0 / self.n)
        base = (1.0 - damping) / self.n
        per_iter: List[float] = []
        iters = 0
        for iters in range(1, max_iters + 1):
            incoming = np.zeros(self.n)
            np.add.at(incoming, self.vs, (ranks / safe_deg)[self.us])
            new_ranks = base + damping * incoming
            per_iter.append(self._superstep_seconds(None, dst_rank))
            delta = float(np.abs(new_ranks - ranks).sum())
            ranks = new_ranks
            if delta < tol:
                break
        return BlogelResult(
            values=ranks,
            vertex_ids=self.vertex_ids,
            iterations=iters,
            per_iter_seconds=per_iter,
            total_seconds=float(sum(per_iter)),
        )

    def wcc(self, max_iters: int = 10_000) -> BlogelResult:
        """Min-label WCC on the symmetrized graph.

        The paper had to symmetrize inputs to fix Blogel's WCC bug
        (§4.7); the same step happens here.
        """
        self._require_loaded()
        sym_us, sym_vs = symmetrize(self.us, self.vs)
        src_rank = self.vertex_rank[sym_us]
        dst_rank = self.vertex_rank[sym_vs]
        # Labels in the original id space, comparable across systems.
        labels = self.vertex_ids.copy()
        active = np.ones(self.n, dtype=bool)
        per_iter: List[float] = []
        iters = 0
        while active.any() and iters < max_iters:
            iters += 1
            send = active[sym_us]
            new_labels = labels.copy()
            np.minimum.at(new_labels, sym_vs[send], labels[sym_us[send]])
            per_iter.append(self._wcc_step_seconds(send, sym_us, sym_vs, src_rank, dst_rank))
            active = new_labels < labels
            labels = new_labels
        # Quiescence is detected by one final (empty) superstep's
        # allreduce — Pregel-style systems pay this round too, and the
        # paper observed identical superstep counts across systems.
        per_iter.append(
            self._wcc_step_seconds(
                np.zeros(len(sym_us), dtype=bool), sym_us, sym_vs, src_rank, dst_rank
            )
        )
        return BlogelResult(
            values=labels.astype(np.float64),
            vertex_ids=self.vertex_ids,
            iterations=iters,
            per_iter_seconds=per_iter,
            total_seconds=float(sum(per_iter)),
        )

    def _wcc_step_seconds(self, send, sym_us, sym_vs, src_rank, dst_rank) -> float:
        costs = self.costs
        edges_per_rank = np.bincount(src_rank[send], minlength=self.ranks)
        recv_per_rank = np.bincount(dst_rank[send], minlength=self.ranks)
        compute = (
            edges_per_rank * costs.blogel_edge_op * self._contention
            + recv_per_rank * costs.blogel_combine_op * self._contention
            + self.verts_per_rank * costs.blogel_vertex_op
        )
        cross = send & (src_rank != dst_rank)
        if cross.any():
            pair = src_rank[cross].astype(np.int64) * self.n + sym_vs[cross]
            n_msgs = np.bincount(
                src_rank[cross][_first_occurrence(pair)], minlength=self.ranks
            )
        else:
            n_msgs = np.zeros(self.ranks, dtype=np.int64)
        comm = n_msgs * (16.0 / self.transport.bandwidth_Bps) + (
            n_msgs > 0
        ) * self.transport.latency_s
        allreduce = costs.blogel_allreduce_base * max(
            1.0, np.log2(max(self.ranks, 2))
        ) + costs.blogel_allreduce_per_rank * self.ranks
        return float((compute + comm).max() + allreduce)


def _first_occurrence(keys: np.ndarray) -> np.ndarray:
    """Boolean mask selecting the first occurrence of each key."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    first_sorted = np.ones(len(keys), dtype=bool)
    first_sorted[1:] = sorted_keys[1:] != sorted_keys[:-1]
    mask = np.zeros(len(keys), dtype=bool)
    mask[order] = first_sorted
    return mask
