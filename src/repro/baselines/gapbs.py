"""GAPbs: the shared-memory static baseline (§4.8).

The GAP benchmark suite's WCC is the COST [65] yardstick: a tuned
single-node static implementation.  The paper reports GAPbs taking
0.94 s on LiveJournal "including building its CSR from an in-memory
edge list and running WCC" — the constants in
:class:`~repro.cluster.costmodel.CostModel` are calibrated so the model
lands there at that scale.

The algorithm is Shiloach–Vishkin-style hook-and-compress (what GAPbs'
`cc` kernel implements, modulo its Afforest sampling): executed exactly
and vectorized; the modeled time is (CSR build + per-pass edge scans)
divided across the node's cores.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cluster.costmodel import CostModel, DEFAULT_COSTS


def shiloach_vishkin(us: np.ndarray, vs: np.ndarray, n: int, max_passes: int = 1000) -> Tuple[np.ndarray, int]:
    """Hook-and-compress connected components.

    Returns (labels, passes); labels are the minimum reachable id.
    """
    parent = np.arange(n, dtype=np.int64)
    passes = 0
    while passes < max_passes:
        passes += 1
        # Hook: point the larger root at the smaller along every edge.
        pu = parent[us]
        pv = parent[vs]
        lo = np.minimum(pu, pv)
        hi = np.maximum(pu, pv)
        changed_any = bool((pu != pv).any())
        np.minimum.at(parent, hi, lo)
        # Compress: full pointer jumping until stable.
        while True:
            jump = parent[parent]
            if np.array_equal(jump, parent):
                break
            parent = jump
        if not changed_any:
            break
    return parent, passes


def gapbs_wcc(
    us: np.ndarray,
    vs: np.ndarray,
    n: int,
    threads: int = 32,
    costs: CostModel = DEFAULT_COSTS,
) -> Tuple[np.ndarray, float]:
    """Run GAPbs-style WCC; returns (labels, modeled seconds).

    The time includes the CSR build from the in-memory edge list, as in
    the paper's measurement.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    labels, passes = shiloach_vishkin(us, vs, n)
    m_undirected = 2 * len(us)
    build = m_undirected * costs.gapbs_build_per_edge
    compute = passes * m_undirected * costs.gapbs_edge_op
    # GAPbs scales well on one node; charge the parallel fraction.
    seconds = build + compute + n * costs.gapbs_edge_op * passes
    return labels, float(seconds)
