"""GraphX: the Spark snapshot baseline (§4.2, §4.9).

GraphX [37] partitions *edges* with vertex-cut strategies and executes
Pregel-style iterations as Spark stages.  What the model captures, each
from the paper:

* the three main built-in partitioners (RandomVertexCut, Canonical
  RandomVertexCut, EdgePartition2D) — §4.2 configures all three;
* JVM-speed per-edge work plus a per-iteration stage-scheduling and
  shuffle overhead (GraphX was tuned extensively — G1 GC, dynamic
  executors, SSD scratch — and is still several times slower per
  iteration, Figures 11–12);
* vertex-cut communication: a vertex replicated across k partitions
  costs k−1 synchronizations per iteration;
* job startup/teardown: the dominant cost for dynamic use.  Figure 15's
  snapshot-recompute baseline "never took less than 49.45 seconds" on
  Twitter-2010 even for single-edge changes, which is exactly
  :meth:`GraphX.wcc_incremental`'s floor;
* out-of-memory failures on the largest graphs (Figures 11–12):
  :func:`graphx_would_oom` encodes the paper-scale thresholds so the
  comparison benches can mark those cells OOM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.costmodel import CostModel, DEFAULT_COSTS
from repro.graph.csr import compact_ids, symmetrize
from repro.net.latency import TransportModel
from repro.partition.baselines import (
    canonical_random_vertex_cut,
    edge_partition_2d,
    random_vertex_cut,
)

_PARTITIONERS = {
    "rvc": random_vertex_cut,
    "crvc": canonical_random_vertex_cut,
    "2d": edge_partition_2d,
}


@dataclass
class GraphXResult:
    """One GraphX job: exact values plus modeled timing."""

    values: np.ndarray
    vertex_ids: np.ndarray
    iterations: int
    per_iter_seconds: List[float]
    compute_seconds: float       # iteration time only (Fig 11/12 view)
    job_seconds: float           # including startup/teardown (Fig 15 view)

    def value_map(self) -> dict:
        return {int(v): float(x) for v, x in zip(self.vertex_ids, self.values)}

    @property
    def mean_iter_seconds(self) -> float:
        return float(np.mean(self.per_iter_seconds)) if self.per_iter_seconds else 0.0


def graphx_would_oom(paper_scale_edges: float, partitioner: str = "rvc") -> bool:
    """Whether GraphX ran out of memory at the paper's scale.

    §4.7: "GraphX runs out of memory on the largest graphs", and CRVC
    "ran out of memory on almost all graphs" for WCC.  The thresholds
    are set from which Table 2 graphs the paper could and could not run.
    """
    if partitioner == "crvc":
        return paper_scale_edges > 3e9
    return paper_scale_edges > 12e9


class GraphX:
    """A tuned GraphX deployment (64 executors, G1 GC, SSD scratch).

    Parameters
    ----------
    partitioner:
        ``"rvc"``, ``"crvc"``, or ``"2d"``.
    """

    def __init__(
        self,
        nodes: int = 64,
        partitions_per_node: int = 16,
        partitioner: str = "rvc",
        costs: CostModel = DEFAULT_COSTS,
        transport: Optional[TransportModel] = None,
        seed: int = 0,
    ):
        if partitioner not in _PARTITIONERS:
            raise ValueError(f"unknown partitioner {partitioner!r}; known: {sorted(_PARTITIONERS)}")
        self.nodes = int(nodes)
        self.partitions = int(nodes * partitions_per_node)
        self.partitioner = partitioner
        self.costs = costs
        self.transport = transport if transport is not None else TransportModel.spark_rpc()
        self.seed = seed
        self._loaded = False

    def load(self, us: np.ndarray, vs: np.ndarray) -> None:
        """Edge-partition the snapshot (partitioning time excluded, §4.2)."""
        self.us, self.vs, self.vertex_ids = compact_ids(us, vs)
        self.n = len(self.vertex_ids)
        self.m = len(self.us)
        self.edge_part = _PARTITIONERS[self.partitioner](self.us, self.vs, self.partitions)
        self.out_deg = np.bincount(self.us, minlength=self.n).astype(np.float64)
        self.edges_per_part = np.bincount(self.edge_part, minlength=self.partitions)
        # Vertex-cut replication: number of distinct partitions each
        # vertex appears in; each extra partition is one vertex-state
        # shuffle per iteration.
        key = np.concatenate([self.us, self.vs]).astype(np.int64) * self.partitions + np.concatenate(
            [self.edge_part, self.edge_part]
        )
        uniq = np.unique(key)
        self.replications = np.bincount((uniq // self.partitions).astype(np.int64), minlength=self.n)
        self._loaded = True

    def _require_loaded(self) -> None:
        if not self._loaded:
            raise RuntimeError("call load() before running an algorithm")

    def _iter_seconds(self, active_edges: int, active_vertices: int) -> float:
        costs = self.costs
        # Straggler partition compute at the active fraction of its edges.
        frac = active_edges / max(self.m, 1)
        straggler = float(self.edges_per_part.max()) * frac * costs.graphx_edge_op
        vertex_work = active_vertices * costs.graphx_vertex_op / max(self.partitions, 1)
        shuffles = float((self.replications - 1).clip(min=0).sum()) * frac
        shuffle_time = shuffles * 24.0 / self.transport.bandwidth_Bps + (
            self.transport.latency_s * min(shuffles, self.partitions)
        )
        return costs.graphx_stage_overhead + straggler + vertex_work + shuffle_time

    def _job_overhead(self) -> float:
        return self.costs.graphx_job_overhead + self.m * self.costs.graphx_load_per_edge

    # -- algorithms -------------------------------------------------------------

    def pagerank(
        self, damping: float = 0.85, tol: float = 1e-8, max_iters: int = 100
    ) -> GraphXResult:
        """Pregel PageRank on the snapshot."""
        self._require_loaded()
        safe_deg = np.where(self.out_deg > 0, self.out_deg, 1.0)
        ranks = np.full(self.n, 1.0 / self.n)
        base = (1.0 - damping) / self.n
        per_iter: List[float] = []
        iters = 0
        for iters in range(1, max_iters + 1):
            incoming = np.zeros(self.n)
            np.add.at(incoming, self.vs, (ranks / safe_deg)[self.us])
            new_ranks = base + damping * incoming
            per_iter.append(self._iter_seconds(self.m, self.n))
            delta = float(np.abs(new_ranks - ranks).sum())
            ranks = new_ranks
            if delta < tol:
                break
        return self._result(ranks, iters, per_iter)

    def wcc(
        self,
        max_iters: int = 10_000,
        init_labels: Optional[np.ndarray] = None,
        active: Optional[np.ndarray] = None,
    ) -> GraphXResult:
        """Min-label WCC; optionally warm-started (snapshot-dynamic)."""
        self._require_loaded()
        sym_us, sym_vs = symmetrize(self.us, self.vs)
        # Labels live in the original vertex-id space (ids are sorted,
        # so min-propagation is equivalent) — this keeps results
        # directly comparable across systems and lets warm starts mix
        # prior labels with fresh ids.
        labels = self.vertex_ids.copy() if init_labels is None else init_labels.copy()
        if active is None:
            active_mask = np.ones(self.n, dtype=bool)
        else:
            active_mask = np.zeros(self.n, dtype=bool)
            active_mask[active] = True
        per_iter: List[float] = []
        iters = 0
        while active_mask.any() and iters < max_iters:
            iters += 1
            send = active_mask[sym_us]
            new_labels = labels.copy()
            np.minimum.at(new_labels, sym_vs[send], labels[sym_us[send]])
            per_iter.append(self._iter_seconds(int(send.sum()), int(active_mask.sum())))
            active_mask = new_labels < labels
            labels = new_labels
        return self._result(labels.astype(np.float64), iters, per_iter)

    def wcc_incremental(
        self, prior_labels: Dict[int, float], changed_vertices: np.ndarray
    ) -> GraphXResult:
        """Figure 15's snapshot-recompute dynamic strategy.

        "Initialize the iterative algorithm with prior outputs,
        re-initialize any new or changed vertices, and run to
        convergence" — as Sprouter/EdgeScaler do on GraphX — paying the
        full job startup/teardown every batch.  Partitioning costs are
        *excluded*, modeling a perfect elastic load balancer (§4.9).
        """
        self._require_loaded()
        init = self.vertex_ids.copy()
        for i, vid in enumerate(self.vertex_ids):
            prior = prior_labels.get(int(vid))
            if prior is not None:
                init[i] = int(prior)
        changed_set = set(int(v) for v in changed_vertices)
        changed_idx = np.array(
            [i for i, vid in enumerate(self.vertex_ids) if int(vid) in changed_set],
            dtype=np.int64,
        )
        # Changed vertices keep their prior labels (new vertices fall
        # back to their own id above): with insertions both endpoints of
        # each new edge are activated, so every bridge's information
        # flows and the warm start is exact — re-initializing to fresh
        # ids instead would strand a changed vertex between inactive
        # neighbors.
        return self.wcc(init_labels=init, active=changed_idx)

    def _result(self, values, iters, per_iter) -> GraphXResult:
        compute = float(sum(per_iter))
        return GraphXResult(
            values=values,
            vertex_ids=self.vertex_ids,
            iterations=iters,
            per_iter_seconds=per_iter,
            compute_seconds=compute,
            job_seconds=self._job_overhead() + compute,
        )
