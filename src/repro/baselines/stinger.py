"""STINGER: the single-node dynamic baseline (§4.8, Figure 13).

STINGER [26] is a shared-memory streaming-graph data structure with
OpenMP-parallel maintenance algorithms; its dynamic weakly-connected
components is the only publicly available implementation the paper
found to compare against.  Figure 13 compares per-batch insertion
latencies on LiveJournal and Email-EuAll at original scale, observing
that STINGER "can likely optimize for some easy batches due to its
global view.  It has a bimodal distribution".

That bimodality is mechanical, and this implementation reproduces the
mechanism rather than fabricating the distribution:

* **Easy batch** — every inserted edge's endpoints already share a
  component: an O(batch) check against the labels array suffices.
* **Hard batch** — some insertion merges components: the smaller side
  must be relabeled, touching memory proportional to its size, plus a
  parallel sweep over the adjacency to rebuild the merge frontier.

Deletions in STINGER trigger (possibly partial) recomputation; the
paper's Figure 13 batches are insertions, and :meth:`insert_batch`
enforces that.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.cluster.costmodel import CostModel, DEFAULT_COSTS
from repro.graph.stream import EdgeBatch, INSERT


class Stinger:
    """Shared-memory dynamic WCC over an adjacency structure.

    Parameters
    ----------
    threads:
        OpenMP parallelism of the modeled machine (32 cores).
    """

    def __init__(
        self, threads: int = 32, costs: CostModel = DEFAULT_COSTS, edge_scale: float = 1.0
    ):
        self.threads = int(threads)
        self.costs = costs
        # Figure 13 runs at the graphs' original scale; when a benchmark
        # drives this model with a downscaled graph it can set
        # edge_scale = paper_m / actual_m so the hard-batch sweep cost
        # (proportional to resident edges) reflects the original size.
        self.edge_scale = float(edge_scale)
        self.labels: Dict[int, int] = {}
        self.members: Dict[int, Set[int]] = {}  # label -> vertex set
        self.n_edges = 0

    def load(self, us: np.ndarray, vs: np.ndarray) -> float:
        """Bulk-build the structure and initial components.

        Returns the modeled build time (not part of Figure 13, which
        measures only the final batch insertions).
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        for u, v in zip(us, vs):
            self._insert_edge(int(u), int(v))
        return len(us) * self.costs.stinger_edge_op * 4  # rough build factor

    def _find(self, v: int) -> int:
        label = self.labels.get(v)
        if label is None:
            self.labels[v] = v
            self.members[v] = {v}
            return v
        return label

    def _insert_edge(self, u: int, v: int) -> int:
        """Insert undirected connectivity; returns #vertices relabeled."""
        self.n_edges += 1
        lu, lv = self._find(u), self._find(v)
        if lu == lv:
            return 0
        # Merge the smaller component into the larger (relabel cost is
        # proportional to the smaller side — the "hard batch" work).
        if len(self.members[lu]) < len(self.members[lv]):
            lu, lv = lv, lu
        moving = self.members.pop(lv)
        for w in moving:
            self.labels[w] = lu
        self.members[lu] |= moving
        return len(moving)

    def insert_batch(self, batch: EdgeBatch) -> float:
        """Apply one insertion batch; returns the modeled batch latency.

        Easy batches (no merges) cost the per-edge check only; hard
        batches add relabeling proportional to the merged component
        sizes plus a parallel frontier sweep — the two modes of
        Figure 13.
        """
        if (batch.actions != INSERT).any():
            raise ValueError(
                "STINGER's maintained WCC handles insertions; deletions "
                "require recomputation (load a fresh snapshot instead)"
            )
        costs = self.costs
        relabeled = 0
        for u, v in zip(batch.us, batch.vs):
            relabeled += self._insert_edge(int(u), int(v))
        seconds = costs.stinger_batch_overhead
        seconds += len(batch) * costs.stinger_edge_op
        if relabeled:
            # Hard mode: relabel writes + a parallel sweep to find the
            # affected adjacency, amortized over the thread count.
            sweep = self.n_edges * self.edge_scale * costs.stinger_edge_op * 0.5
            seconds += (
                relabeled * self.edge_scale * 8 * costs.stinger_edge_op + sweep
            ) / self.threads
        return seconds

    def component_of(self, v: int) -> int:
        """Current component label of a vertex."""
        return self._find(int(v))

    def n_components(self) -> int:
        return len(self.members)

    def label_map(self) -> Dict[int, int]:
        """Vertex -> canonical (minimum-id) component label."""
        canon = {label: min(members) for label, members in self.members.items()}
        return {v: canon[label] for v, label in self.labels.items()}
