"""Benchmark harness utilities (§4's methodology).

"Following standard distributed graph system experimental methodologies
[29], we run five independent trials for each experiment.  We report
the means and, assuming a t-distribution as the sample size is small,
we show the 95% confidence intervals for the mean."  :mod:`bench.stats`
is that methodology; :mod:`bench.runner` formats the tables and series
each ``benchmarks/bench_*.py`` file prints.
"""

from repro.bench.chaos import (
    ChaosReport,
    InvariantViolation,
    build_engine_pair,
    check_cluster_invariants,
    fault_matrix,
    run_chaos_scenario,
    run_rebalance_chaos_scenario,
)
from repro.bench.counters import PerfCounters, aggregate_counters
from repro.bench.runner import Series, Table, print_counters, print_experiment_header
from repro.bench.stats import TrialStats, t_confidence_interval, trials

__all__ = [
    "ChaosReport",
    "InvariantViolation",
    "PerfCounters",
    "Series",
    "Table",
    "TrialStats",
    "aggregate_counters",
    "build_engine_pair",
    "check_cluster_invariants",
    "fault_matrix",
    "print_counters",
    "print_experiment_header",
    "run_chaos_scenario",
    "run_rebalance_chaos_scenario",
    "t_confidence_interval",
    "trials",
]
