"""Chaos scenario harness: fault injection with cluster invariants.

The chaos fabric's correctness claim is strong: with a
:class:`~repro.net.faults.FaultPlan` misbehaving underneath a reliable
fabric, every algorithm run must produce results *bit-identical* to a
fault-free run of the same cluster shape — not merely close.  The
reliable layer provides exactly-once delivery and the agents fold
message aggregates in a canonical order, so floating-point sums are a
pure function of the message multiset and the comparison can be exact.

This module packages that claim as a reusable scenario runner:

* :func:`build_engine_pair` — a fault-free reference engine and a
  chaos engine (same seed, same shape; the chaos one runs the reliable
  fabric with the plan installed);
* :func:`run_chaos_scenario` — ingest the same graph into both, run
  the same programs (the plan's crash schedule becomes a mid-run scale
  plan on *both* engines so their step structure matches), check
  invariants after every settle, and return a :class:`ChaosReport`;
* :func:`check_cluster_invariants` — the per-settle assertions: no
  resident edge lost or double-counted, directory versions monotone,
  migration quiescent;
* :func:`fault_matrix` — the named fault plans the chaos test-suite
  sweeps.

``tests/chaos/harness.py`` wraps these in pytest assertions; the
functions themselves raise :class:`InvariantViolation` so benchmark
scripts can use them without pytest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.faults import CrashEvent, FaultPlan, PartitionWindow
from repro.net.message import Message, PacketType


class InvariantViolation(AssertionError):
    """A cluster invariant did not hold after a settle."""


def _control_plane_defaults(plan: FaultPlan, config_overrides: dict) -> None:
    """Arm failover machinery when ``plan`` targets control entities.

    A plan that kills the lead Directory needs peer directories and the
    lease/election protocol; one that kills either control entity needs
    agent heartbeats (so participants homed on a dead directory re-home)
    and checkpoints.  Applied via ``setdefault`` so callers can still
    pin their own values — and applied to BOTH engines of the pair
    (``build_engine_pair`` shares the overrides), keeping the reference
    and chaos configurations identical.
    """
    targets = {crash.target for crash in plan.crashes if crash.abrupt}
    if "directory" in targets:
        config_overrides.setdefault("n_directories", 3)
        config_overrides.setdefault("dir_lease_interval", 2e-3)
        config_overrides.setdefault("dir_lease_timeout", 6e-3)
    if targets & {"directory", "master"}:
        config_overrides.setdefault("heartbeat_interval", 0.005)
        config_overrides.setdefault("lease_timeout", 0.025)
        config_overrides.setdefault("checkpoint_every", 2)


@dataclass
class ChaosReport:
    """Outcome of one chaos scenario (one plan, one graph, N programs).

    ``bit_equal`` maps program name -> whether the chaos run's value
    dict compared equal (``==``, i.e. bitwise on floats) to the
    fault-free reference run's.  The traffic counters come from the
    chaos engine's fabric and quantify how much abuse the plan actually
    delivered — a scenario that injected nothing proves nothing, so
    tests should assert on these too.
    """

    plan_seed: int
    steps: Dict[str, int] = field(default_factory=dict)
    bit_equal: Dict[str, bool] = field(default_factory=dict)
    drops_chaos: int = 0
    drops_partition: int = 0
    messages_duplicated: int = 0
    messages_retried: int = 0
    duplicates_suppressed: int = 0
    scale_plan: Dict[int, int] = field(default_factory=dict)
    crash_plan: Dict[int, object] = field(default_factory=dict)
    # Rebalance scenarios: the mid-run re-weight plan both engines ran,
    # the migration traffic it generated on the chaos engine, and the
    # post-run ring weights on each side (must match).
    rebalance_plan: Dict[int, Dict[int, float]] = field(default_factory=dict)
    migrate_messages: int = 0
    weights_reference: Dict[int, float] = field(default_factory=dict)
    weights_chaos: Dict[int, float] = field(default_factory=dict)
    recovery_log: List[dict] = field(default_factory=list)
    #: (publisher, term, version) of every DIRECTORY_UPDATE seen on the
    #: wire — versions alone are non-monotone across lead elections.
    directory_versions: List[Tuple[int, int, int]] = field(default_factory=list)
    lead_elections: int = 0
    stale_term_drops: int = 0
    # Populated when the scenario ran with ``tracing=True``: immutable
    # Trace snapshots keyed "reference" / "chaos", ready for
    # :func:`repro.obs.diff.diff_traces`.
    traces: Dict[str, object] = field(default_factory=dict)

    @property
    def recoveries(self) -> int:
        """How many crash-recovery cycles the chaos engine completed."""
        return sum(1 for e in self.recovery_log if e.get("event") == "recover")

    @property
    def elections(self) -> int:
        """How many lead-directory elections the chaos engine logged."""
        return sum(1 for e in self.recovery_log if e.get("event") == "lead_elected")

    @property
    def ok(self) -> bool:
        """All programs matched the fault-free reference bit-for-bit."""
        return bool(self.bit_equal) and all(self.bit_equal.values())

    @property
    def faults_injected(self) -> int:
        """Total abuse delivered (drops + duplicate copies)."""
        return self.drops_chaos + self.drops_partition + self.messages_duplicated


def build_engine_pair(
    plan: FaultPlan,
    nodes: int = 2,
    agents_per_node: int = 2,
    seed: int = 9,
    **config_overrides,
):
    """A (reference, chaos) engine pair of identical shape and seed.

    The reference runs the classic perfect fabric; the chaos engine
    runs the reliable fabric with ``plan`` installed underneath it.
    Everything else — seed, hash, sketch dimensions — is shared, so any
    divergence between the two is the fault plan's doing.
    """
    from repro.core.engine import ElGA

    reference = ElGA(
        nodes=nodes, agents_per_node=agents_per_node, seed=seed, **config_overrides
    )
    chaos = ElGA(
        nodes=nodes,
        agents_per_node=agents_per_node,
        seed=seed,
        reliable_transport=True,
        **config_overrides,
    )
    chaos.cluster.network.install_faults(plan)
    return reference, chaos


def check_cluster_invariants(engine, versions_seen: Optional[List[int]] = None) -> None:
    """Assert the always-true cluster properties; raise on violation.

    Run after every settle point (post-ingest, post-run):

    * every reference edge resident exactly once as an out-copy and
      once as an in-copy (no loss, no double-count);
    * resident copy total == 2 x reference edge count;
    * directory (term, version) fences observed on the wire are
      monotone — raw versions are non-monotone across lead elections
      (a successor rebuilds state from its mirror), but the
      lexicographic fence must never go backwards — and the lead's
      current fence is their maximum;
    * no migration traffic outstanding and every agent on the latest
      directory state;
    * the reliable fabric holds no forgotten in-flight sends.
    """
    cluster = engine.cluster
    if not engine.validate_against_reference():
        raise InvariantViolation(
            "edge residency diverged from the reference graph "
            "(an edge was lost, duplicated, or misplaced)"
        )
    resident = cluster.total_resident_edges()
    expected = 2 * engine.reference.num_edges
    if resident != expected:
        raise InvariantViolation(
            f"resident edge copies {resident} != 2 x {engine.reference.num_edges} "
            "reference edges"
        )
    if versions_seen is not None:
        # Monotone per *publisher*: with peer directories re-publishing
        # adopted states, independent link latencies can interleave two
        # publishers' streams on the wire, but no single publisher may
        # ever send a fence lower than one it already sent.
        last_fence: Dict[int, Tuple[int, int]] = {}
        for src, term, version in versions_seen:
            fence = (term, version)
            previous = last_fence.get(src)
            if previous is not None and fence < previous:
                raise InvariantViolation(
                    f"directory fence went backwards on the wire: publisher "
                    f"{src} sent {fence} after {previous}"
                )
            last_fence[src] = fence
        if versions_seen and cluster.lead.state.fence < max(last_fence.values()):
            raise InvariantViolation(
                "lead directory fence is behind a broadcast fence"
            )
    if not cluster.consistent():
        raise InvariantViolation(
            "cluster settled while inconsistent (stale directory state "
            "or outstanding migration acks)"
        )
    if cluster.network.pending_reliable:
        raise InvariantViolation(
            f"{cluster.network.pending_reliable} reliable sends still pending "
            "after settle"
        )
    # Determinism guard: the bit-equality claim only holds if nothing in
    # the run depends on host wall time.  An entity whose PerfCounters
    # accumulated phase timers without an injected sim clock has been
    # timing with time.perf_counter(), which is exactly the kind of
    # nondeterminism this harness exists to exclude.
    for participant in list(cluster.agents.values()) + list(cluster.streamers):
        perf = getattr(participant, "perf", None)
        if perf is None:
            continue
        if perf.timers and not perf.deterministic:
            raise InvariantViolation(
                f"{participant.name} accumulated wall-clock phase timers "
                f"{sorted(perf.timers)} inside a determinism-checked run; "
                "inject PerfCounters(clock=kernel.clock) or stop timing"
            )


def _watch_directory_versions(network) -> List[Tuple[int, int, int]]:
    """Tap the fabric and record every broadcast directory fence.

    Entries are ``(publisher address, term, version)``; the invariant
    check asserts per-publisher (term, version) monotonicity.
    """
    versions: List[Tuple[int, int, int]] = []

    def tap(message: Message) -> None:
        if message.ptype == PacketType.DIRECTORY_UPDATE:
            version = getattr(message.payload, "version", None)
            if version is not None:
                term = int(getattr(message.payload, "term", 0) or 0)
                versions.append((int(message.src), term, int(version)))

    network.add_tap(tap)
    return versions


def run_chaos_scenario(
    us,
    vs,
    plan: FaultPlan,
    programs: Optional[Sequence] = None,
    nodes: int = 2,
    agents_per_node: int = 2,
    seed: int = 9,
    **config_overrides,
) -> ChaosReport:
    """Run the full invariant scenario for one fault plan.

    Both engines ingest ``(us, vs)``; each program in ``programs``
    (default: PageRank then WCC) runs on both with the plan's crash
    schedule applied as a mid-run scale plan, so the reference
    experiences the same membership changes — minus the faults.
    Invariants are checked on the chaos engine after ingest and after
    every run; results are compared bit-for-bit.
    """
    from repro.core import PageRank
    from repro.core.algorithms import WCC

    if programs is None:
        programs = [PageRank(max_iters=15), WCC()]
    _control_plane_defaults(plan, config_overrides)
    reference, chaos = build_engine_pair(
        plan, nodes=nodes, agents_per_node=agents_per_node, seed=seed, **config_overrides
    )
    versions = _watch_directory_versions(chaos.cluster.network)
    before = chaos.cluster.network.stats.snapshot()
    reference.ingest_edges(us, vs)
    chaos.ingest_edges(us, vs)
    check_cluster_invariants(chaos, versions)

    report = ChaosReport(plan_seed=plan.seed)
    for i, program in enumerate(programs):
        # Crashes are one-time events: the schedule reshapes the first
        # run; later programs run on the already-shrunk cluster.
        # Graceful crashes mirror onto the reference as scale plans (a
        # drain is a legitimate membership change both sides share);
        # abrupt crashes hit ONLY the chaos engine — recovery's whole
        # claim is converging bit-identical to the fault-free run.
        scale = plan.scale_plan(len(chaos.cluster.agents)) if i == 0 else {}
        crashes = plan.crash_plan() if i == 0 else {}
        report.scale_plan.update(scale)
        report.crash_plan.update(crashes)
        ref_result = reference.run(program, scale_plan=dict(scale))
        chaos_result = chaos.run(
            program, scale_plan=dict(scale), crash_plan=dict(crashes) or None
        )
        check_cluster_invariants(chaos, versions)
        report.steps[program.name] = chaos_result.steps
        report.bit_equal[program.name] = ref_result.values == chaos_result.values
    after = chaos.cluster.network.stats
    report.drops_chaos = after.drops_chaos - before.drops_chaos
    report.drops_partition = after.drops_partition - before.drops_partition
    report.messages_duplicated = after.messages_duplicated - before.messages_duplicated
    report.messages_retried = after.messages_retried - before.messages_retried
    report.duplicates_suppressed = (
        after.duplicates_suppressed - before.duplicates_suppressed
    )
    report.lead_elections = after.lead_elections - before.lead_elections
    report.stale_term_drops = after.stale_term_drops - before.stale_term_drops
    report.directory_versions = list(versions)
    report.recovery_log = list(chaos.cluster.recovery_log)
    # With tracing=True in config_overrides both engines carry a Tracer;
    # snapshot them so callers can diff faulted vs. fault-free.
    if reference.tracer is not None:
        report.traces["reference"] = reference.tracer.trace()
    if chaos.tracer is not None:
        report.traces["chaos"] = chaos.tracer.trace()
    return report


def run_rebalance_chaos_scenario(
    us,
    vs,
    plan: FaultPlan,
    rebalance_plan: Dict[int, Dict[int, float]],
    programs: Optional[Sequence] = None,
    nodes: int = 2,
    agents_per_node: int = 2,
    seed: int = 9,
    **config_overrides,
) -> ChaosReport:
    """Migration atomicity under fire.

    Both engines run the first program with the SAME mid-run
    ``rebalance_plan`` (the re-weight is a legitimate control action
    both sides share, exactly like the graceful-crash scale mirroring
    in :func:`run_chaos_scenario`); the chaos engine additionally
    suffers ``plan`` — drops and duplicates on the data plane, which
    includes EDGE_MIGRATE/EDGE_MIGRATE_ACK, plus any abrupt crashes
    timed to land around the migration window.  The claim: the chaos
    run converges bit-identical to the fault-free run and *both* rings
    end up carrying the adopted weights.

    Use partition-independent programs (WCC's min-fold) when the plan
    crashes someone: an abrupt crash after a mid-run reshape forces
    restart-mode recovery, which recomputes every superstep under the
    new partition, while the reference computed its early steps under
    the old one — bit-identical for order-insensitive folds, ULP-level
    different for float sums (the data plane's documented grouping
    sensitivity).  Crash-free plans can run PageRank: both engines then
    share the same partition timeline.
    """
    from repro.core.algorithms import WCC

    if programs is None:
        programs = [WCC()]
    _control_plane_defaults(plan, config_overrides)
    reference, chaos = build_engine_pair(
        plan, nodes=nodes, agents_per_node=agents_per_node, seed=seed, **config_overrides
    )
    versions = _watch_directory_versions(chaos.cluster.network)
    before = chaos.cluster.network.stats.snapshot()
    reference.ingest_edges(us, vs)
    chaos.ingest_edges(us, vs)
    check_cluster_invariants(chaos, versions)

    report = ChaosReport(plan_seed=plan.seed)
    report.rebalance_plan = {k: dict(w) for k, w in rebalance_plan.items()}
    for i, program in enumerate(programs):
        # The re-weight and the crash schedule both apply to the first
        # run only; later programs verify the reshaped cluster serves
        # clean runs.
        reweight = {k: dict(w) for k, w in rebalance_plan.items()} if i == 0 else None
        crashes = plan.crash_plan() if i == 0 else {}
        report.crash_plan.update(crashes)
        ref_result = reference.run(program, rebalance_plan=reweight)
        chaos_result = chaos.run(
            program, rebalance_plan=reweight, crash_plan=dict(crashes) or None
        )
        check_cluster_invariants(chaos, versions)
        report.steps[program.name] = chaos_result.steps
        report.bit_equal[program.name] = ref_result.values == chaos_result.values
    after = chaos.cluster.network.stats
    report.migrate_messages = (
        after.by_type_count[PacketType.EDGE_MIGRATE]
        - before.by_type_count[PacketType.EDGE_MIGRATE]
    )
    report.weights_reference = reference.cluster.current_weights()
    report.weights_chaos = chaos.cluster.current_weights()
    report.drops_chaos = after.drops_chaos - before.drops_chaos
    report.drops_partition = after.drops_partition - before.drops_partition
    report.messages_duplicated = after.messages_duplicated - before.messages_duplicated
    report.messages_retried = after.messages_retried - before.messages_retried
    report.duplicates_suppressed = (
        after.duplicates_suppressed - before.duplicates_suppressed
    )
    report.lead_elections = after.lead_elections - before.lead_elections
    report.stale_term_drops = after.stale_term_drops - before.stale_term_drops
    report.directory_versions = list(versions)
    report.recovery_log = list(chaos.cluster.recovery_log)
    return report


@dataclass
class ServingChaosReport:
    """Outcome of one serving-under-chaos scenario.

    A Zipf query stream runs through client proxies *while* the engine
    executes PageRank under a faulty data plane with one abrupt
    mid-run crash.  The claims bundled here:

    * **no query lost** — every accepted query was answered
      (``outstanding == 0``) and no shed query ran out of resubmits
      (``dropped == 0``);
    * **every reply snapshot-consistent** — torn fan-outs were retried,
      never delivered (``snapshot_retries`` counts the catches);
    * **zero stale reads after the run** — re-querying every vertex
      post-run matches the converged fixpoint exactly
      (``post_run_mismatches == 0``);
    * **the run itself still converges bit-identical** to a fault-free
      reference (``bit_equal``).
    """

    plan_seed: int
    bit_equal: bool = False
    steps: Optional[int] = None
    submitted: int = 0
    delivered: int = 0
    shed: int = 0
    resubmitted: int = 0
    dropped: int = 0
    outstanding: int = 0
    snapshot_retries: int = 0
    snapshot_value_merges: int = 0
    queries_retried: int = 0
    post_run_mismatches: int = 0
    serving_metrics: Dict[str, float] = field(default_factory=dict)
    drops_chaos: int = 0
    messages_duplicated: int = 0
    lead_elections: int = 0
    stale_term_drops: int = 0
    recovery_log: List[dict] = field(default_factory=list)

    @property
    def recoveries(self) -> int:
        return sum(1 for e in self.recovery_log if e.get("event") == "recover")

    @property
    def ok(self) -> bool:
        return (
            self.bit_equal
            and self.outstanding == 0
            and self.dropped == 0
            and self.post_run_mismatches == 0
        )


def serving_chaos_plan(
    seed: int = 0,
    after_step: int = 3,
    drop_p: float = 0.05,
    dup_p: float = 0.05,
    target: str = "agent",
) -> FaultPlan:
    """Data-plane chaos that also abuses the serving plane's packets.

    ``DATA_PTYPES`` deliberately excludes client traffic (queries must
    not perturb algorithm-content digests), so the serving scenario
    opts the query/reply/notice types in explicitly.  ``target``
    selects the mid-run victim — ``"directory"`` makes this the
    zero-stale-reads-across-lead-failover scenario.
    """
    from repro.net.faults import DATA_PTYPES

    return FaultPlan.data_plane_chaos(
        seed=seed,
        drop_p=drop_p,
        dup_p=dup_p,
        crashes=[CrashEvent(after_step=after_step, abrupt=True, target=target)],
        ptypes=DATA_PTYPES
        | {PacketType.CLIENT_QUERY, PacketType.CLIENT_REPLY, PacketType.RESULT_NOTICE},
    )


def run_serving_chaos_scenario(
    us,
    vs,
    plan: FaultPlan,
    program=None,
    nodes: int = 2,
    agents_per_node: int = 2,
    seed: int = 9,
    n_proxies: int = 2,
    rate: float = 2000.0,
    duration: float = 0.5,
    n_clients: int = 10_000,
    zipf_s: float = 1.0,
    workload_seed: int = 1,
    **config_overrides,
) -> ServingChaosReport:
    """Serve a Zipf query stream while the engine crashes and recovers.

    The workload starts immediately before the chaos run, so arrivals
    interleave with supersteps, the crash window, eviction, and the
    rollback — exactly when torn reads and lost replies would happen if
    the serving plane allowed them.  The fault-free reference engine
    runs the same program with no queries; recovery must still converge
    bit-identical (queries are read-only — they must not perturb the
    run).
    """
    from repro.core import PageRank
    from repro.serving import OpenLoopWorkload

    if program is None:
        program = PageRank(max_iters=12)
    _control_plane_defaults(plan, config_overrides)
    config_overrides.setdefault("heartbeat_interval", 0.005)
    config_overrides.setdefault("lease_timeout", 0.025)
    config_overrides.setdefault("checkpoint_every", 2)
    reference, chaos = build_engine_pair(
        plan, nodes=nodes, agents_per_node=agents_per_node, seed=seed, **config_overrides
    )
    before = chaos.cluster.network.stats.snapshot()
    reference.ingest_edges(us, vs)
    chaos.ingest_edges(us, vs)
    check_cluster_invariants(chaos)

    proxies = [chaos.cluster.new_client(node=i % nodes) for i in range(n_proxies)]
    import numpy as np

    vertices = np.unique(np.concatenate([np.asarray(us), np.asarray(vs)]))
    workload = OpenLoopWorkload(
        proxies,
        vertices,
        program.name,
        rate=rate,
        duration=duration,
        n_clients=n_clients,
        zipf_s=zipf_s,
        seed=workload_seed,
    )

    report = ServingChaosReport(plan_seed=plan.seed)
    ref_result = reference.run(program)
    workload.start()
    chaos_result = chaos.run(program, crash_plan=plan.crash_plan() or None)
    chaos.cluster.settle()  # drain late arrivals, resubmits, retries
    check_cluster_invariants(chaos)

    report.bit_equal = ref_result.values == chaos_result.values
    report.steps = chaos_result.steps
    report.submitted = workload.submitted
    report.delivered = workload.delivered
    report.shed = workload.shed
    report.resubmitted = workload.resubmitted
    report.dropped = workload.dropped
    report.outstanding = workload.outstanding
    report.serving_metrics = chaos.cluster.collect_client_metrics()
    report.snapshot_retries = int(report.serving_metrics.get("client_snapshot_retries", 0))
    report.snapshot_value_merges = int(
        report.serving_metrics.get("client_snapshot_value_merges", 0)
    )
    report.queries_retried = int(report.serving_metrics.get("client_queries_retried", 0))

    # Zero-stale acceptance: after the run, every vertex read through
    # the serving plane must equal the converged fixpoint.
    for i, vertex in enumerate(map(int, vertices)):
        proxy = proxies[i % len(proxies)]
        out: List[Optional[float]] = []
        proxy.query(vertex, program.name, out.append)
        chaos.cluster.settle()
        if not out or out[0] != chaos_result.values.get(vertex):
            report.post_run_mismatches += 1

    after = chaos.cluster.network.stats
    report.drops_chaos = after.drops_chaos - before.drops_chaos
    report.messages_duplicated = after.messages_duplicated - before.messages_duplicated
    report.lead_elections = after.lead_elections - before.lead_elections
    report.stale_term_drops = after.stale_term_drops - before.stale_term_drops
    report.recovery_log = list(chaos.cluster.recovery_log)
    return report


def fault_matrix(seed: int = 0) -> Dict[str, FaultPlan]:
    """The named fault plans the chaos suite sweeps.

    Keyed by scenario name; all derive their randomness from ``seed``
    so the whole matrix is reproducible from one number.
    """
    return {
        "data-loss": FaultPlan.data_plane_chaos(seed=seed, drop_p=0.08, dup_p=0.0),
        "data-dup-reorder": FaultPlan.data_plane_chaos(
            seed=seed + 1, drop_p=0.0, dup_p=0.10, reorder_p=0.25
        ),
        "data-chaos-crash": FaultPlan.data_plane_chaos(
            seed=seed + 2, crashes=[CrashEvent(after_step=3)]
        ),
        "control-chaos": FaultPlan.control_plane_chaos(seed=seed + 3),
        "full-chaos": FaultPlan.full_chaos(
            seed=seed + 4, crashes=[CrashEvent(after_step=4)]
        ),
        "lead-crash": FaultPlan.data_plane_chaos(
            seed=seed + 5,
            crashes=[CrashEvent(after_step=3, abrupt=True, target="directory")],
        ),
        "master-crash": FaultPlan.data_plane_chaos(
            seed=seed + 6,
            crashes=[CrashEvent(after_step=3, abrupt=True, target="master")],
        ),
    }
