"""Lightweight performance counters for the placement fast path.

The simulator charges *simulated* time through the cost model; these
counters track the *mechanism* — how often the epoch-versioned
placement cache hits, how much work the vectorized routing path absorbs,
and (optionally) real wall time per phase — so a benchmark can report a
measured win instead of an asserted one.

Counters are plain monotone integers plus float timers.  They are cheap
enough to leave enabled everywhere: one dict update per *batch* of
lookups, never per edge.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterable


class PerfCounters:
    """Named monotone counters and wall-time phase timers.

    Examples
    --------
    >>> c = PerfCounters()
    >>> c.add("placement_cache_hit", 3)
    >>> c.add("placement_cache_hit")
    >>> c.counts["placement_cache_hit"]
    4
    >>> with c.phase("build"):
    ...     pass
    >>> c.timers["build"] >= 0.0
    True
    """

    __slots__ = ("counts", "timers")

    def __init__(self):
        self.counts: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}

    def add(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counts[name] = self.counts.get(name, 0) + int(n)

    @contextmanager
    def phase(self, name: str):
        """Accumulate real wall time spent inside the block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timers[name] = self.timers.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def merge(self, other: "PerfCounters") -> None:
        """Add another counter set into this one (for aggregation)."""
        for name, value in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + value
        for name, value in other.timers.items():
            self.timers[name] = self.timers.get(name, 0.0) + value

    def snapshot(self) -> Dict[str, float]:
        """A flat dict of all counters and timers (timers suffixed ``_s``)."""
        out: Dict[str, float] = dict(self.counts)
        for name, value in self.timers.items():
            out[f"{name}_s"] = value
        return out

    def clear(self) -> None:
        self.counts.clear()
        self.timers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerfCounters({self.snapshot()})"


def aggregate_counters(counter_sets: Iterable[PerfCounters]) -> PerfCounters:
    """Merge many :class:`PerfCounters` into a fresh one."""
    total = PerfCounters()
    for counters in counter_sets:
        total.merge(counters)
    return total
