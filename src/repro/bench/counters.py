"""Lightweight performance counters for the placement fast path.

The simulator charges *simulated* time through the cost model; these
counters track the *mechanism* — how often the epoch-versioned
placement cache hits, how much work the vectorized routing path absorbs,
and (optionally) real wall time per phase — so a benchmark can report a
measured win instead of an asserted one.

Counters are plain monotone integers plus float timers.  They are cheap
enough to leave enabled everywhere: one dict update per *batch* of
lookups, never per edge.

Timers default to **wall time** (``time.perf_counter``) and therefore do
not belong inside determinism-checked simulation paths: two runs of the
same simulation will record different wall times, so anything comparing
runs bit-for-bit (the chaos harness) must not see them.  Pass a
``clock`` callable (e.g. :meth:`repro.sim.kernel.SimKernel.clock`) to
time phases on the simulated clock instead; such a counter set is
*deterministic* and safe anywhere.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, Optional


class PerfCounters:
    """Named monotone counters and phase timers.

    Parameters
    ----------
    clock:
        Time source for :meth:`phase`.  ``None`` (the default) means
        wall time via ``time.perf_counter`` — fine for benchmarks,
        non-deterministic by nature.  Supply the simulation kernel's
        clock to make timers reproducible.

    Examples
    --------
    >>> c = PerfCounters()
    >>> c.add("placement_cache_hit", 3)
    >>> c.add("placement_cache_hit")
    >>> c.counts["placement_cache_hit"]
    4
    >>> with c.phase("build"):
    ...     pass
    >>> c.timers["build"] >= 0.0
    True
    """

    __slots__ = ("counts", "timers", "_clock")

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.counts: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        self._clock = clock

    @property
    def deterministic(self) -> bool:
        """Whether phase timers use a reproducible (simulated) clock."""
        return self._clock is not None

    def add(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counts[name] = self.counts.get(name, 0) + int(n)

    @contextmanager
    def phase(self, name: str):
        """Accumulate time spent inside the block (wall time unless a
        ``clock`` was supplied at construction)."""
        clock = self._clock if self._clock is not None else time.perf_counter
        start = clock()
        try:
            yield
        finally:
            self.timers[name] = self.timers.get(name, 0.0) + (clock() - start)

    def merge(self, other: "PerfCounters") -> None:
        """Add another counter set into this one (for aggregation)."""
        for name, value in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + value
        for name, value in other.timers.items():
            self.timers[name] = self.timers.get(name, 0.0) + value

    def snapshot(self) -> Dict[str, float]:
        """A flat dict of all counters and timers (timers suffixed ``_s``).

        A counter literally named ``foo_s`` would silently collide with
        the export key of a timer named ``foo``; that is a naming bug at
        the call sites, so it raises instead of dropping data.
        """
        out: Dict[str, float] = dict(self.counts)
        for name, value in self.timers.items():
            key = f"{name}_s"
            if key in out:
                raise ValueError(
                    f"timer {name!r} collides with counter {key!r} in snapshot(); "
                    "rename one of them"
                )
            out[key] = value
        return out

    def clear(self) -> None:
        self.counts.clear()
        self.timers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerfCounters({self.snapshot()})"


def aggregate_counters(counter_sets: Iterable[PerfCounters]) -> PerfCounters:
    """Merge many :class:`PerfCounters` into a fresh one."""
    total = PerfCounters()
    for counters in counter_sets:
        total.merge(counters)
    return total
