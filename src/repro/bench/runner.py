"""Benchmark output formatting.

Every ``benchmarks/bench_*.py`` prints the rows/series its table or
figure reports, through these helpers, so the harness output reads like
the paper's artifacts: an experiment header, labeled series, and
aligned tables with confidence intervals.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.bench.stats import TrialStats

Cell = Union[str, float, int, TrialStats, None]


def print_experiment_header(exp_id: str, caption: str) -> None:
    """Banner naming the paper table/figure being regenerated."""
    line = f"=== {exp_id}: {caption} ==="
    print()
    print(line)
    print("-" * len(line))


def print_counters(counters, label: str = "perf counters") -> None:
    """Render a :class:`~repro.bench.counters.PerfCounters` snapshot
    (or any flat name -> number dict) as an aligned block."""
    snap = counters.snapshot() if hasattr(counters, "snapshot") else dict(counters)
    print(f"[{label}]")
    if not snap:
        print("    (empty)")
        return
    width = max(len(name) for name in snap)
    for name in sorted(snap):
        print(f"    {name.ljust(width)}  {_format_cell(snap[name])}")


def _format_cell(cell: Cell, width: int = 0) -> str:
    if cell is None:
        text = "—"
    elif isinstance(cell, TrialStats):
        text = str(cell)
    elif isinstance(cell, float):
        text = f"{cell:.6g}"
    else:
        text = str(cell)
    return text.rjust(width) if width else text


class Table:
    """An aligned text table (one per paper table/figure panel)."""

    def __init__(self, columns: Sequence[str]):
        self.columns = list(columns)
        self.rows: List[List[Cell]] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells for {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        formatted = [[_format_cell(c) for c in row] for row in self.rows]
        widths = [
            max([len(col)] + [len(row[i]) for row in formatted])
            for i, col in enumerate(self.columns)
        ]
        lines = [
            "  ".join(col.rjust(w) for col, w in zip(self.columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in formatted:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())


class Series:
    """A labeled x→y series (one line of a figure)."""

    def __init__(self, label: str, x_name: str = "x", y_name: str = "y"):
        self.label = label
        self.x_name = x_name
        self.y_name = y_name
        self.points: List[tuple] = []

    def add(self, x, y) -> None:
        self.points.append((x, y))

    def show(self) -> None:
        print(f"[series] {self.label} ({self.x_name} -> {self.y_name})")
        for x, y in self.points:
            print(f"    {_format_cell(x):>12}  {_format_cell(y)}")

    def ys(self) -> List[float]:
        return [
            p[1].mean if isinstance(p[1], TrialStats) else float(p[1])
            for p in self.points
        ]
