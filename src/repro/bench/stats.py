"""Trial statistics: 5 trials, mean, 95% t-distribution CI (§4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class TrialStats:
    """Mean and 95% confidence interval over independent trials."""

    mean: float
    ci_low: float
    ci_high: float
    n: int
    samples: Tuple[float, ...]

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.6g} ± {self.half_width:.2g}"


def t_confidence_interval(samples: Sequence[float], confidence: float = 0.95) -> TrialStats:
    """The paper's statistic: mean with a t-distribution CI.

    With a single sample (deterministic experiments) the interval
    collapses to the point.

    Examples
    --------
    >>> s = t_confidence_interval([1.0, 1.1, 0.9, 1.05, 0.95])
    >>> round(s.mean, 2)
    1.0
    >>> s.ci_low < s.mean < s.ci_high
    True
    """
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one trial")
    mean = float(arr.mean())
    if arr.size == 1 or np.allclose(arr, arr[0]):
        return TrialStats(mean, mean, mean, int(arr.size), tuple(arr.tolist()))
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return TrialStats(
        mean,
        mean - t_crit * sem,
        mean + t_crit * sem,
        int(arr.size),
        tuple(arr.tolist()),
    )


def trials(
    fn: Callable[[int], float], n_trials: int = 5, base_seed: int = 0
) -> TrialStats:
    """Run ``fn(seed)`` for ``n_trials`` independent seeds.

    Each trial gets a distinct derived seed, so trials are independent
    in exactly the way the paper's repeated runs are.
    """
    if n_trials < 1:
        raise ValueError(f"need at least one trial, got {n_trials}")
    samples = [float(fn(base_seed + 1000 * t)) for t in range(n_trials)]
    return t_confidence_interval(samples)


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> float:
    """p-value that the two systems' means differ (the Figure 11/12
    t-tests); one-sided in favor of mean(a) < mean(b)."""
    import warnings

    a, b = list(a), list(b)
    if np.allclose(a, np.mean(a)) and np.allclose(b, np.mean(b)):
        # Degenerate zero-variance samples (fully deterministic trials):
        # the means either differ exactly or not at all.
        if np.mean(a) == np.mean(b):
            return 0.5
        return 0.0 if np.mean(a) < np.mean(b) else 1.0
    with warnings.catch_warnings():
        # Near-identical samples trip scipy's catastrophic-cancellation
        # RuntimeWarning; the degenerate cases are handled above.
        warnings.simplefilter("ignore", RuntimeWarning)
        result = scipy_stats.ttest_ind(a, b, equal_var=False)
    p_two = float(result.pvalue)
    if np.mean(a) < np.mean(b):
        return p_two / 2.0
    return 1.0 - p_two / 2.0
