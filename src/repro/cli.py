"""Command-line interface: ``python -m repro ...``.

The reproduction equivalent of the artifact's ``scripts/`` directory —
a way to drive ElGA on the registry datasets without writing code.

Commands
--------
``datasets``
    List the Table 2 registry with paper-scale and generated sizes.
``run``
    Build a cluster, ingest a dataset, run an algorithm, and print a
    result summary (per-superstep simulated times, top vertices).
    With ``--churn-batches`` the run continues as an update stream:
    each batch inserts random edges between existing vertices and the
    algorithm re-converges incrementally (delta strategy) from the
    previous fixpoint, printing per-batch strategy/steps/time and the
    sustained updates/s.
``query``
    Run an algorithm, then answer point queries through a ClientProxy.
``serve``
    Run an algorithm, then drive an open-loop Zipf query stream through
    client proxies and print the tail-latency/QPS/cache summary.
``trace``
    Run an algorithm with tracing on, print the per-superstep timeline,
    and export the trace as Chrome ``trace_event`` JSON (open it in
    Perfetto / ``chrome://tracing``) and optionally JSONL.
``metrics``
    Run an algorithm and print the cluster's Prometheus text
    exposition (agent metrics, fabric stats, cost-model charges).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.bench.runner import Table
from repro.core import ElGA, PageRank, PersonalizedPageRank, SSSP, WCC
from repro.gen import DATASETS, load_dataset
from repro.graph.stream import EdgeBatch


def _build_algorithm(name: str, source: Optional[int], max_iters: int):
    if name == "pagerank":
        return PageRank(max_iters=max_iters), "sync"
    if name == "wcc":
        return WCC(max_iters=max_iters), "sync"
    if name == "sssp":
        if source is None:
            raise SystemExit("sssp requires --source")
        return SSSP(source=source, max_iters=max_iters), "async"
    if name == "ppr":
        if source is None:
            raise SystemExit("ppr requires --source")
        return PersonalizedPageRank(source=source, max_iters=max_iters), "sync"
    raise SystemExit(f"unknown algorithm {name!r}")


def _build_engine(args, tracing: bool = False, keep_reference: bool = False) -> ElGA:
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    elga = ElGA(
        nodes=args.nodes,
        agents_per_node=args.agents_per_node,
        seed=args.seed,
        keep_reference=keep_reference,
        tracing=tracing,
    )
    report = elga.ingest_edges(data.us, data.vs, n_streamers=min(4, args.nodes * 2))
    print(
        f"loaded {args.dataset}: {elga.global_m} edges on "
        f"{elga.n_agents} agents "
        f"({report['edges_per_second']:,.0f} edges/s simulated ingest)"
    )
    return elga


def cmd_datasets(args) -> int:
    table = Table(["name", "family", "paper n", "paper m", "A-BTER", "gen n", "gen m"])
    for name, spec in DATASETS.items():
        table.add_row(
            name,
            spec.family,
            f"{spec.paper_n:.2g}",
            f"{spec.paper_m:.2g}",
            f"×{spec.abter_scale}" if spec.abter_scale else "—",
            spec.base_n,
            spec.base_m,
        )
    table.show()
    return 0


def cmd_run(args) -> int:
    program, default_mode = _build_algorithm(args.algorithm, args.source, args.max_iters)
    mode = args.mode or default_mode
    elga = _build_engine(args, keep_reference=args.churn_batches > 0)
    result = elga.run(program, mode=mode)
    steps = result.steps if result.steps is not None else "async"
    print(
        f"{args.algorithm}: {steps} superstep(s), "
        f"{result.sim_seconds * 1e3:.3f} ms simulated"
    )
    if result.steps is not None:
        per_step = ", ".join(f"{d * 1e3:.3f}" for d in result.per_step_seconds())
        print(f"per-superstep ms: {per_step}")
    if args.churn_batches > 0:
        _run_churn_stream(elga, program, mode, args)
    table = Table(["vertex", "value"])
    for vertex, value in result.top_k(args.top):
        table.add_row(vertex, value)
    table.show()
    return 0


def _run_churn_stream(elga: ElGA, program, mode: str, args) -> None:
    """Replay an insert-only update stream, re-converging incrementally.

    Inserts land between already-present vertices so |V| stays fixed
    and stable-n programs (PageRank) keep their delta strategy.
    """
    rng = np.random.default_rng(args.seed)
    verts = np.fromiter(elga.reference.vertices(), dtype=np.int64)
    k = max(1, int(elga.global_m * args.churn_frac))
    table = Table(["batch", "edges", "strategy", "steps", "sim_ms"])
    total_sim = 0.0
    total_edges = 0
    for i in range(args.churn_batches):
        eu = rng.choice(verts, k)
        ev = rng.choice(verts, k)
        keep = eu != ev
        eu, ev = eu[keep], ev[keep]
        elga.apply_batch(EdgeBatch(np.ones(len(eu), dtype=np.int8), eu, ev))
        elga.quiesce()
        result = elga.run(program, mode=mode, incremental=True)
        total_sim += result.sim_seconds
        total_edges += len(eu)
        table.add_row(
            i, len(eu), result.strategy, result.steps, result.sim_seconds * 1e3
        )
    table.show()
    print(
        f"sustained: {total_edges / total_sim:,.0f} updates/s "
        f"({total_edges} edges over {total_sim * 1e3:.3f} ms analysis)"
    )


def cmd_trace(args) -> int:
    from repro.obs import TraceSummary, write_chrome_trace, write_jsonl

    program, default_mode = _build_algorithm(args.algorithm, args.source, args.max_iters)
    elga = _build_engine(args, tracing=True)
    result = elga.run(program, mode=args.mode or default_mode)
    trace = elga.trace()
    print(
        f"{args.algorithm}: {result.steps} superstep(s), "
        f"{len(trace.spans)} spans, {len(trace.events)} events"
    )
    print(TraceSummary.from_trace(trace).format())
    write_chrome_trace(trace, args.out)
    print(f"wrote Chrome trace to {args.out} (open in ui.perfetto.dev)")
    if args.jsonl:
        n = write_jsonl(trace, args.jsonl)
        print(f"wrote {n} JSONL records to {args.jsonl}")
    return 0


def cmd_metrics(args) -> int:
    program, default_mode = _build_algorithm(args.algorithm, args.source, args.max_iters)
    elga = _build_engine(args)
    elga.run(program, mode=args.mode or default_mode)
    sys.stdout.write(elga.prometheus_text())
    return 0


def cmd_serve(args) -> int:
    """Run an algorithm, then serve an open-loop Zipf query stream."""
    from repro.serving import OpenLoopWorkload, percentile

    program, default_mode = _build_algorithm(args.algorithm, args.source, args.max_iters)
    elga = _build_engine(args, keep_reference=True)
    elga.run(program, mode=args.mode or default_mode)
    cluster = elga.cluster
    proxies = [cluster.new_client(node=i % args.nodes) for i in range(args.proxies)]
    vertices = np.fromiter(elga.reference.vertices(), dtype=np.int64)
    workload = OpenLoopWorkload(
        proxies,
        vertices,
        program.name,
        rate=args.rate,
        duration=args.duration,
        n_clients=args.clients,
        zipf_s=args.zipf,
        seed=args.seed,
    ).start()
    start = cluster.kernel.now
    cluster.settle()
    elapsed = cluster.kernel.now - start
    metrics = cluster.collect_client_metrics()
    samples: List[float] = []
    for proxy in proxies:
        samples.extend(proxy.latencies)
    hits = metrics.get("serving_cache_hits", 0)
    misses = metrics.get("serving_cache_misses", 0)
    table = Table(["metric", "value"])
    table.add_row("queries delivered", workload.delivered)
    table.add_row("distinct clients", workload.distinct_clients)
    table.add_row("QPS (simulated)", f"{workload.delivered / max(elapsed, 1e-12):,.0f}")
    table.add_row("p50 latency (us)", f"{percentile(samples, 50.0) * 1e6:.2f}")
    table.add_row("p99 latency (us)", f"{percentile(samples, 99.0) * 1e6:.2f}")
    table.add_row("p999 latency (us)", f"{percentile(samples, 99.9) * 1e6:.2f}")
    table.add_row("cache hit rate", f"{hits / max(hits + misses, 1):.3f}")
    table.add_row("coalesced", int(metrics.get("client_queries_coalesced", 0)))
    table.add_row("shed", int(metrics.get("client_queries_shed", 0)))
    table.add_row("snapshot retries", int(metrics.get("client_snapshot_retries", 0)))
    table.show()
    return 0


def cmd_query(args) -> int:
    program, default_mode = _build_algorithm(args.algorithm, args.source, args.max_iters)
    elga = _build_engine(args)
    elga.run(program, mode=args.mode or default_mode)
    for vertex in args.vertices:
        value = elga.query(vertex, program.name)
        print(f"vertex {vertex}: {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ElGA reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table 2 dataset registry")

    def add_common(p):
        p.add_argument("--dataset", default="twitter-2010", choices=sorted(DATASETS))
        p.add_argument("--scale", type=float, default=0.2, help="dataset scale factor")
        p.add_argument("--nodes", type=int, default=2)
        p.add_argument("--agents-per-node", type=int, default=4)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--algorithm", default="pagerank", choices=["pagerank", "wcc", "sssp", "ppr"]
        )
        p.add_argument("--source", type=int, default=None, help="source vertex (sssp/ppr)")
        p.add_argument("--max-iters", type=int, default=50)
        p.add_argument("--mode", choices=["sync", "async"], default=None)

    run_p = sub.add_parser("run", help="run an algorithm on a registry dataset")
    add_common(run_p)
    run_p.add_argument("--top", type=int, default=10, help="result rows to print")
    run_p.add_argument(
        "--churn-batches",
        type=int,
        default=0,
        help="after the first run, replay this many insert batches and "
        "re-converge incrementally after each",
    )
    run_p.add_argument(
        "--churn-frac",
        type=float,
        default=0.001,
        help="edges inserted per churn batch, as a fraction of |E|",
    )

    query_p = sub.add_parser("query", help="run, then answer point queries")
    add_common(query_p)
    query_p.add_argument("vertices", type=int, nargs="+", help="vertex ids to query")

    serve_p = sub.add_parser(
        "serve", help="run, then serve an open-loop Zipf query stream"
    )
    add_common(serve_p)
    serve_p.add_argument("--proxies", type=int, default=2, help="client proxy count")
    serve_p.add_argument("--rate", type=float, default=50_000.0, help="queries/s offered")
    serve_p.add_argument(
        "--duration", type=float, default=0.2, help="stream length (simulated s)"
    )
    serve_p.add_argument(
        "--clients", type=int, default=100_000, help="simulated client population"
    )
    serve_p.add_argument("--zipf", type=float, default=1.0, help="key skew exponent")

    trace_p = sub.add_parser("trace", help="run traced, export a Chrome trace")
    add_common(trace_p)
    trace_p.add_argument(
        "--out", default="trace.json", help="Chrome trace_event output path"
    )
    trace_p.add_argument("--jsonl", default=None, help="also dump raw JSONL records")

    metrics_p = sub.add_parser("metrics", help="run, print Prometheus exposition")
    add_common(metrics_p)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "run": cmd_run,
        "query": cmd_query,
        "serve": cmd_serve,
        "trace": cmd_trace,
        "metrics": cmd_metrics,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
