"""The ElGA cluster: shared-nothing entities and protocols (§3).

This package implements every participant from Figure 1 — Agents,
Streamers, ClientProxies — plus the directory system (Directories and
the DirectoryMaster), wired over the simulated ZeroMQ fabric.  The
orchestration entry point is :class:`~repro.cluster.cluster.ElGACluster`;
most users should go through the higher-level facade in
:mod:`repro.core.engine` instead.
"""

from repro.cluster.agent import Agent
from repro.cluster.autoscaler import ReactiveAutoscaler
from repro.cluster.client import ClientProxy
from repro.cluster.cluster import ElGACluster
from repro.cluster.config import ClusterConfig
from repro.cluster.directory import Directory, DirectoryMaster, DirectoryState
from repro.cluster.streamer import Streamer

__all__ = [
    "Agent",
    "ClientProxy",
    "ClusterConfig",
    "Directory",
    "DirectoryMaster",
    "DirectoryState",
    "ElGACluster",
    "ReactiveAutoscaler",
    "Streamer",
]
