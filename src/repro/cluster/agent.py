"""Agents: graph shards, vertex-centric compute, and elasticity (§3.4).

An Agent holds a shard of the dynamic graph in memory and runs the
vertex-centric model on it.  It operates as a state machine: it
continuously receives packets and either executes the algorithm on its
vertices, sends updates to other Agents, or receives updates.  Key
behaviors, each mapped to the paper:

* **Edge stores** — each edge is stored twice (the paper keeps both in-
  and out-edges): the *out-copy* of (u, v) lives with u's placement,
  the *in-copy* with v's.  For a non-split vertex both copies of all
  its edges land on a single Agent; a split (high-degree) vertex's
  copies are spread over its replica set.
* **Forwarding** — every incoming packet is checked against the current
  directory state; if this Agent is no longer (or never was) the
  correct destination, the packet is forwarded to the best known owner
  (§3, eventual consistency).
* **Future iterations** — messages for a future superstep are buffered
  until the computation catches up (§3.4).
* **Batching** — while a computation runs, edge changes are buffered
  and applied when the run ends (§3.4).
* **Replica synchronization** — between supersteps, split vertices
  reconcile: replicas send partial aggregates to the primary, which
  applies the update and pushes the new value (and global out-degree)
  back (§3.4, "updates that are sent to their replicas").
* **Elasticity** — on a directory update the Agent re-evaluates the
  owner of every resident edge and forwards misplaced ones; a leaving
  Agent drains completely, waits, then disconnects (§3.4.3).

Compute is vectorized per superstep (numpy over the shard's edge
arrays) and *simulated time* is charged per operation through the
calibrated :class:`~repro.cluster.costmodel.CostModel`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro import kernels
from repro.cluster.config import ClusterConfig
from repro.cluster.dataplane import RoundBuffers, combine_pairs
from repro.cluster.directory import DirectoryState
from repro.cluster.edgestore import (
    DirtyLog,
    EdgeStore,
    IdSet,
    ValueColumn,
    as_column,
    as_dirty_log,
    as_edge_store,
    as_idset,
)
from repro.cluster.metrics import AgentMetrics
from repro.cluster.recovery import (
    Checkpoint,
    RecoveryStore,
    copy_active,
    copy_store,
    copy_values,
)
from repro.net.message import Message, PacketType

if TYPE_CHECKING:  # pragma: no cover - avoids a package import cycle
    from repro.core.program import RunSpec
from repro.bench.counters import PerfCounters
from repro.net.sockets import PushSocket, ReqRepSocket
from repro.partition.cache import PlacementCache
from repro.partition.placer import EdgePlacer
from repro.hashing.ring import ConsistentHashRing
from repro.sim.entity import Entity
from repro.sketch.countmin import CountMinSketch


def _ids_vals(obj) -> Tuple[np.ndarray, np.ndarray]:
    """Normalize migrated vertex-state payloads — an (ids, values)
    array pair, or a legacy ``{vertex: value}`` dict — to arrays."""
    if isinstance(obj, tuple):
        ids, vals = obj
        return np.asarray(ids, dtype=np.int64), np.asarray(vals, dtype=np.float64)
    if not obj:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    ids = np.fromiter(obj.keys(), dtype=np.int64, count=len(obj))
    vals = np.fromiter(obj.values(), dtype=np.float64, count=len(obj))
    return ids, vals


def _ids_arr(obj) -> np.ndarray:
    """Normalize a migrated activation payload — an id array, or a
    legacy list/set of vertex ids — to an int64 array."""
    if isinstance(obj, np.ndarray):
        return obj.astype(np.int64, copy=False)
    obj = list(obj)
    if not obj:
        return np.empty(0, dtype=np.int64)
    return np.asarray(obj, dtype=np.int64)


class _VertexTable:
    """Vectorized per-run vertex state for one Agent's shard."""

    def __init__(self, ids: np.ndarray):
        n = len(ids)
        self.ids = ids  # sorted int64
        self.values = np.zeros(n)
        self.accum = np.zeros(n)
        self.got = np.zeros(n, dtype=bool)
        self.active = np.zeros(n, dtype=bool)
        # Local out-degree (this shard's out-copies) is immutable per
        # run; the *total* is what primaries establish by summing the
        # replicas' locals and push back with each replica round.
        self.out_deg_local = np.zeros(n)
        self.out_deg_total = np.zeros(n)
        self.split_k = np.ones(n, dtype=np.int64)
        self.is_primary = np.ones(n, dtype=bool)
        # Delta-message runs only: the per-edge value each vertex last
        # scattered (NaN until established — split rows learn their
        # global degree, and hence their baseline, in the init round).
        self.last_sent: Optional[np.ndarray] = None

    def pos(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Positions of (present) vertex ids in the table."""
        p = np.searchsorted(self.ids, vertex_ids)
        if len(vertex_ids) and (
            p.max(initial=0) >= len(self.ids) or not np.array_equal(self.ids[p], vertex_ids)
        ):
            missing = np.asarray(vertex_ids)[
                (p >= len(self.ids)) | (self.ids[np.minimum(p, len(self.ids) - 1)] != vertex_ids)
            ]
            raise KeyError(f"vertices not hosted here: {missing[:5]}...")
        return p

    def __len__(self) -> int:
        return len(self.ids)


class _RunState:
    """Per-run bookkeeping (one algorithm execution)."""

    def __init__(self, spec: "RunSpec"):
        self.spec = spec
        self.program = spec.program
        self.ctx = {"global_n": spec.global_n}
        self.table: Optional[_VertexTable] = None
        self.suspended = False
        # Delta runs: only the frontier applies/scatters, and (for
        # delta-message programs) scatter carries residuals.
        self.is_delta = getattr(spec, "strategy", "scratch") == "delta"
        self.delta_msgs = self.is_delta and getattr(spec.program, "delta_messages", False)
        # Pending dirty rows by store role, stashed at table build for
        # round-0 seed emission and baseline reconstruction.
        self.delta_pending: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        # Lazy routing (delta runs): per-table-row count of local edges
        # whose placement resolution has not been charged yet; paid the
        # first time the row scatters.  None for from-scratch runs.
        self.routing_uncharged: Optional[np.ndarray] = None
        # Residual baselines as they stood when this round began, i.e.
        # before this round's scatter advanced them.  A mid-run
        # checkpoint must capture *these*: a rollback loses the round's
        # in-flight messages, and the resume re-scatter can only
        # regenerate them if the restored baseline still precedes them
        # (absolute-message runs resend values and don't care).  Only
        # maintained while checkpointing is on.
        self.prescatter_last_sent: Optional[np.ndarray] = None
        # Edge routing caches (built with the table).
        self.out_src_pos = np.empty(0, np.int64)
        self.out_dst_raw = np.empty(0, np.int64)
        self.out_segments: List[Tuple[int, int, int]] = []
        self.in_src_pos = np.empty(0, np.int64)
        self.in_dst_raw = np.empty(0, np.int64)
        self.in_segments: List[Tuple[int, int, int]] = []
        # Split-vertex choreography.
        self.my_split: Dict[int, List[int]] = {}  # vertex -> replica list
        # Per-round state.
        self.round = -1
        self.step = 0
        self.phase = "delta_init" if self.is_delta else "init"
        self.outstanding_acks = 0
        self.expected_syncs: Dict[int, int] = {}
        # Replica-sync partials, buffered as parallel arrays per batch
        # (verts, partials, got, outdeg); ``_maybe_apply_split`` folds
        # a vertex's rows in canonical sorted order once all of them
        # are in, so arrival order never shapes the reduction.
        self.sync_buf: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self.expected_values: Set[int] = set()
        self.initial_work_done = False
        self.ready_sent = False
        # The exact AGENT_READY payload last sent, re-sent verbatim when
        # a lead election bumps the control term: the successor rebuilds
        # its READY buckets from these re-reports, and a verbatim copy
        # keeps the merged barrier stats bit-identical.
        self.last_ready: Optional[dict] = None
        self.round_stats: Dict[str, float] = {}
        # Split-vertex (old, new, active) per applied vertex; step
        # stats for them are computed once at READY time over the
        # vertex-sorted arrays — partial-arrival order must not leak
        # into float sums.
        self.split_applied: Dict[int, Tuple[float, float, bool]] = {}
        self.future_buffer: Dict[int, List[dict]] = {}  # step -> payloads
        # This round's incoming (dst, val) message batches.  They are
        # buffered, not applied on arrival: at the next ADVANCE the
        # batches are concatenated, sorted canonically, and folded into
        # the accumulators — so the aggregate is a pure function of the
        # message *multiset*, independent of delivery order.  With
        # coalescing on, each batch is eagerly pre-reduced to one
        # partial per destination vertex (level 1 of the canonical
        # reduction), so peak buffer memory is O(unique dst) rather
        # than O(pairs).
        self.pending_msgs: List[Tuple[np.ndarray, np.ndarray]] = []
        # Outgoing data-plane emissions of the current round, merged
        # into one struct-of-arrays packet per (destination, type) at
        # flush time (see Agent._flush_data_buffers).
        self.buffers = RoundBuffers()


class Agent(Entity):
    """One ElGA Agent (one per core in the paper's deployment).

    Created by :class:`~repro.cluster.cluster.ElGACluster`; joins the
    system by subscribing to its Directory and announcing itself, after
    which the directory broadcast brings it the global state it needs.
    """

    def __init__(
        self,
        network,
        config: ClusterConfig,
        agent_id: int,
        node: int,
        directory_address: int,
        weight: float = 1.0,
        recovery: Optional[RecoveryStore] = None,
        recover_from: Optional[int] = None,
        restore_checkpoint: Optional[Tuple[int, int]] = None,
        incarnation: int = 0,
        master_address: Optional[int] = None,
    ):
        super().__init__(network, f"agent-{agent_id}", config.seed)
        self.config = config
        self.agent_id = agent_id
        self.node = node
        # Capacity weight (§3.4.2 heterogeneous extension): scales this
        # agent's virtual-position count on every participant's ring.
        self.weight = float(weight)
        self.directory_address = directory_address
        # Control-plane fault tolerance: the highest directory term seen
        # (stale-term control traffic is fenced out below it), and the
        # master endpoint used to re-home when this agent's directory
        # dies (heartbeat ticks probe the endpoint and re-query).
        self.term = 0
        self.master_address = master_address
        self._master_req = ReqRepSocket(self)
        self._rehome_pending = False
        self._rehome_attempts = 0
        self.push = PushSocket(self)
        self.metrics = AgentMetrics()
        self.perf = PerfCounters()

        # Edge stores: out-copy (keyed by source) and in-copy (keyed by
        # destination) adjacency, as lexsorted parallel arrays — the
        # paper's "flat hash maps with vectors", but array-native so
        # batch ingest, migration scans, and table builds vectorize.
        self.out_store = EdgeStore()
        self.in_store = EdgeStore()

        # Algorithm state persisted across runs (locally persistent
        # model): program name -> id-indexed value/activation columns.
        self.persistent: Dict[str, ValueColumn] = {}
        self.persistent_active: Dict[str, IdSet] = {}
        # Delta-message programs additionally persist each vertex's
        # last-sent scatter value: a suspended delta run must resume
        # with the exact baseline, or unsent residuals are lost.
        self.persistent_scatter: Dict[str, ValueColumn] = {}
        # Dirty mutation rows applied since each program last consumed
        # them — the activation seed of a delta run.  Array batches of
        # (role, keys, others, actions) with per-program row watermarks;
        # ``finalize_run(persist=True)`` advances the finished program's
        # watermark and trims the prefix every known program consumed.
        self._dirty_log = DirtyLog()
        self._dirty_seen: Dict[str, int] = {}

        # Directory view.  ``placer`` is the persistent PlacementCache,
        # rebound to a fresh EdgePlacer on every adopted broadcast; its
        # memos survive broadcasts whose epoch token is unchanged.
        self.dstate: Optional[DirectoryState] = None
        self.ring: Optional[ConsistentHashRing] = None
        self.placer: Optional[PlacementCache] = None
        self._placement_cache = PlacementCache(counters=self.perf)
        self._pending_state: Optional[DirectoryState] = None

        # Dynamic-update plumbing.
        self.sketch_delta = CountMinSketch(
            config.sketch_width, config.sketch_depth, seed=config.seed
        )
        self._delta_count = 0
        self._reported_split: Set[int] = set()
        self._buffered_updates: List[dict] = []
        self._pre_state_buffer: List[Tuple[dict, bool]] = []
        self._pre_run_data: List[Tuple[str, dict, int]] = []

        # Elasticity.
        self.leaving = False
        self._migration_acks_pending = 0
        # Outbound migration ledger: token -> (role, keys, others) for
        # batches removed from our stores but not yet acked by the
        # receiving hop.  The WAL removal is logged only on ack: until
        # the rows are durably *somewhere else*, a replacement must
        # restore them from its checkpoint + WAL and re-ship under the
        # current directory (receiver application is idempotent).
        # Logging the removal at send time lost edges when this agent
        # crashed abruptly with the EDGE_MIGRATE still in flight.
        self._pending_migrations: Dict[int, Tuple[str, np.ndarray, np.ndarray]] = {}
        self._migration_seq = 0

        self.run: Optional[_RunState] = None

        # Serving plane (Goal 4): the barrier-published snapshot views
        # client queries read from.  ``_serving[prog]`` is
        # (ids, values, run_id, step) copied at READY time — the last
        # complete superstep state, never the mid-mutation live table —
        # and ``_serving_final[prog]`` is the (run_id, step) tag the
        # persistent fixpoint store answers under once a run finalizes.
        self._serving: Dict[str, Tuple[np.ndarray, np.ndarray, int, int]] = {}
        self._serving_final: Dict[str, Tuple[int, int]] = {}

        # Crash tolerance: durable side-channel, liveness, and fencing.
        # ``_data_inc`` stamps every data-plane message with the cluster
        # incarnation it belongs to; after a recovery, stragglers from
        # the previous incarnation are silently dropped.
        self._recovery_store = recovery if recovery is not None else RecoveryStore()
        self._recovery = self._recovery_store.slot(self.agent_id)
        # Batched-ack credits: (sender address, incarnation) -> packets
        # received since the last cumulative VERTEX_MSG_ACK flush.
        self._ack_credits: Dict[Tuple[int, int], int] = {}
        self._ack_flush_scheduled = False
        self.crashed = False
        self._heartbeat_pending = False
        self._recover_epoch = incarnation
        self._data_inc = incarnation
        # Tracing: when this agent last went quiet waiting on a barrier
        # (READY sent); the next ADVANCE closes the wait span.
        self._trace_wait_from: Optional[float] = None
        self.restored_from: Optional[dict] = None
        if recover_from is not None:
            self._restore_from_crash(recover_from, restore_checkpoint)

        self._subscribe_and_join()

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------

    def _subscribe_and_join(self) -> None:
        self.push.push(
            self.directory_address,
            PacketType.SUBSCRIBE,
            [
                PacketType.DIRECTORY_UPDATE,
                PacketType.SUPERSTEP_ADVANCE,
                PacketType.RUN_START,
                PacketType.RECOVER,
            ],
        )
        self.push.push(
            self.directory_address,
            PacketType.AGENT_JOIN,
            {
                "agent_id": self.agent_id,
                "address": self.address,
                "node": self.node,
                "weight": self.weight,
            },
        )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        # Term fence: control traffic from a deposed lead must not be
        # acted on (the control-plane analogue of incarnation fencing).
        term = message.term
        bumped = False
        if term is not None:
            if term < self.term:
                self.network.stats.stale_term_drops += 1
                return
            bumped = term > self.term
            self.term = term
        self._dispatch(message)
        if bumped:
            self._on_term_bump()

    def _dispatch(self, message: Message) -> None:
        ptype = message.ptype
        if ptype == PacketType.DIRECTORY_UPDATE:
            self._on_directory_update(message.payload)
        elif ptype == PacketType.EDGE_UPDATE:
            self._on_edge_update(message.payload, count_in_sketch=True)
        elif ptype == PacketType.EDGE_MIGRATE:
            self._on_edge_update(message.payload, count_in_sketch=False)
        elif ptype == PacketType.EDGE_MIGRATE_ACK:
            self._on_migrate_ack(message.payload)
        elif ptype == PacketType.EDGE_UPDATE_ACK:
            pass  # agents don't originate EDGE_UPDATEs
        elif ptype == PacketType.RUN_START:
            self._on_run_start(message.payload)
        elif ptype == PacketType.SUPERSTEP_ADVANCE:
            self._on_advance(message.payload)
        elif ptype == PacketType.VERTEX_MSG:
            self._on_vertex_msg(message.payload, message.src)
        elif ptype == PacketType.REPLICA_SYNC:
            self._on_replica_sync(message.payload, message.src)
        elif ptype == PacketType.REPLICA_VALUE:
            self._on_replica_value(message.payload, message.src)
        elif ptype == PacketType.VERTEX_MSG_ACK:
            self._on_data_ack(message.payload)
        elif ptype == PacketType.RECOVER:
            self._on_recover(message.payload)
        elif ptype == PacketType.CLIENT_QUERY:
            self._on_client_query(message)
        elif ptype == PacketType.DIRECTORY_ASSIGN:
            self._master_req.handle_reply(message)
        else:
            raise ValueError(f"Agent {self.agent_id} got unexpected {ptype.name}")

    def _on_term_bump(self) -> None:
        """A successor lead took over: re-drive anything it must see.

        The new lead reconstructs in-flight barrier state by
        re-collecting READYs; an agent waiting at a barrier re-sends its
        last report verbatim (stats must merge bit-identically).
        """
        run = self.run
        if self.crashed or run is None or run.spec.mode != "sync":
            return
        if run.ready_sent and run.last_ready is not None:
            self.push.push(
                self.directory_address,
                PacketType.AGENT_READY,
                dict(run.last_ready),
            )

    # ------------------------------------------------------------------
    # directory updates, migration, elasticity (§3.4.3)
    # ------------------------------------------------------------------

    def _on_directory_update(self, state: DirectoryState) -> None:
        # (term, version) fence: a freshly elected lead's first state
        # may carry a lower version than the dead lead's last broadcast
        # (sync loss), but its higher term must still win.
        if self.dstate is not None and state.fence <= self.dstate.fence:
            return
        if self.run is not None and not self.run.suspended:
            # Placement must stay stable while a superstep's messages are
            # in flight; adopt once the engine suspends or ends the run.
            self._pending_state = state
            return
        self._adopt_state(state)

    def _adopt_state(self, state: DirectoryState) -> None:
        if self.dstate is not None and state.weights != self.dstate.weights:
            # A re-weight landed (planner adoption or heterogeneous
            # join): the ring below shifts arcs, and _migrate_misplaced
            # re-homes whatever this agent no longer owns.
            self.metrics.rebalance_adoptions += 1
        self.dstate = state
        self._pending_state = None
        self.ring = ConsistentHashRing(
            state.agent_ids(),
            virtual_factor=self.config.virtual_factor,
            hash_fn=self.config.hash_fn,
            seed=self.config.seed,
            weights=state.weights,
        )
        self.placer = self._placement_cache.bind(
            state.epoch_token,
            EdgePlacer(
                self.ring,
                state.sketch,
                replication_threshold=self.config.replication_threshold,
                hash_fn=self.config.hash_fn,
                split_gate=state.split_vertices,
            ),
        )
        # Membership decides the leaving state: a just-joined agent may
        # see one last broadcast predating its join (it is simply not a
        # member *yet*), while a departing agent is never re-added.
        self.leaving = self.agent_id not in state.agents
        self._migrate_misplaced()
        # Degrees may have crossed the split threshold between sketch
        # flushes; every new global sketch warrants a fresh look at the
        # vertices resident here.
        self._recheck_splits()
        if self._pre_state_buffer:
            buffered, self._pre_state_buffer = self._pre_state_buffer, []
            for payload, count_in_sketch in buffered:
                self._on_edge_update(payload, count_in_sketch)

    def _recheck_splits(self) -> None:
        hosted = np.union1d(self.out_store.unique_keys, self.in_store.unique_keys)
        self._check_split_threshold(hosted)

    def _store_arrays(self, store) -> Tuple[np.ndarray, np.ndarray]:
        """(keys, others) arrays of an adjacency store, keys ascending
        and values ascending within each key.

        For an :class:`EdgeStore` this is a zero-copy view of the
        storage itself (the store keeps exactly this layout, versioned
        by its mutation counter); the dict path flattens legacy
        dict-of-sets stores, for tests and WAL-replay scaffolding."""
        if isinstance(store, EdgeStore):
            return store.arrays()
        if not store:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        keys = np.fromiter(store.keys(), dtype=np.int64, count=len(store))
        keys.sort()
        counts = np.fromiter(
            (len(store[int(k)]) for k in keys), dtype=np.int64, count=len(keys)
        )
        total = int(counts.sum())
        rep_keys = np.repeat(keys, counts)
        vals = np.fromiter(
            (v for k in keys for v in store[int(k)]), dtype=np.int64, count=total
        )
        # ``rep_keys`` is already key-sorted, so the stable (key, val)
        # lexsort only orders the values within each key's segment.
        order = np.lexsort((vals, rep_keys))
        return rep_keys, vals[order]

    def _migrate_misplaced(self) -> None:
        """Re-evaluate every resident edge's owner; forward the rest.

        The paper's straightforward approach: recompute the correct
        destination for all current edges, remove and forward any that
        no longer belong here (§3.4.3).
        """
        if self.placer is None or len(self.ring) == 0:
            return
        costs = self.config.costs
        total_edges = self.n_out_edges + self.n_in_edges
        self.charge(costs.elga_migrate_check * total_edges)
        for role, store in (("out", self.out_store), ("in", self.in_store)):
            keys, others = self._store_arrays(store)
            if len(keys) == 0:
                continue
            if role == "out":
                owners = self.placer.owner_of_edges(keys, others)
                us, vs = keys, others
            else:
                owners = self.placer.owner_of_edges(keys, others)
                us, vs = others, keys
            wrong = owners != self.agent_id
            if not wrong.any():
                continue
            moving_owner = owners[wrong]
            moving_u = us[wrong].copy()
            moving_v = vs[wrong].copy()
            wrong_k = keys[wrong].copy()
            wrong_o = others[wrong].copy()
            self.charge(costs.elga_migrate_op * int(wrong.sum()))
            self.metrics.edges_migrated += int(wrong.sum())
            # Remove locally, one vectorized pass over the store.  The
            # WAL removal is NOT logged here: it enters the ledger per
            # destination batch below and hits the log only when that
            # batch's hop ack arrives (see _pending_migrations).
            store.remove_pairs(wrong_k, wrong_o)
            # Group by destination agent and ship, with vertex state.
            order = np.argsort(moving_owner, kind="stable")
            moving_owner = moving_owner[order]
            moving_u = moving_u[order]
            moving_v = moving_v[order]
            bounds = np.flatnonzero(np.diff(moving_owner)) + 1
            starts = np.concatenate([[0], bounds])
            ends = np.concatenate([bounds, [len(moving_owner)]])
            for s, e in zip(starts, ends):
                target = int(moving_owner[s])
                # Ship algorithm state only for the endpoints this agent
                # *owns* (the copy's keyed vertex): it is a replica of
                # those and its persisted values are fresh.  Values for
                # the opposite endpoints may be stale leftovers from an
                # earlier placement epoch and must not travel.
                owned = np.unique(moving_u[s:e] if role == "out" else moving_v[s:e])
                # Vectorized state join: the owned ids' rows of each
                # program's columns, shipped as (ids, values) arrays.
                values = {
                    prog: as_column(col).select(owned)
                    for prog, col in self.persistent.items()
                }
                active = {
                    prog: owned[as_idset(aset).isin(owned)]
                    for prog, aset in self.persistent_active.items()
                }
                scatter = {
                    prog: as_column(col).select(owned)
                    for prog, col in self.persistent_scatter.items()
                }
                token = self._new_migration_token()
                batch_keys = moving_u[s:e] if role == "out" else moving_v[s:e]
                batch_others = moving_v[s:e] if role == "out" else moving_u[s:e]
                self._pending_migrations[token] = (role, batch_keys, batch_others)
                payload = {
                    "role": role,
                    "actions": np.ones(e - s, dtype=np.int8),
                    "us": moving_u[s:e],
                    "vs": moving_v[s:e],
                    "reply_to": self.address,
                    "token": token,
                    "values": values,
                    "active": active,
                    "scatter": scatter,
                }
                self.push.push(
                    self._agent_address(target), PacketType.EDGE_MIGRATE, payload
                )
                self._migration_acks_pending += 1
        self._prune_stores()
        self._prune_departed_state()
        self._maybe_finish_leaving()

    def _prune_departed_state(self) -> None:
        """Drop algorithm state for vertices that migrated away.

        Keeps per-agent memory at O((n + m)/P) (Goal 2) and prevents
        stale values from ever being re-shipped or re-collected.
        """
        hosted = np.union1d(self.out_store.unique_keys, self.in_store.unique_keys)
        for name, col in list(self.persistent.items()):
            col = self.persistent[name] = as_column(col)
            col.restrict(hosted)
        for name, aset in list(self.persistent_active.items()):
            aset = self.persistent_active[name] = as_idset(aset)
            aset.restrict(hosted)
        for name, col in list(self.persistent_scatter.items()):
            col = self.persistent_scatter[name] = as_column(col)
            col.restrict(hosted)

    def _prune_stores(self) -> None:
        for store in (self.out_store, self.in_store):
            if isinstance(store, EdgeStore):
                continue  # never keeps empty adjacency keys
            empty = [k for k, s in store.items() if not s]
            for k in empty:
                del store[k]

    def _new_migration_token(self) -> int:
        """A ledger token unique across agents (hop acks echo foreign
        tokens back; two agents' seq counters must not collide).
        Negative, so it can never be mistaken for an update token."""
        self._migration_seq += 1
        return -(self.agent_id * 1_048_576 + self._migration_seq + 1)

    def _resolve_migration(self, token) -> None:
        """The batch is durably elsewhere (or re-routed): log the
        deferred removal.  Unknown tokens — foreign (a hop ack for rows
        that merely passed through us) or already resolved — are
        no-ops."""
        entry = self._pending_migrations.pop(token, None) if token is not None else None
        if entry is not None:
            role, keys, others = entry
            self._wal_log(
                role,
                (keys, others, np.full(len(keys), -1, dtype=np.int64)),
                sketched=False,
            )

    def _on_migrate_ack(self, payload: dict) -> None:
        self._resolve_migration(payload.get("token"))
        self._migration_acks_pending -= 1
        self._maybe_finish_leaving()

    def on_reliable_abandoned(self, message) -> None:
        """The fabric gave up on a reliable send of ours: the
        destination detached for good.  For an EDGE_MIGRATE that means
        a departed peer never received the edges — re-process the
        payload under the current directory (which excludes the
        leaver), re-routing the rows and acking ourselves so the hop
        ledger drains instead of deadlocking ``consistent()``.  The
        ledger entry resolves *now*, before the re-process: the
        original removal must precede any local re-insert in the WAL,
        or a replacement would replay them out of order."""
        if self.crashed or message.ptype != PacketType.EDGE_MIGRATE:
            return
        self.perf.add("migrations_bounced")
        self._resolve_migration(message.payload.get("token"))
        self._on_edge_update(dict(message.payload), count_in_sketch=False)

    def _maybe_finish_leaving(self) -> None:
        if (
            self.leaving
            and self._migration_acks_pending == 0
            and self.n_out_edges == 0
            and self.n_in_edges == 0
        ):
            # "Only when it has no edges and has waited a period of time
            # will it disconnect."
            self.kernel.schedule(1e-3, self._final_detach)

    def _final_detach(self) -> None:
        if (
            self.leaving
            and self._migration_acks_pending == 0
            and self.n_out_edges == 0
            and self.n_in_edges == 0
            and self.network.is_attached(self.address)
        ):
            self.push.push(self.directory_address, PacketType.SUBSCRIBE, {"remove": True})
            self.detach()

    def initiate_leave(self) -> None:
        """Graceful departure (the paper's SIGINT handler, §3.4.3).

        The agent only signals the directory; the next directory update
        excludes it, at which point normal migration drains every edge,
        and the agent disconnects after a grace period.
        """
        self.push.push(
            self.directory_address, PacketType.AGENT_LEAVE, {"agent_id": self.agent_id}
        )

    def _agent_address(self, agent_id: int) -> int:
        try:
            return self.dstate.agents[agent_id]
        except (KeyError, AttributeError):
            raise LookupError(f"agent {agent_id} not in directory state") from None

    def _lookup_supplement(self) -> float:
        """Full-minus-cached placement rate: what a delta run's lazily
        routed edge still owes when its source first scatters (the
        cached probe part is charged per send by _scatter_direction)."""
        costs = self.config.costs
        width, depth = self.config.sketch_width, self.config.sketch_depth
        ring_positions = max(1, len(self.ring) * self.config.virtual_factor)
        return costs.placement_lookup_cost(
            width, depth, ring_positions
        ) - costs.placement_lookup_cost(width, depth, ring_positions, cached=True)

    def _charge_placement_lookups(self) -> None:
        """Charge the last cached lookup batch honestly: misses at the
        full sketch+ring rate, hits at the reduced memo-probe rate (see
        ``CostModel.elga_lookup_cached``)."""
        costs = self.config.costs
        width, depth = self.config.sketch_width, self.config.sketch_depth
        ring_positions = max(1, len(self.ring) * self.config.virtual_factor)
        cache = self._placement_cache
        self.charge(
            cache.last_misses
            * costs.placement_lookup_cost(width, depth, ring_positions)
            + cache.last_hits
            * costs.placement_lookup_cost(width, depth, ring_positions, cached=True)
        )

    # ------------------------------------------------------------------
    # dynamic updates (ingest, forwarding, sketch maintenance)
    # ------------------------------------------------------------------

    def _on_edge_update(self, payload: dict, count_in_sketch: bool) -> None:
        if self.placer is None:
            # A just-created agent can receive edges (e.g. migration
            # from peers that already saw its join) before its own first
            # directory broadcast lands; hold them until it does.
            self._pre_state_buffer.append((payload, count_in_sketch))
            return
        if self.run is not None and not self.run.suspended and count_in_sketch:
            # "While a batch is running, the graph does not change: any
            # edge changes are buffered."
            self._buffered_updates.append(payload)
            return
        self._apply_edge_update(payload, count_in_sketch)

    def _apply_edge_update(self, payload: dict, count_in_sketch: bool) -> None:
        costs = self.config.costs
        role = payload["role"]
        actions = np.asarray(payload["actions"], dtype=np.int8)
        us = np.asarray(payload["us"], dtype=np.int64)
        vs = np.asarray(payload["vs"], dtype=np.int64)
        own = us if role == "out" else vs
        other = vs if role == "out" else us
        n = len(own)
        if n == 0:
            return
        if not count_in_sketch:
            # Migration acks are hop-by-hop: acknowledge receipt to the
            # sending hop now; if rows forward onward, *we* become the
            # hop owner awaiting the next ack.
            reply_to = payload.get("reply_to")
            if reply_to is not None and reply_to >= 0:
                self.push.push(
                    reply_to,
                    PacketType.EDGE_MIGRATE_ACK,
                    {"token": payload.get("token")},
                )
        owners = self.placer.owner_of_edges(own, other)
        self._charge_placement_lookups()
        mine = owners == self.agent_id
        # Forward misplaced changes to the best known destination.
        if (~mine).any():
            self.metrics.updates_forwarded += int((~mine).sum())
            fwd_owner = owners[~mine]
            order = np.argsort(fwd_owner, kind="stable")
            idx = np.nonzero(~mine)[0][order]
            fwd_owner = fwd_owner[order]
            bounds = np.flatnonzero(np.diff(fwd_owner)) + 1
            for s, e in zip(
                np.concatenate([[0], bounds]), np.concatenate([bounds, [len(idx)]])
            ):
                rows = idx[s:e]
                fwd = {
                    "role": role,
                    "actions": actions[rows],
                    "us": us[rows],
                    "vs": vs[rows],
                    # Updates carry the original requester (the final
                    # applier acks it); migrations ack hop-by-hop, so we
                    # take over as the hop awaiting the next ack.
                    "reply_to": payload["reply_to"] if count_in_sketch else self.address,
                    "token": payload["token"],
                }
                for extra in ("values", "active", "scatter"):
                    if extra in payload:
                        fwd[extra] = payload[extra]
                if count_in_sketch:
                    ptype = PacketType.EDGE_UPDATE
                else:
                    ptype = PacketType.EDGE_MIGRATE
                    self._migration_acks_pending += 1
                self.push.push(self._agent_address(int(fwd_owner[s])), ptype, fwd)

        # Apply local changes (one vectorized batch over the store).
        store = self.out_store if role == "out" else self.in_store
        rows = np.nonzero(mine)[0]
        app_k, app_o, app_a = self._apply_rows(store, own[rows], other[rows], actions[rows])
        n_applied = len(app_k)
        inserts = app_k[app_a > 0]
        removes = app_k[app_a < 0]
        self.charge(costs.elga_ingest_op * max(n_applied, 1))
        self.metrics.updates_applied += n_applied

        if count_in_sketch and n_applied:
            # Streaming mutations dirty their locally-keyed endpoints:
            # these rows seed the activation frontier of the next delta
            # run (and survive crashes — they are re-derived from the
            # WAL's sketched suffix at restore).
            self._dirty_log.append_batch(role, app_k, app_o, app_a)
            if len(inserts):
                self.sketch_delta.add(inserts)
            if len(removes):
                self.sketch_delta.remove(removes)
            self._delta_count += n_applied
            self._check_split_threshold(np.unique(inserts))
            if self._delta_count >= self.config.sketch_flush_every:
                self.flush_sketch()

        # Migrated vertex state rides along with the edges — but only
        # the final owner keeps it (a forwarding hop that merged values
        # for edges passing through would hoard stale state).
        wal_values: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None
        wal_active: Optional[Dict[str, np.ndarray]] = None
        wal_scatter: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None
        if len(rows):
            kept = np.unique(own[rows])
            for prog, incoming in payload.get("values", {}).items():
                ids, vals = _ids_vals(incoming)
                m = np.isin(ids, kept)
                if m.any():
                    col = self.persistent[prog] = as_column(self.persistent.get(prog))
                    col.set_many(ids[m], vals[m])
                    wal_values = wal_values or {}
                    wal_values[prog] = (ids[m], vals[m])
            for prog, actives in payload.get("active", {}).items():
                ids = _ids_arr(actives)
                ids = ids[np.isin(ids, kept)]
                if len(ids):
                    aset = self.persistent_active[prog] = as_idset(
                        self.persistent_active.get(prog)
                    )
                    aset.update(ids)
                    wal_active = wal_active or {}
                    wal_active[prog] = ids
            for prog, incoming in payload.get("scatter", {}).items():
                ids, vals = _ids_vals(incoming)
                m = np.isin(ids, kept)
                if m.any():
                    col = self.persistent_scatter[prog] = as_column(
                        self.persistent_scatter.get(prog)
                    )
                    col.set_many(ids[m], vals[m])
                    wal_scatter = wal_scatter or {}
                    wal_scatter[prog] = (ids[m], vals[m])

        # Durability: every applied mutation — and any migrated-in
        # vertex state — hits the write-ahead log before this handler
        # returns, so a replacement can reconstruct the shard exactly.
        self._wal_log(
            role,
            (app_k, app_o, app_a),
            sketched=count_in_sketch,
            values=wal_values,
            active=wal_active,
            scatter=wal_scatter,
        )

        # Update acks go end-to-end to the original requester, counting
        # edges terminally handled here (forwarded rows are acked by
        # their final applier).  Migration acks were already sent
        # hop-by-hop above.
        if count_in_sketch:
            reply_to = payload.get("reply_to")
            if reply_to is not None and reply_to >= 0 and len(rows):
                self.push.push(
                    reply_to,
                    PacketType.EDGE_UPDATE_ACK,
                    {"token": payload.get("token"), "count": int(len(rows))},
                )

    def _apply_rows(
        self,
        store,
        keys: np.ndarray,
        vals: np.ndarray,
        actions: np.ndarray,
    ):
        """Apply one batch of locally-owned edge mutations to ``store``.

        With an :class:`EdgeStore` the whole batch applies array-native
        (dedup, membership, and merge are all vectorized) and the
        *effective* rows come back as ``(keys, others, actions)``
        arrays in deterministic (inserts-then-removes, key, value)
        order — duplicates and no-ops drop out exactly as a row-by-row
        walk would.  A batch that both inserts and removes the same
        pair is the one case routed through a strict-order sequential
        path.  The legacy dict-of-sets path (tests, replay scaffolding)
        returns a list of ``(key, other, action)`` tuples with the same
        semantics.
        """
        if isinstance(store, EdgeStore):
            self.perf.add("ingest_rows_vectorized", len(keys))
            return store.apply(keys, vals, actions)
        if len(keys) == 0:
            return []
        ins = actions > 0
        if ins.any() and not ins.all():
            inserted = set(zip(keys[ins].tolist(), vals[ins].tolist()))
            removed = set(zip(keys[~ins].tolist(), vals[~ins].tolist()))
            if inserted & removed:
                return self._apply_rows_sequential(store, keys, vals, actions)
        self.perf.add("ingest_rows_vectorized", len(keys))
        applied = self._apply_row_group(store, keys[ins], vals[ins], insert=True)
        applied += self._apply_row_group(store, keys[~ins], vals[~ins], insert=False)
        return applied

    def _apply_row_group(
        self, store: Dict[int, Set[int]], keys: np.ndarray, vals: np.ndarray, insert: bool
    ) -> List[Tuple[int, int, int]]:
        applied: List[Tuple[int, int, int]] = []
        if len(keys) == 0:
            return applied
        order = np.lexsort((vals, keys))
        k = keys[order]
        v = vals[order]
        bounds = np.flatnonzero(np.diff(k)) + 1
        starts = np.concatenate([[0], bounds])
        ends = np.concatenate([bounds, [len(k)]])
        for s, e in zip(starts, ends):
            key = int(k[s])
            group = set(map(int, v[s:e]))
            bucket = store.get(key)
            if insert:
                if bucket is None:
                    bucket = store[key] = set()
                fresh = group - bucket
                bucket |= fresh
                applied.extend((key, val, 1) for val in sorted(fresh))
            else:
                if bucket is None:
                    continue
                gone = group & bucket
                if gone:
                    bucket -= gone
                    if not bucket:
                        del store[key]
                    applied.extend((key, val, -1) for val in sorted(gone))
        return applied

    def _apply_rows_sequential(
        self,
        store: Dict[int, Set[int]],
        keys: np.ndarray,
        vals: np.ndarray,
        actions: np.ndarray,
    ) -> List[Tuple[int, int, int]]:
        """Row-by-row fallback preserving strict batch order (needed
        only when a batch inserts *and* removes the same pair)."""
        applied: List[Tuple[int, int, int]] = []
        for i in range(len(keys)):
            key = int(keys[i])
            val = int(vals[i])
            bucket = store.get(key)
            if actions[i] > 0:  # insert
                if bucket is None:
                    bucket = store[key] = set()
                if val not in bucket:
                    bucket.add(val)
                    applied.append((key, val, 1))
            else:  # remove
                if bucket is not None and val in bucket:
                    bucket.remove(val)
                    applied.append((key, val, -1))
                    if not bucket:
                        del store[key]
        return applied

    def _check_split_threshold(self, vertices: np.ndarray) -> None:
        """Report vertices whose estimated degree crossed the split
        threshold so the directory can registry-broadcast them."""
        if len(vertices) == 0 or self.dstate is None:
            return
        est = self.dstate.sketch.query(vertices) + self.sketch_delta.query(vertices)
        crossing = vertices[est >= self.config.replication_threshold]
        fresh = [
            int(v)
            for v in crossing
            if int(v) not in self._reported_split
            and int(v) not in self.dstate.split_vertices
        ]
        if fresh:
            self._reported_split.update(fresh)
            self.push.push(
                self.directory_address,
                PacketType.SPLIT_REPORT,
                np.asarray(fresh, dtype=np.int64),
            )

    def report_metrics(self) -> None:
        """Push the current metric snapshot to this agent's Directory.

        §3.4.3: ElGA's autoscaling API collects Agent metrics (graph
        change rates, client query rates, superstep times) through the
        Directories.  The cluster orchestrator (or an autoscaler
        driver) triggers reports at its sampling cadence.
        """
        self._sync_placement_metrics()
        self.push.push(
            self.directory_address,
            PacketType.METRIC_REPORT,
            {"agent_id": self.agent_id, "metrics": self.metrics.snapshot()},
        )

    def _sync_placement_metrics(self) -> None:
        """Mirror the placement-cache perf counters into the metric
        snapshot the autoscaler path consumes."""
        counts = self.perf.counts
        self.metrics.placement_cache_hits = int(counts.get("placement_cache_hits", 0))
        self.metrics.placement_cache_misses = int(
            counts.get("placement_cache_misses", 0)
        )
        self.metrics.placement_epoch_invalidations = int(
            counts.get("placement_epoch_invalidations", 0)
        )
        self.metrics.transport_retries = int(counts.get("transport_retries", 0))
        self.metrics.transport_dups_suppressed = int(
            counts.get("transport_dups_suppressed", 0)
        )

    def flush_sketch(self) -> None:
        """Push accumulated degree deltas to the directory."""
        if self.sketch_delta.is_empty():
            return
        self.push.push(
            self.directory_address, PacketType.SKETCH_DELTA, self.sketch_delta.copy()
        )
        self.sketch_delta.clear()
        self._delta_count = 0
        # The flushed delta is now the directory's; checkpoint so a
        # crash-restore cannot replay the WAL's sketched rows and
        # re-report degrees the directory already counted.
        self._recovery_store.snapshot_agent(self)
        self.metrics.checkpoints_taken += 1

    # ------------------------------------------------------------------
    # client queries (low-latency path)
    # ------------------------------------------------------------------

    def _on_client_query(self, message: Message) -> None:
        self.charge(self.config.costs.elga_query_op)
        self.metrics.queries_served += 1
        payload = message.payload
        vertex = int(payload["vertex"])
        prog = payload.get("program")
        value, run_id, step = self._serving_lookup(prog, vertex)
        reply = {
            "vertex": vertex,
            "value": value,
            "token": payload.get("token"),
            "run_id": run_id,
            "step": step,
            "inc": self._data_inc,
            "agent_id": self.agent_id,
        }
        self.push.push(message.src, PacketType.CLIENT_REPLY, reply)

    def _serving_lookup(self, prog: Optional[str], vertex: int):
        """Resolve one query against a *stable* snapshot.

        Never reads the live ``run.table``: between an ADVANCE and the
        next READY that table is mid-mutation, and two replicas of a
        split vertex could answer from different rounds (a torn read).
        Resolution order:

        1. The barrier-published serving view — the complete state of
           the last round this agent reported READY for, tagged with
           its (run_id, step).
        2. The persistent fixpoint store, tagged with the finalize-time
           (run_id, step) of the run that wrote it (``(-1, -1)`` for
           values restored by a replacement agent, whose proxies accept
           them by value equality).
        """
        if prog is None:
            return None, -1, -1
        view = self._serving.get(prog)
        if view is not None:
            ids, values, run_id, step = view
            idx = np.searchsorted(ids, vertex)
            if idx < len(ids) and ids[idx] == vertex:
                self.metrics.queries_from_snapshot += 1
                return float(values[idx]), run_id, step
        # Not hosted in the live view (or no view): the persistent
        # fixpoint store.  Split vertices are always in every replica's
        # view while a run is live, so this fallback never mixes
        # per-replica rounds.
        run_id, step = self._serving_final.get(prog, (-1, -1))
        value = self.persistent.get(prog, {}).get(vertex)
        return value, run_id, step

    def _publish_serving_view(self, run: "_RunState") -> None:
        """Copy the completed round's table into the serving view.

        Called exactly once per barrier round, at READY time, when the
        local state for (run.step) is complete: all vertex messages are
        folded and every split-vertex replica value is applied.  Pure
        local mutation — no charge(), no messages — so enabling the
        serving plane perturbs neither simulated time nor delivery
        interleavings of existing runs.
        """
        table = run.table
        if table is None or len(table.ids) == 0:
            return
        self._serving[run.program.name] = (
            table.ids,
            table.values.copy(),
            run.spec.run_id,
            run.step,
        )
        self.metrics.serving_views_published += 1

    # ------------------------------------------------------------------
    # run lifecycle: table construction
    # ------------------------------------------------------------------

    def _hosted_vertex_ids(self) -> np.ndarray:
        ids = np.union1d(self.out_store.unique_keys, self.in_store.unique_keys)
        # A replica of a split vertex participates in replica sync even
        # if the second-level hash assigned it no edges.
        if self.dstate is not None and self.dstate.split_vertices:
            split = np.fromiter(
                self.dstate.split_vertices,
                dtype=np.int64,
                count=len(self.dstate.split_vertices),
            )
            split.sort()
            k, reps = self.placer.replica_matrix(split)
            self.perf.add("hosted_split_vectorized_rows", int(split.size))
            mine = (k > 1) & (reps == self.agent_id).any(axis=1)
            ids = np.union1d(ids, split[mine])
        return ids.astype(np.int64, copy=False)

    def _build_table(self, run: _RunState, resume: bool) -> None:
        costs = self.config.costs
        spec = run.spec
        program = run.program
        ids = self._hosted_vertex_ids()
        table = _VertexTable(ids)
        run.table = table
        self.charge(costs.elga_vertex_op * len(ids))

        # Local out-degree (sum over out-copies held here).
        out_keys, out_others = self._store_arrays(self.out_store)
        if len(ids):
            local_outdeg = np.zeros(len(ids))
            if len(out_keys):
                np.add.at(local_outdeg, table.pos(out_keys), 1.0)
            table.out_deg_local = local_outdeg
            table.out_deg_total = local_outdeg.copy()

        # Split bookkeeping: batch the replica-set resolution for every
        # hosted split vertex; only the (few) hubs loop below.
        run.my_split = {}
        if len(ids) and self.dstate.split_vertices:
            split = np.fromiter(
                self.dstate.split_vertices,
                dtype=np.int64,
                count=len(self.dstate.split_vertices),
            )
            split.sort()
            present = split[np.isin(split, ids, assume_unique=True)]
            if len(present):
                ks, reps = self.placer.replica_matrix(present)
                pos = np.searchsorted(ids, present)
                for v, k, row, p in zip(present, ks, reps, pos):
                    if k <= 1:
                        continue
                    replicas = [int(a) for a in row[:k]]
                    if self.agent_id not in replicas:
                        continue
                    run.my_split[int(v)] = replicas
                    table.split_k[p] = k
                    table.is_primary[p] = replicas[0] == self.agent_id

        # Values: persisted (incremental/resume) or fresh.  Persisted
        # lookups are a searchsorted join against the sorted key array,
        # not a per-vertex dict probe.
        persisted = as_column(self.persistent.get(program.name))
        if len(ids):
            if (spec.incremental or resume) and persisted:
                pvals, found = persisted.lookup(ids)
                table.values = np.where(found, pvals, np.nan)
                fresh = np.isnan(table.values)
                if fresh.any():
                    table.values[fresh] = program.initial_value(ids[fresh], run.ctx)
            else:
                table.values = program.initial_value(ids, run.ctx)
            table.accum = np.full(len(ids), program.identity)
            table.got = np.zeros(len(ids), dtype=bool)

        # Delta runs need their pending dirty rows and last-sent
        # baselines *before* activation: the frontier is seeded both
        # from the mutations and from any residual still owed against
        # those baselines.
        if run.is_delta and not resume:
            run.delta_pending = self._dirty_log.suffix(
                self._dirty_seen.get(program.name, 0)
            )
        if run.delta_msgs and len(ids):
            self._init_last_sent(run, table, resume)

        # Activation.
        if len(ids):
            if resume:
                act = as_idset(self.persistent_active.get(program.name))
                if act:
                    table.active = act.isin(ids)
                else:
                    table.active = np.zeros(len(ids), dtype=bool)
            elif spec.incremental:
                activate = getattr(spec, "activate", None)
                if run.is_delta:
                    table.active = self._delta_activation(run, table, activate)
                elif activate is not None and len(activate):
                    table.active = np.isin(ids, np.asarray(activate, dtype=np.int64))
                else:
                    # Dense warm start: previous fixpoint, everyone
                    # active (the safe fallback when frontier tracking
                    # is invalid — reshape, |V| change, ...).
                    table.active = np.ones(len(ids), dtype=bool)
            else:
                table.active = program.initially_active(ids, table.values, run.ctx)

        # Edge routing caches (destination agent per edge copy).  A
        # from-scratch run resolves (and is charged for) every edge's
        # owner up front; a delta run defers the charge per source
        # vertex until it first scatters, so an update batch whose
        # frontier never grows past a corner of the graph never pays
        # O(m) placement work (the resolution itself is bookkeeping —
        # cost accrues in _scatter_positions on first touch).
        if len(out_keys):
            dest = self.placer.owner_of_edges(out_others, out_keys)
            if not run.is_delta:
                self._charge_placement_lookups()
            run.out_src_pos, run.out_dst_raw, run.out_segments = self._routing(
                table, out_keys, out_others, dest
            )
        else:
            run.out_src_pos = np.empty(0, np.int64)
            run.out_dst_raw = np.empty(0, np.int64)
            run.out_segments = []
        if program.needs_in_and_out:
            in_keys, in_others = self._store_arrays(self.in_store)
            if len(in_keys):
                # In-copy (u, v) is stored keyed by v; the reverse
                # message (v -> u) goes to the holder of the out-copy.
                dest = self.placer.owner_of_edges(in_others, in_keys)
                if not run.is_delta:
                    self._charge_placement_lookups()
                run.in_src_pos, run.in_dst_raw, run.in_segments = self._routing(
                    table, in_keys, in_others, dest
                )
            else:
                run.in_src_pos = np.empty(0, np.int64)
                run.in_dst_raw = np.empty(0, np.int64)
                run.in_segments = []
        if run.is_delta and len(table):
            counts = np.bincount(run.out_src_pos, minlength=len(table))
            if program.needs_in_and_out and len(run.in_src_pos):
                counts = counts + np.bincount(run.in_src_pos, minlength=len(table))
            run.routing_uncharged = counts.astype(np.float64)

    def _routing(
        self,
        table: _VertexTable,
        src_keys: np.ndarray,
        dst_raw: np.ndarray,
        dest_agents: np.ndarray,
    ):
        """Sort edges by destination agent; return (src positions in
        table, raw destination vertex ids, segments)."""
        order = np.argsort(dest_agents, kind="stable")
        src_pos = table.pos(src_keys[order])
        dst = dst_raw[order]
        dest_sorted = dest_agents[order]
        bounds = np.flatnonzero(np.diff(dest_sorted)) + 1
        starts = np.concatenate([[0], bounds]).astype(np.int64)
        ends = np.concatenate([bounds, [len(dest_sorted)]]).astype(np.int64)
        segments = [
            (int(dest_sorted[s]), int(s), int(e)) for s, e in zip(starts, ends)
        ]
        return src_pos, dst, segments

    # ------------------------------------------------------------------
    # delta runs: frontier seeding, residual baselines, structural seeds
    # ------------------------------------------------------------------

    def _delta_activation(
        self, run: _RunState, table: _VertexTable, activate
    ) -> np.ndarray:
        """Frontier seeding for a delta run.

        The program decides which locally-keyed endpoints of the pending
        dirty rows start active; any explicitly requested activation is
        unioned in.  Vertices still holding unsent residual mass above
        the program's threshold (sub-threshold deltas accumulated over
        earlier delta runs) are flushed into the frontier too — that
        caps the steady-state error of a long update stream instead of
        letting held residuals pile up silently.
        """
        program = run.program
        seeds = []
        for role in ("out", "in"):
            if role not in run.delta_pending:
                continue
            keys, others, actions = run.delta_pending[role]
            aff = program.affected(role, keys, others, actions, run.ctx)
            if aff is not None and len(aff):
                seeds.append(np.asarray(aff, dtype=np.int64))
        if activate is not None and len(activate):
            seeds.append(np.asarray(activate, dtype=np.int64))
        if seeds:
            active = np.isin(table.ids, np.unique(np.concatenate(seeds)))
        else:
            active = np.zeros(len(table.ids), dtype=bool)
        if run.delta_msgs and table.last_sent is not None:
            flush = program.delta_flush_mask(
                table.values, table.out_deg_total, table.last_sent, run.ctx
            )
            if flush is not None:
                # NaN baselines (split rows awaiting replica init)
                # compare False and stay out of the flush.
                active |= flush & (table.split_k == 1)
        return active

    def _init_last_sent(self, run: _RunState, table: _VertexTable, resume: bool) -> None:
        """Establish per-vertex last-sent baselines for residual scatter.

        A clean vertex's baseline is the steady-state per-edge value of
        its previous fixpoint; a dirty vertex's is what it actually sent
        under its *old* out-degree (reconstructed by subtracting the
        pending rows' net degree change).  Both reconstructions are
        overridden by an exactly-persisted baseline from an earlier
        delta run, when one exists: it records what the vertex truly
        last sent, including any sub-threshold residual it was still
        holding, so unsent mass stays owed across runs instead of being
        silently forgiven.  Split rows stay NaN until the init replica
        round establishes their global degree.  On resume the persisted
        baselines are joined back in — a suspended run's unsent
        residuals must survive the suspension exactly.
        """
        program = run.program
        n = len(table.ids)
        table.last_sent = np.full(n, np.nan)
        normal = table.split_k == 1
        if resume:
            sstore = as_column(self.persistent_scatter.get(program.name))
            if sstore:
                svals, found = sstore.lookup(table.ids)
                table.last_sent = np.where(found, svals, np.nan)
            return
        base = program.scatter_values(table.values, np.maximum(table.out_deg_total, 1.0))
        table.last_sent[normal] = np.where(
            table.out_deg_total[normal] > 0, base[normal], 0.0
        )
        pend = getattr(run, "delta_pending", {})
        if "out" in pend:
            keys, _, actions = pend["out"]
            uniq, inv = np.unique(keys, return_inverse=True)
            net = np.zeros(len(uniq))
            np.add.at(net, inv, actions.astype(np.float64))
            idx = np.searchsorted(table.ids, uniq)
            hosted = (idx < n) & (table.ids[np.minimum(idx, n - 1)] == uniq)
            pos = idx[hosted]
            net = net[hosted]
            keep = normal[pos]
            pos, net = pos[keep], net[keep]
            outdeg_old = table.out_deg_total[pos] - net
            old_base = program.scatter_values(
                table.values[pos], np.maximum(outdeg_old, 1.0)
            )
            table.last_sent[pos] = np.where(outdeg_old > 0, old_base, 0.0)
        sstore = as_column(self.persistent_scatter.get(program.name))
        if sstore:
            svals, sfound = sstore.lookup(table.ids)
            found = sfound & normal
            table.last_sent = np.where(found, svals, table.last_sent)

    def _emit_delta_seeds(self, run: _RunState) -> None:
        """Round-0 structural correction messages of a delta run.

        Each pending dirty out-row (u, v, ±1) contributes or withdraws
        u's previously-scattered per-edge value along that edge, so
        receivers start the incremental run holding exactly the residual
        the mutation batch introduced.  Values come from the persisted
        fixpoint under the *old* out-degree; a same-edge insert+delete
        pair cancels exactly.
        """
        if not run.delta_msgs:
            return
        pend = getattr(run, "delta_pending", {})
        if "out" not in pend:
            return
        keys, others, actions = pend["out"]
        program = run.program
        costs = self.config.costs
        persisted = as_column(self.persistent.get(program.name))
        uniq, inv = np.unique(keys, return_inverse=True)
        vals_u, _ = persisted.lookup(uniq, default=0.0)
        outdeg_now = self.out_store.degrees(uniq).astype(np.float64)
        net = np.zeros(len(uniq))
        np.add.at(net, inv, actions.astype(np.float64))
        outdeg_old = (outdeg_now - net)[inv]
        seed = program.delta_seed_values(
            "out", keys, others, actions.astype(np.float64), vals_u[inv], outdeg_old, run.ctx
        )
        if seed is None:
            return
        # The scatter discipline's contract is "receivers hold exactly
        # what u last sent per edge"; where that baseline is persisted
        # from an earlier delta run it overrides the program's
        # old-degree reconstruction, exactly as _init_last_sent does —
        # seed and baseline must agree or residual accounting drifts.
        sstore = as_column(self.persistent_scatter.get(program.name))
        if sstore:
            base_u = sstore.lookup(uniq, default=np.nan)[0][inv]
            have = ~np.isnan(base_u)
            seed = np.where(have, actions * base_u, seed)
        live = seed != 0.0
        if not live.any():
            return
        dst = others[live]
        src = keys[live]
        val = seed[live]
        owners = self.placer.owner_of_edges(dst, src)
        self._charge_placement_lookups()
        order = np.argsort(owners, kind="stable")
        owners, dst, val = owners[order], dst[order], val[order]
        bounds = np.flatnonzero(np.diff(owners)) + 1
        for s, e in zip(
            np.concatenate([[0], bounds]), np.concatenate([bounds, [len(owners)]])
        ):
            count = int(e - s)
            self.charge(count * costs.elga_edge_op)
            self.metrics.edges_processed += count
            self.perf.add("delta_seed_pairs", count)
            payload = {
                "step": run.step,
                "round": run.round,
                "dst": dst[s:e],
                "val": val[s:e],
            }
            self._emit_data(int(owners[s]), PacketType.VERTEX_MSG, payload)

    # ------------------------------------------------------------------
    # run lifecycle: rounds
    # ------------------------------------------------------------------

    def _on_run_start(self, spec: "RunSpec") -> None:
        if self.run is not None and self.run.spec.run_id == spec.run_id:
            return  # duplicated RUN_START broadcast; the run is live
        run = _RunState(spec)
        self.run = run
        tracer = self.network.tracer
        trace_from = self.available_at() if tracer is not None else 0.0
        self._build_table(run, resume=False)
        run.round = 0
        run.step = 0
        if spec.mode == "async":
            self._async_initial_scatter()
            return
        self._start_heartbeats()
        self._split_round_begin()
        self._snapshot_prescatter(run)
        self._start_scatter_wave()
        self._emit_delta_seeds(run)
        run.initial_work_done = True
        # A delayed RUN_START can trail peers' round-0 data (they saw
        # the broadcast first and scattered already); pick it up now.
        self._drain_pre_run_data(run)
        self._replay_future(run.step)
        if tracer is not None:
            tracer.complete(
                self.name,
                f"superstep:{run.phase}",
                "compute",
                trace_from,
                self.available_at(),
                {
                    "round": 0,
                    "step": 0,
                    "phase": run.phase,
                    "run_id": spec.run_id,
                    "frontier": int(run.table.active.sum()) if run.table is not None else 0,
                },
            )
        self._check_ready()

    def _drain_pre_run_data(self, run: _RunState) -> None:
        """File data messages that raced ahead of the run bootstrap
        under their rounds; ``_replay_future`` drains them in order."""
        if not self._pre_run_data:
            return
        for kind, data_payload, src in self._pre_run_data:
            run.future_buffer.setdefault(data_payload["round"], []).append(
                {"kind": kind, "payload": data_payload, "src": src}
            )
        self._pre_run_data = []

    def _on_advance(self, payload: dict) -> None:
        run = self.run
        if run is None and payload.get("phase") == "resume" and "spec" in payload:
            # This agent joined during the suspension; bootstrap the run
            # from the spec the resume broadcast carries.
            run = self.run = _RunState(payload["spec"])
            run.suspended = True
        if run is None or payload.get("run_id") != run.spec.run_id:
            return
        tracer = self.network.tracer
        if tracer is not None and self._trace_wait_from is not None:
            # The barrier released: close the wait span opened when this
            # agent reported READY (tagged with the round now starting).
            tracer.complete(
                self.name,
                "barrier_wait",
                "barrier",
                self._trace_wait_from,
                self.now,
                {
                    "round": int(payload.get("round", -1)),
                    "step": int(payload.get("step", -1)),
                    "phase": payload.get("phase"),
                },
            )
            self._trace_wait_from = None
        self._drain_pre_run_data(run)
        phase = payload["phase"]
        if phase == "halt":
            self.finalize_run(persist=True)
            return
        if run.suspended and phase != "resume":
            # Parked (scale drain or crash rollback): only a resume
            # re-opens the run.  A straggling pre-crash step ADVANCE
            # (reliable-transport retransmit) must not reanimate it.
            return
        if run.initial_work_done and int(payload["round"]) <= run.round:
            return  # duplicated or stale ADVANCE; this round already ran
        run.round = int(payload["round"])
        run.step = int(payload["step"])
        run.phase = phase
        run.ready_sent = False
        run.initial_work_done = False
        run.round_stats = {}
        run.split_applied = {}
        trace_from = self.available_at() if tracer is not None else 0.0
        if phase == "resume":
            run.suspended = False
            self._start_heartbeats()
            self._build_table(run, resume=True)
            self._split_round_begin()
            self._snapshot_prescatter(run)
            self._start_scatter_wave()
        elif phase in ("step", "delta_step"):
            # Fold the previous round's buffered messages into the
            # accumulators (canonical order) before applying them.
            self._flush_pending_msgs()
            self._apply_phase()
            # Split partials must be snapshotted before scatter refills
            # the accumulators with this round's local messages.
            self._split_round_begin()
            self._snapshot_prescatter(run)
            self._scatter_fresh_actives()
        elif phase == "apply_only":
            self._flush_pending_msgs()
            self._apply_phase()
            self._split_round_begin()
        else:
            raise ValueError(f"unknown advance phase {phase!r}")
        run.initial_work_done = True
        self._replay_future(run.step)
        if tracer is not None:
            tracer.complete(
                self.name,
                f"superstep:{phase}",
                "compute",
                trace_from,
                self.available_at(),
                {
                    "round": run.round,
                    "step": run.step,
                    "phase": phase,
                    "run_id": run.spec.run_id,
                    "frontier": int(run.table.active.sum()) if run.table is not None else 0,
                },
            )
        self._check_ready()

    @staticmethod
    def _fold_stat(stats: Dict[str, float], key: str, value: float) -> None:
        """Fold one stat contribution: ``max_``-prefixed keys reduce by
        max (mirroring the directory's cross-agent merge), others sum."""
        if key.startswith("max_"):
            stats[key] = max(stats.get(key, value), value)
        else:
            stats[key] = stats.get(key, 0.0) + value

    def _apply_phase(self) -> None:
        """Apply the previous superstep's aggregates (non-split rows).

        Delta runs only touch the frontier — rows that received a
        message or were active; everything else keeps its fixpoint value
        and costs nothing, which is where the incremental speedup over a
        full recompute comes from."""
        run = self.run
        table = run.table
        costs = self.config.costs
        if len(table) == 0:
            return
        normal = table.split_k == 1
        mask = normal & (table.got | table.active) if run.is_delta else normal
        if mask.any():
            old = table.values[mask]
            # Programs that need per-row identity (e.g. personalized
            # PageRank's teleport vector) read it from the context.
            run.ctx["_vertex_ids"] = table.ids[mask]
            applier = run.program.delta_apply if run.is_delta else run.program.apply
            new, active = applier(old, table.accum[mask], table.got[mask], run.ctx)
            self.charge(costs.elga_vertex_op * int(mask.sum()))
            table.values[mask] = new
            table.active[mask] = active
            statser = run.program.delta_stats if run.is_delta else run.program.step_stats
            for key, value in statser(old, new, active).items():
                self._fold_stat(run.round_stats, key, value)
        table.accum[normal] = run.program.identity
        table.got[normal] = False
        # Split rows are applied by their primaries once partials arrive.

    def _split_round_begin(self) -> None:
        """Start the replica choreography for this round (§3.4).

        Non-primary replicas send their partial aggregates (plus local
        out-degree) to the primary; primaries register how many partials
        to expect.  Applies — and the value push back to replicas —
        happen in :meth:`_maybe_apply_split` as partials arrive.
        """
        run = self.run
        table = run.table
        if not run.my_split:
            return
        # Snapshot every split row's partial *now*, before this round's
        # scatter starts refilling the accumulators.  One batched pos()
        # probe and array gather for the whole split set.
        verts = np.fromiter(sorted(run.my_split), dtype=np.int64, count=len(run.my_split))
        pos = table.pos(verts)
        partials = table.accum[pos].copy()
        got = table.got[pos].copy()
        outdeg = table.out_deg_local[pos].copy()
        table.accum[pos] = run.program.identity
        table.got[pos] = False
        self.perf.add("split_round_rows_vectorized", len(verts))
        primaries = np.fromiter(
            (run.my_split[int(v)][0] for v in verts), dtype=np.int64, count=len(verts)
        )
        run.expected_syncs = {}
        mine = primaries == self.agent_id
        if mine.any():
            for v in verts[mine]:
                run.expected_syncs[int(v)] = len(run.my_split[int(v)]) - 1
            run.sync_buf.append((verts[mine], partials[mine], got[mine], outdeg[mine]))
        rest = np.flatnonzero(~mine)
        if len(rest):
            # One REPLICA_SYNC emission per primary, rows vert-sorted.
            order = rest[np.argsort(primaries[rest], kind="stable")]
            p_sorted = primaries[order]
            bounds = np.flatnonzero(np.diff(p_sorted)) + 1
            for s, e in zip(
                np.concatenate([[0], bounds]), np.concatenate([bounds, [len(order)]])
            ):
                idx = order[s:e]
                payload = {
                    "step": run.step,
                    "round": run.round,
                    "verts": verts[idx],
                    "partials": partials[idx],
                    "got": got[idx],
                    "outdeg": outdeg[idx],
                }
                self._emit_data(int(p_sorted[s]), PacketType.REPLICA_SYNC, payload)
                self.metrics.replica_syncs += 1
            run.expected_values.update(int(v) for v in verts[rest])
        # A primary with zero remote partials outstanding can apply now.
        self._maybe_apply_split()

    def _on_replica_sync(self, payload: dict, src: int) -> None:
        if self._stale_data(payload):
            return
        run = self.run
        if run is None:
            self._pre_run_data.append(("sync", payload, src))
            self._ack_data(src, payload)
            return
        if payload["round"] != run.round or not run.initial_work_done:
            run.future_buffer.setdefault(payload["round"], []).append(
                {"kind": "sync", "payload": payload, "src": src}
            )
            self._ack_data(src, payload)
            return
        self._ingest_replica_sync(payload)
        self._ack_data(src, payload)
        self._check_ready()

    def _ingest_replica_sync(self, payload: dict) -> None:
        run = self.run
        verts = np.asarray(payload["verts"], dtype=np.int64)
        run.sync_buf.append(
            (
                verts,
                np.asarray(payload["partials"], dtype=np.float64),
                np.asarray(payload["got"], dtype=bool),
                np.asarray(payload["outdeg"], dtype=np.float64),
            )
        )
        unique, counts = np.unique(verts, return_counts=True)
        for v, c in zip(unique, counts):
            v = int(v)
            run.expected_syncs[v] = run.expected_syncs.get(v, 0) - int(c)
        self._maybe_apply_split()

    def _maybe_apply_split(self) -> None:
        """Primary side: apply any split vertex whose partials are all in,
        then push the new value (and degree total) to the replicas."""
        run = self.run
        table = run.table
        ready = sorted(v for v, remaining in run.expected_syncs.items() if remaining <= 0)
        if not ready:
            return
        program = run.program
        for v in ready:
            del run.expected_syncs[v]
        rverts = np.asarray(ready, dtype=np.int64)
        # Pull the ready vertices' rows out of the sync buffers; rows
        # for still-pending vertices stay buffered.
        if run.sync_buf:
            allv = np.concatenate([b[0] for b in run.sync_buf])
            allp = np.concatenate([b[1] for b in run.sync_buf])
            allg = np.concatenate([b[2] for b in run.sync_buf])
            allo = np.concatenate([b[3] for b in run.sync_buf])
        else:  # pragma: no cover - a ready vertex always has its own row
            allv = np.empty(0, dtype=np.int64)
            allp = np.empty(0)
            allg = np.empty(0, dtype=bool)
            allo = np.empty(0)
        take = np.isin(allv, rverts)
        keep = ~take
        run.sync_buf = (
            [(allv[keep], allp[keep], allg[keep], allo[keep])] if keep.any() else []
        )
        sv, sp, sg, so = allv[take], allp[take], allg[take], allo[take]
        # Combine purely from the snapshots (the primary's own was
        # added at round begin); this round's incoming messages sit in
        # the pending buffer and must not leak in.  Partials fold in
        # (vertex, partial, got, outdeg)-sorted order — replica-arrival
        # order is fabric timing and must not shape the float reduction.
        order = np.lexsort((so, sg, sp, sv))
        sv, sp, sg, so = sv[order], sp[order], sg[order], so[order]
        group = np.searchsorted(rverts, sv)
        agg = np.full(len(rverts), program.identity, dtype=np.float64)
        program.ufunc.at(agg, group, sp)
        got = np.zeros(len(rverts), dtype=bool)
        np.logical_or.at(got, group, sg)
        outdeg = np.zeros(len(rverts))
        np.add.at(outdeg, group, so)
        self.perf.add("split_apply_rows_vectorized", len(rverts))
        tpos = table.pos(rverts)
        table.out_deg_total[tpos] = outdeg
        if run.delta_msgs and table.last_sent is not None:
            # A split row's residual baseline waits for its global
            # degree; establish it now from the pre-apply value.
            nan = np.isnan(table.last_sent[tpos])
            if nan.any():
                p = tpos[nan]
                base = program.scatter_values(
                    table.values[p], np.maximum(table.out_deg_total[p], 1.0)
                )
                table.last_sent[p] = np.where(table.out_deg_total[p] > 0, base, 0.0)
        if run.phase in ("init", "delta_init", "resume"):
            # Initial rounds only establish degree totals; values and
            # activation were set at table build.
            new_vals = table.values[tpos].copy()
            act = table.active[tpos].copy()
        else:
            old = table.values[tpos].copy()
            run.ctx["_vertex_ids"] = rverts
            applier = program.delta_apply if run.is_delta else program.apply
            new_vals, act = applier(old, agg, got, run.ctx)
            table.values[tpos] = new_vals
            table.active[tpos] = act
            # Stash (old, new, active) per vertex; _check_ready computes
            # the split step stats once over the vertex-sorted arrays,
            # not in completion order.
            for i, v in enumerate(ready):
                run.split_applied[v] = (float(old[i]), float(new_vals[i]), bool(act[i]))
        # Do NOT reset accum/got here: they already hold this round's
        # incoming messages (the snapshot was taken at round begin).
        by_replica: Dict[int, List[int]] = {}
        for i, v in enumerate(ready):
            for replica in run.my_split[v][1:]:
                by_replica.setdefault(replica, []).append(i)
        for replica in sorted(by_replica):
            idx = np.asarray(by_replica[replica], dtype=np.int64)
            payload = {
                "step": run.step,
                "round": run.round,
                "verts": rverts[idx],
                "values": np.asarray(new_vals)[idx],
                "active": np.asarray(act, dtype=bool)[idx],
                "outdeg": outdeg[idx],
            }
            self._emit_data(replica, PacketType.REPLICA_VALUE, payload)
        if run.phase != "apply_only":
            self._scatter_positions(tpos)

    def _on_replica_value(self, payload: dict, src: int) -> None:
        if self._stale_data(payload):
            return
        run = self.run
        if run is None:
            self._pre_run_data.append(("value", payload, src))
            self._ack_data(src, payload)
            return
        if payload["round"] != run.round or not run.initial_work_done:
            run.future_buffer.setdefault(payload["round"], []).append(
                {"kind": "value", "payload": payload, "src": src}
            )
            self._ack_data(src, payload)
            return
        self._ingest_replica_value(payload)
        self._ack_data(src, payload)
        self._check_ready()

    def _ingest_replica_value(self, payload: dict) -> None:
        run = self.run
        table = run.table
        pos = table.pos(np.asarray(payload["verts"], dtype=np.int64))
        if run.delta_msgs and table.last_sent is not None:
            # Replica-side baseline: first push carries the vertex's
            # pre-run value and global degree — the fixpoint baseline.
            nan = np.isnan(table.last_sent[pos])
            if nan.any():
                od = np.asarray(payload["outdeg"], dtype=np.float64)[nan]
                base = run.program.scatter_values(
                    table.values[pos[nan]], np.maximum(od, 1.0)
                )
                table.last_sent[pos[nan]] = np.where(od > 0, base, 0.0)
        table.values[pos] = payload["values"]
        table.active[pos] = payload["active"]
        table.out_deg_total[pos] = payload["outdeg"]
        run.expected_values.difference_update(int(v) for v in payload["verts"])
        if run.phase != "apply_only":
            self._scatter_positions(pos)

    # ------------------------------------------------------------------
    # scatter
    # ------------------------------------------------------------------

    def _start_scatter_wave(self) -> None:
        """Initial scatter of a round: all active non-split vertices plus
        active split *primaries-with-known-degree*… split vertices always
        wait for the replica round, so only non-split rows go now."""
        table = self.run.table
        if len(table) == 0:
            return
        mask = table.active & (table.split_k == 1)
        self._scatter_positions(np.flatnonzero(mask))

    def _scatter_fresh_actives(self) -> None:
        table = self.run.table
        if len(table) == 0:
            return
        mask = table.active & (table.split_k == 1)
        self._scatter_positions(np.flatnonzero(mask))

    def _scatter_positions(self, positions: np.ndarray) -> None:
        """Send this round's messages for the given table rows."""
        run = self.run
        table = run.table
        if len(positions) == 0:
            return
        program = run.program
        costs = self.config.costs
        active_rows = positions[table.active[positions]]
        if len(active_rows) == 0:
            return
        send_mask = np.zeros(len(table), dtype=bool)
        send_mask[active_rows] = True
        values = program.scatter_values(table.values, table.out_deg_total)
        if run.delta_msgs:
            # Residual scatter: emit only the change since the last
            # send, then advance the baseline.  Rows whose steady value
            # did not move send nothing at all — the wire traffic of a
            # delta round tracks true residuals, not frontier size.
            baseline = np.where(np.isnan(table.last_sent), values, table.last_sent)
            deltas = values - baseline
            send_mask &= deltas != 0.0
            table.last_sent[send_mask] = values[send_mask]
            values = deltas
        if run.routing_uncharged is not None:
            # Deferred placement resolution: rows scattering for the
            # first time this run pay the full (uncached) lookup rate
            # for their local edges; _scatter_direction adds the cached
            # probe every send, so only the difference is owed here.
            rows = np.flatnonzero(send_mask)
            owed = float(run.routing_uncharged[rows].sum())
            if owed:
                self.charge(owed * self._lookup_supplement())
                run.routing_uncharged[rows] = 0.0
        self._scatter_direction(
            send_mask, values, run.out_src_pos, run.out_dst_raw, run.out_segments
        )
        if program.needs_in_and_out:
            self._scatter_direction(
                send_mask, values, run.in_src_pos, run.in_dst_raw, run.in_segments
            )
        self.charge(costs.elga_vertex_op * len(active_rows))

    def _scatter_direction(self, send_mask, values, src_pos, dst_raw, segments) -> None:
        run = self.run
        costs = self.config.costs
        ring_positions = max(1, len(self.ring) * self.config.virtual_factor)
        # Routing was resolved (and charged) once at table build; the
        # per-superstep re-resolution is a placement-cache probe and is
        # charged at the reduced cached rate.
        lookup = costs.placement_lookup_cost(
            self.config.sketch_width,
            self.config.sketch_depth,
            ring_positions,
            cached=True,
        )
        for agent_id, start, end in segments:
            seg_src = src_pos[start:end]
            mask = send_mask[seg_src]
            count = int(mask.sum())
            if count == 0:
                continue
            # Per-edge work: hash-map access + lookup + buffer write.
            self.charge(count * (costs.elga_edge_op + lookup))
            self.metrics.edges_processed += count
            self.perf.add("dataplane_pairs_emitted", count)
            payload = {
                "step": run.step,
                "round": run.round,
                "dst": dst_raw[start:end][mask],
                "val": values[seg_src[mask]],
            }
            self._emit_data(agent_id, PacketType.VERTEX_MSG, payload)

    # ------------------------------------------------------------------
    # message aggregation
    # ------------------------------------------------------------------

    def _on_vertex_msg(self, payload: dict, src: int) -> None:
        if self._stale_data(payload):
            return
        run = self.run
        if run is None:
            # Joined mid-suspension: the run bootstrap rides on the
            # resume broadcast, which may arrive after peers' data.
            self._pre_run_data.append(("msg", payload, src))
            self._ack_data(src, payload)
            return
        if run.spec.mode == "async":
            self._async_on_msg(payload)
            return
        if payload["round"] != run.round or not run.initial_work_done:
            # "If it is for an iteration in the future, the packet is
            # stored until the computation can catch up."
            run.future_buffer.setdefault(payload["round"], []).append(
                {"kind": "msg", "payload": payload, "src": src}
            )
            self._ack_data(src, payload)
            return
        self._aggregate_remote(payload)
        self._ack_data(src, payload)
        self._check_ready()

    def _aggregate_local(self, payload: dict) -> None:
        self._aggregate(payload)

    def _aggregate_remote(self, payload: dict) -> None:
        self.charge(self.config.costs.elga_msg_op)
        self._aggregate(payload)

    def _aggregate(self, payload: dict) -> None:
        """Buffer one message batch for this round.

        Without coalescing, the raw batch is kept and
        :meth:`_flush_pending_msgs` sorts the round's full (dst, val)
        multiset canonically before reducing it — the seed behaviour.

        With coalescing, a batch is exactly one sender's full round
        emission, and level 1 of the canonical reduction runs *now*:
        the batch folds to one partial per destination vertex (in
        (dst, val)-sorted order, via ``combine_pairs``), so peak
        buffer memory is O(unique dst) instead of O(pairs).  Combined
        packets (combining on, cluster-wide config) already carry
        exactly that reduction, computed sender-side on identical
        contents in identical order — bit-identical by construction.
        Either way the accumulator floats are the same whether the
        fabric delivered in order, out of order, or via chaos-delayed
        retries.
        """
        run = self.run
        dst = np.asarray(payload["dst"], dtype=np.int64)
        val = np.asarray(payload["val"], dtype=np.float64)
        self.charge(self.config.costs.elga_vertex_op * len(dst))
        if self.config.coalescing and not self.config.combining and len(dst):
            dst, val = combine_pairs(dst, val, run.program.ufunc, run.program.identity)
        run.pending_msgs.append((dst, val))

    def _flush_pending_msgs(self) -> None:
        """Fold the buffered round's batches into the accumulators in
        canonical (dst, value) order — a deterministic reduction of the
        buffered multiset (raw pairs in the legacy path, per-sender
        partials under coalescing)."""
        run = self.run
        if not run.pending_msgs:
            return
        table = run.table
        batches, run.pending_msgs = run.pending_msgs, []
        dst = np.concatenate([b[0] for b in batches])
        val = np.concatenate([b[1] for b in batches])
        if run.is_delta and len(dst):
            # Structural seeds may target vertices the mutation batch
            # left unhosted here (a deletion removed their last edge);
            # they have no row to apply to and no influence to retract.
            hosted = np.isin(dst, table.ids)
            if not hosted.all():
                dst, val = dst[hosted], val[hosted]
        if not len(dst):
            return
        kernels.fold_pairs(
            table.accum, table.got, table.ids, dst, val, run.program.ufunc
        )

    def _replay_future(self, step: int) -> None:
        run = self.run
        buffered = run.future_buffer.pop(run.round, [])
        for item in buffered:
            if item["kind"] == "msg":
                self._aggregate(item["payload"])
            elif item["kind"] == "sync":
                self._ingest_replica_sync(item["payload"])
            else:
                self._ingest_replica_value(item["payload"])

    # ------------------------------------------------------------------
    # barrier (Figure 2)
    # ------------------------------------------------------------------

    def _emit_data(self, agent_id: int, ptype: PacketType, payload: dict) -> None:
        """Route one data-plane emission: held in the round buffers
        while coalescing (one struct-of-arrays packet per destination
        and type ships at flush time), or sent immediately in the
        legacy packet-per-emission mode."""
        if self.config.coalescing:
            self.run.buffers.add(agent_id, ptype, payload)
        elif ptype == PacketType.VERTEX_MSG and agent_id == self.agent_id:
            self._aggregate_local(payload)
        else:
            self._send_data(agent_id, ptype, payload)

    def _flush_data_buffers(self) -> None:
        """Ship this round's coalesced packets, gated on choreography.

        REPLICA_SYNC flushes unconditionally (it *unblocks* primaries).
        REPLICA_VALUE waits until this primary has applied every split
        vertex (``expected_syncs`` empty) so one packet per replica
        carries the whole round.  VERTEX_MSG additionally waits for
        ``expected_values``: only then can no further scatter happen
        this round, making each packet's contents exactly "everything
        this sender produced for that destination this round" — the
        canonical batch boundary the two-level reduction relies on.
        The gates introduce no deadlock: sync/value choreography never
        depends on VERTEX_MSG delivery within a round.
        """
        run = self.run
        if run is None or not self.config.coalescing or run.buffers.empty:
            return
        tracer = self.network.tracer
        if tracer is None:
            self._flush_data_buffers_inner(run)
            return
        trace_from = self.available_at()
        sent_before = self.metrics.messages_sent
        self._flush_data_buffers_inner(run)
        shipped = self.metrics.messages_sent - sent_before
        if shipped:
            tracer.complete(
                self.name,
                "flush",
                "comms",
                trace_from,
                self.available_at(),
                {"round": run.round, "step": run.step, "packets": shipped},
            )

    def _flush_data_buffers_inner(self, run) -> None:
        buffers = run.buffers
        for agent_id, n_emits, payload in buffers.drain_replica(
            PacketType.REPLICA_SYNC, run.step, run.round
        ):
            self.metrics.packets_coalesced += n_emits - 1
            self._send_data(agent_id, PacketType.REPLICA_SYNC, payload)
        if run.expected_syncs:
            return
        for agent_id, n_emits, payload in buffers.drain_replica(
            PacketType.REPLICA_VALUE, run.step, run.round
        ):
            self.metrics.packets_coalesced += n_emits - 1
            self._send_data(agent_id, PacketType.REPLICA_VALUE, payload)
        if run.expected_values or not buffers.pending(PacketType.VERTEX_MSG):
            return
        costs = self.config.costs
        program = run.program
        for agent_id, n_emits, payload in buffers.drain_vertex_msgs(run.step, run.round):
            self.metrics.packets_coalesced += n_emits - 1
            if self.config.combining:
                pairs_in = len(payload["dst"])
                payload["dst"], payload["val"] = combine_pairs(
                    payload["dst"], payload["val"], program.ufunc, program.identity
                )
                self.charge(costs.combine_cost(pairs_in))
                self.perf.add("combine_pairs_in", pairs_in)
                self.perf.add("combine_pairs_out", len(payload["dst"]))
                self.metrics.pairs_combined += pairs_in - len(payload["dst"])
            if agent_id == self.agent_id:
                self._aggregate_local(payload)
            else:
                self._send_data(agent_id, PacketType.VERTEX_MSG, payload)

    def _send_data(self, agent_id: int, ptype: PacketType, payload: dict) -> None:
        payload["inc"] = self._data_inc
        self.run.outstanding_acks += 1
        self.metrics.messages_sent += 1
        self.push.push(self._agent_address(agent_id), ptype, payload)

    def _stale_data(self, payload: dict) -> bool:
        """Fencing: data stamped with a pre-recovery incarnation is a
        straggler from a rolled-back superstep — drop it silently (its
        sender's ack accounting was reset by the rollback)."""
        return int(payload.get("inc", 0)) < self._data_inc

    def _ack_data(self, src: int, payload: Optional[dict] = None) -> None:
        """Acknowledge one data-plane packet: immediately, or — with an
        ack-batch window — as a credit that a single cumulative
        VERTEX_MSG_ACK per (sender, incarnation) covers shortly."""
        inc = int(payload.get("inc", 0)) if payload else self._data_inc
        window = self.config.ack_batch_window
        if window <= 0:
            self.push.push(src, PacketType.VERTEX_MSG_ACK, {"inc": inc, "count": 1})
            return
        key = (src, inc)
        self._ack_credits[key] = self._ack_credits.get(key, 0) + 1
        if not self._ack_flush_scheduled:
            self._ack_flush_scheduled = True
            self.kernel.schedule(window, self._flush_acks)

    def _flush_acks(self) -> None:
        self._ack_flush_scheduled = False
        if self.crashed or not self._ack_credits:
            return
        credits, self._ack_credits = self._ack_credits, {}
        for key in sorted(credits):
            src, inc = key
            count = credits[key]
            if count > 1:
                self.metrics.acks_batched += count - 1
                self.perf.add("acks_batched", count - 1)
            self.push.push(src, PacketType.VERTEX_MSG_ACK, {"inc": inc, "count": count})

    def _on_data_ack(self, payload) -> None:
        run = self.run
        if run is None:
            return
        if isinstance(payload, dict) and int(payload.get("inc", 0)) != self._data_inc:
            return  # ack for a send the rollback already wrote off
        count = int(payload.get("count", 1)) if isinstance(payload, dict) else 1
        run.outstanding_acks -= count
        self._check_ready()

    def _check_ready(self) -> None:
        run = self.run
        if run is None or run.ready_sent or not run.initial_work_done:
            return
        if run.spec.mode == "async":
            return
        self._flush_data_buffers()
        if run.outstanding_acks > 0 or run.expected_syncs or run.expected_values:
            return
        run.ready_sent = True
        self.metrics.supersteps += 1
        stats = dict(run.round_stats)
        if run.split_applied:
            sverts = sorted(run.split_applied)
            old = np.array([run.split_applied[v][0] for v in sverts])
            new = np.array([run.split_applied[v][1] for v in sverts])
            act = np.array([run.split_applied[v][2] for v in sverts], dtype=bool)
            statser = run.program.delta_stats if run.is_delta else run.program.step_stats
            for key, value in statser(old, new, act).items():
                self._fold_stat(stats, key, value)
        if run.table is not None:
            # Area under the frontier curve: how many locally-hosted
            # vertices end this round active (collapses fast in a
            # converging delta run; ~|V| every round in a scratch run).
            self.metrics.frontier_size += int(run.table.active.sum())
        # The local state for this round is complete right here (all
        # messages folded, all replica values applied): publish it as
        # the snapshot client queries read until the next READY.
        self._publish_serving_view(run)
        run.last_ready = {
            "agent_id": self.agent_id,
            "round": run.round,
            "step": run.step,
            "stats": stats,
        }
        self.push.push(
            self.directory_address,
            PacketType.AGENT_READY,
            dict(run.last_ready),
        )
        if self.network.tracer is not None:
            # Quiet from the moment the READY can depart until the next
            # ADVANCE arrives: that interval is the barrier-wait span.
            self._trace_wait_from = self.available_at()
        if (
            run.phase in ("step", "delta_step")
            and self.config.checkpoint_every > 0
            and run.step >= 1
            and run.step % self.config.checkpoint_every == 0
        ):
            self._take_value_checkpoint(run)
        if run.phase == "apply_only":
            self._persist_and_suspend()

    def _persist_and_suspend(self) -> None:
        """Park the run so directory updates / migration can proceed."""
        run = self.run
        self._persist_table()
        run.table = None
        run.suspended = True
        if self._pending_state is not None:
            self._adopt_state(self._pending_state)

    def _persist_table(self) -> None:
        run = self.run
        table = run.table
        if table is None:
            return
        name = run.program.name
        store = self.persistent[name] = as_column(self.persistent.get(name))
        act = self.persistent_active[name] = as_idset(self.persistent_active.get(name))
        store.set_many(table.ids, table.values)
        act.assign(table.ids, table.active)
        if run.delta_msgs and table.last_sent is not None:
            sstore = self.persistent_scatter[name] = as_column(
                self.persistent_scatter.get(name)
            )
            known = ~np.isnan(table.last_sent)
            sstore.set_many(table.ids[known], table.last_sent[known])
        elif getattr(run.program, "delta_messages", False):
            # A full (scratch or dense) run re-converges every vertex:
            # baselines recorded by an earlier delta run no longer
            # describe what receivers hold, and the steady-state
            # reconstruction from the fresh fixpoint is the truth.
            self.persistent_scatter.pop(run.program.name, None)

    def _trim_dirty_log(self) -> None:
        """Drop the dirty-row prefix every known program has consumed.

        Safe even with programs this agent has never seen: the engine
        runs a program's first execution from scratch, and its finalize
        sets that program's watermark to the end of the log."""
        if not self._dirty_seen:
            return
        cut = min(self._dirty_seen.values())
        if cut <= 0:
            return
        self._dirty_log.trim(cut)
        self._dirty_seen = {name: mark - cut for name, mark in self._dirty_seen.items()}

    def finalize_run(self, persist: bool) -> None:
        run = self.run
        if run is None:
            return
        if persist and run.table is not None:
            self._persist_table()
        # The run is over: the persistent store (just persisted, or
        # already persisted by a suspend) is the serving truth, tagged
        # with where the run ended.  Drop the live view so queries and
        # later ingest both read one place.
        self._serving.pop(run.program.name, None)
        if persist:
            self._serving_final[run.program.name] = (run.spec.run_id, run.step)
            # The finished program has now folded every dirty row logged
            # so far into its fixpoint; advance its watermark *before*
            # the halt checkpoint so a restore cannot re-seed an
            # already-converged run.
            self._dirty_seen[run.program.name] = len(self._dirty_log)
            self._trim_dirty_log()
            # Halt checkpoint: the post-run state becomes the durable
            # restore base (and truncates the WAL).
            self._recovery_store.snapshot_agent(self)
            self.metrics.checkpoints_taken += 1
        self.run = None
        if self._pending_state is not None:
            self._adopt_state(self._pending_state)
        buffered, self._buffered_updates = self._buffered_updates, []
        for payload in buffered:
            self._apply_edge_update(payload, count_in_sketch=True)

    # ------------------------------------------------------------------
    # crash tolerance: heartbeats, WAL, checkpoints, recovery
    # ------------------------------------------------------------------

    def _start_heartbeats(self) -> None:
        """(Re)arm the periodic HEARTBEAT push to this agent's Directory.

        The chain is tied to synchronous-run liveness: each tick
        re-schedules itself only while the run is live, so an idle (or
        suspended, or crashed) agent leaves the simulator quiescent.
        """
        if self.config.heartbeat_interval <= 0 or self._heartbeat_pending:
            return
        self._heartbeat_pending = True
        self.kernel.schedule(self.config.heartbeat_interval, self._heartbeat_tick)

    def _heartbeat_tick(self) -> None:
        self._heartbeat_pending = False
        run = self.run
        if self.crashed or run is None or run.suspended or run.spec.mode != "sync":
            return  # chain ends; the next run start / resume re-arms it
        if not self.network.is_attached(self.directory_address):
            # This agent's directory died: re-home through the master
            # instead of heartbeating into the void.  The chain keeps
            # ticking so a failed re-home attempt is retried.
            self._maybe_rehome()
        else:
            self.metrics.heartbeats_sent += 1
            self.push.push(
                self.directory_address,
                PacketType.HEARTBEAT,
                {"agent_id": self.agent_id},
            )
        self._heartbeat_pending = True
        self.kernel.schedule(self.config.heartbeat_interval, self._heartbeat_tick)

    # ------------------------------------------------------------------
    # control-plane re-homing (directory death)
    # ------------------------------------------------------------------

    def _maybe_rehome(self) -> None:
        """Start a master DIRECTORY_QUERY if one is not already running."""
        if self._rehome_pending or self.crashed or self.master_address is None:
            return
        if self.network.is_attached(self.directory_address):
            return
        self._rehome_pending = True
        self._rehome_attempts = 0
        self._query_master()

    def _rehome_backoff(self) -> float:
        return min(
            self.config.master_query_timeout
            * self.config.master_query_backoff ** min(self._rehome_attempts, 10),
            0.1,
        )

    def _query_master(self) -> None:
        if self.crashed:
            self._rehome_pending = False
            return
        master = self.master_address
        if master is None or not self.network.is_attached(master) or self._master_req.busy:
            # Master down too (or a cancelled request still draining):
            # back off and retry — a restarted master gets rewired in.
            self._retry_rehome()
            return
        request_id = self._master_req.request(
            master, PacketType.DIRECTORY_QUERY, None, self._on_rehome_assign
        )
        timeout = self._rehome_backoff()
        self.kernel.schedule(timeout, lambda: self._rehome_timed_out(request_id))

    def _rehome_timed_out(self, request_id: int) -> None:
        if self._master_req._pending_id != request_id:
            return  # answered or superseded
        self._master_req.cancel()
        self._retry_rehome()

    def _retry_rehome(self, delay: Optional[float] = None) -> None:
        self._rehome_attempts += 1
        if self._rehome_attempts > self.config.master_query_retries:
            # Give up for now; the heartbeat chain restarts the attempt.
            self._rehome_pending = False
            return
        self.kernel.schedule(
            self._rehome_backoff() if delay is None else delay, self._query_master
        )

    def _on_rehome_assign(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, dict):
            # Retry-after: the master has no live directory registered
            # yet (bootstrap race or registry rebuild in progress).
            self._retry_rehome(delay=float(payload["retry_after"]))
            return
        address = int(payload)
        if not self.network.is_attached(address):
            self._retry_rehome()
            return
        self._rehome_pending = False
        self._rehome_attempts = 0
        self.directory_address = address
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name,
                "rehome",
                "control",
                {"agent_id": self.agent_id, "directory": address},
            )
        # SUBSCRIBE and AGENT_JOIN are idempotent at the directory tier;
        # the SUBSCRIBE reply seeds the current state (and term).
        self._subscribe_and_join()
        run = self.run
        if run is not None and run.ready_sent and run.last_ready is not None:
            # The READY sent to the dead directory may never have been
            # forwarded; re-report through the new home.
            self.push.push(
                self.directory_address,
                PacketType.AGENT_READY,
                dict(run.last_ready),
            )

    def _wal_log(
        self,
        role: str,
        rows: Any,
        sketched: bool,
        values: Optional[Dict[str, Any]] = None,
        active: Optional[Dict[str, Any]] = None,
        scatter: Optional[Dict[str, Any]] = None,
    ) -> None:
        # ``rows`` is either a list of (key, other, action) tuples or a
        # (keys, others, actions) array triple from the vectorized path.
        n_rows = len(rows[0]) if isinstance(rows, tuple) else len(rows)
        if not n_rows and not values and not active and not scatter:
            return
        self._recovery.wal.append(
            role, rows, sketched, values=values, active=active, scatter=scatter
        )
        self.metrics.wal_records_logged += n_rows

    def _snapshot_prescatter(self, run: _RunState) -> None:
        """Stash this round's pre-scatter residual baselines.

        Taken at each round begin (and resume) of a delta-message run
        so a coordinated checkpoint can record baselines that still
        precede the round's scatter — see ``prescatter_last_sent``.
        Skipped when checkpointing is off: nothing would consume it.
        """
        if (
            run.delta_msgs
            and self.config.checkpoint_every > 0
            and run.table is not None
            and run.table.last_sent is not None
        ):
            run.prescatter_last_sent = run.table.last_sent.copy()

    def _take_value_checkpoint(self, run: _RunState) -> None:
        """Coordinated checkpoint at a barrier step.

        Taken exactly when this agent reports READY for a plain step:
        every apply for ``run.step`` — including the asynchronous
        split-vertex applies — has run, so the captured table is
        precisely what an apply-only drain at this step would persist.
        The WAL truncates: the checkpoint now covers everything before
        it.
        """
        tracer = self.network.tracer
        trace_from = self.available_at() if tracer is not None else 0.0
        table = run.table
        name = run.program.name
        persistent = copy_values(self.persistent)
        active = copy_active(self.persistent_active)
        if table is not None and len(table):
            store = persistent[name] = as_column(persistent.get(name))
            act = active[name] = as_idset(active.get(name))
            store.set_many(table.ids, table.values)
            act.assign(table.ids, table.active)
        scatter = copy_values(self.persistent_scatter)
        if run.delta_msgs and table is not None and table.last_sent is not None:
            # Pre-scatter baselines: a rollback drops this round's
            # in-flight deltas, and the resume re-scatter regenerates
            # them only against the baseline from *before* the round's
            # sends advanced it.
            baselines = (
                run.prescatter_last_sent
                if run.prescatter_last_sent is not None
                else table.last_sent
            )
            sstore = scatter[name] = as_column(scatter.get(name))
            known = ~np.isnan(baselines)
            sstore.set_many(table.ids[known], baselines[known])
        checkpoint = Checkpoint(
            out_store=copy_store(self.out_store),
            in_store=copy_store(self.in_store),
            persistent=persistent,
            persistent_active=active,
            sketch_delta=self.sketch_delta.copy(),
            run_id=run.spec.run_id,
            step=run.step,
            persistent_scatter=scatter,
            dirty_log=self._dirty_log.copy(),
            dirty_seen=dict(self._dirty_seen),
        )
        self._recovery.checkpoints.save(checkpoint)
        self._recovery.wal.truncate()
        self.metrics.checkpoints_taken += 1
        if tracer is not None:
            tracer.complete(
                self.name,
                "checkpoint",
                "durability",
                trace_from,
                self.available_at(),
                {"run_id": run.spec.run_id, "step": run.step, "round": run.round},
            )

    def _restore_from_crash(
        self, crashed_id: int, restore_checkpoint: Optional[Tuple[int, int]]
    ) -> None:
        """Rebuild a crashed agent's shard from its durable slot.

        Restore base (latest checkpoint) + WAL suffix reconstructs the
        exact edge stores and un-flushed sketch delta; persisted values
        come from the rollback checkpoint (mid-run recovery), the
        pre-run snapshot (restart-mode recovery from a mid-run base), or
        the base itself.  Edges the ring now routes elsewhere are
        dropped by the first directory adoption's migration pass.
        """
        source = self._recovery_store.slot(crashed_id)
        base = source.checkpoints.latest
        rolled = None
        if restore_checkpoint is not None:
            rolled = source.checkpoints.checkpoint_for(*restore_checkpoint)
            if rolled is None:
                raise RuntimeError(
                    f"replacement for agent {crashed_id} needs checkpoint "
                    f"{restore_checkpoint} but the durable slot lacks it"
                )
        if base is not None:
            self.out_store = as_edge_store(copy_store(base.out_store))
            self.in_store = as_edge_store(copy_store(base.in_store))
            self.persistent = copy_values(base.persistent)
            self.persistent_active = copy_active(base.persistent_active)
            self.persistent_scatter = copy_values(base.persistent_scatter)
            # Dirty rows come from the *latest* base (the WAL suffix is
            # relative to it); they never change during a run, so the
            # rollback checkpoint would carry the same rows anyway.
            self._dirty_log = as_dirty_log(base.dirty_log).copy()
            self._dirty_seen = dict(base.dirty_seen)
            if base.sketch_delta is not None:
                self.sketch_delta = base.sketch_delta.copy()
            self.metrics.checkpoints_restored += 1
        if rolled is not None:
            # Mid-run rollback: values from the common checkpoint step.
            self.persistent = copy_values(rolled.persistent)
            self.persistent_active = copy_active(rolled.persistent_active)
            self.persistent_scatter = copy_values(rolled.persistent_scatter)
        elif base is not None and base.run_id is not None:
            # Restart-mode recovery from a mid-run base: its values are
            # partially converged and must not seed the re-run; fall
            # back to the snapshot from before the run's first one.
            pre = source.checkpoints.pre_run
            self.persistent = copy_values(pre.persistent) if pre is not None else {}
            self.persistent_active = (
                copy_active(pre.persistent_active) if pre is not None else {}
            )
            self.persistent_scatter = (
                copy_values(pre.persistent_scatter) if pre is not None else {}
            )
        replayed = source.wal.replay(
            self.out_store,
            self.in_store,
            sketch_delta=self.sketch_delta,
            persistent=self.persistent,
            persistent_active=self.persistent_active,
            persistent_scatter=self.persistent_scatter,
        )
        # Streaming mutations logged after the base checkpoint were
        # dirty but unconsumed when the agent died; re-dirty them so the
        # next delta run still sees its full frontier seed.
        self._dirty_log.extend(source.wal.sketched_rows())
        self.metrics.wal_records_replayed += replayed
        self._prune_stores()
        self.metrics.recoveries_participated += 1
        self.restored_from = {
            "agent_id": crashed_id,
            "checkpoint_step": restore_checkpoint[1] if restore_checkpoint else None,
            "wal_rows_replayed": replayed,
            "edges_restored": self.n_out_edges + self.n_in_edges,
        }
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(self.name, "restore", "recovery", dict(self.restored_from))
        # Seed this agent's own slot so it is itself recoverable from
        # the moment it joins (its WAL starts empty, so the snapshot is
        # the covering base).
        self._recovery_store.snapshot_agent(self)

    def _on_recover(self, payload: dict) -> None:
        """Cluster-wide recovery directive, broadcast after an eviction.

        ``mode`` is decided by the engine from durable checkpoint
        coverage:

        * ``rollback`` — restore persisted values from the common
          checkpoint step and suspend; the engine resumes the barrier at
          that step once the replacement has joined and migration has
          quiesced.
        * ``restart`` — no usable common checkpoint (WAL-only
          degradation): drop the run entirely; the engine re-issues
          RUN_START and the algorithm re-runs from pre-run state.
        """
        incarnation = int(payload["incarnation"])
        if incarnation <= self._recover_epoch:
            return  # duplicate broadcast
        self._recover_epoch = incarnation
        self._data_inc = incarnation
        run = self.run
        if run is None or run.spec.run_id != payload.get("run_id"):
            return
        self.metrics.recoveries_participated += 1
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name,
                "recover",
                "recovery",
                {
                    "mode": payload["mode"],
                    "step": payload.get("step"),
                    "incarnation": incarnation,
                },
            )
        if payload["mode"] == "restart":
            # The aborted run's serving view describes state the re-run
            # will recompute; fall back to the pre-run fixpoint store
            # (untouched in restart mode) under its existing final tag.
            self._serving.pop(run.program.name, None)
            self.run = None
            if self._pending_state is not None:
                self._adopt_state(self._pending_state)
            return
        step = int(payload["step"])
        checkpoint = self._recovery.checkpoints.checkpoint_for(run.spec.run_id, step)
        if checkpoint is None:
            raise RuntimeError(
                f"agent {self.agent_id} told to roll back to step {step} "
                "but holds no such checkpoint"
            )
        self.persistent = copy_values(checkpoint.persistent)
        self.persistent_active = copy_active(checkpoint.persistent_active)
        self.persistent_scatter = copy_values(checkpoint.persistent_scatter)
        self._dirty_log = as_dirty_log(checkpoint.dirty_log).copy()
        self._dirty_seen = dict(checkpoint.dirty_seen)
        # Serve the rolled-back checkpoint during the suspension: the
        # persistent store now holds exactly step-``step`` values, and
        # every survivor tags them identically, so reads during
        # recovery stay snapshot-consistent.  (A replacement agent's
        # restored values carry the default tag and are accepted by the
        # proxies' value-equality rule.)
        self._serving.pop(run.program.name, None)
        self._serving_final[run.program.name] = (run.spec.run_id, step)
        # Drop every trace of post-checkpoint progress: the resume
        # rebuilds the table from the restored persistent state, and
        # stragglers from the old incarnation are fenced by ``inc``.
        run.table = None
        run.suspended = True
        run.ready_sent = False
        run.initial_work_done = False
        run.outstanding_acks = 0
        run.expected_syncs = {}
        run.sync_buf = []
        run.expected_values = set()
        run.pending_msgs = []
        run.buffers.clear()
        run.future_buffer = {}
        run.round_stats = {}
        run.split_applied = {}
        run.step = step
        if self._pending_state is not None:
            self._adopt_state(self._pending_state)

    # ------------------------------------------------------------------
    # asynchronous mode (monotone programs)
    # ------------------------------------------------------------------

    def _async_initial_scatter(self) -> None:
        table = self.run.table
        if len(table) == 0:
            return
        self._async_scatter(np.flatnonzero(table.active))

    def _async_on_msg(self, payload: dict) -> None:
        """Asynchronous processing: relax on arrival, re-scatter changes.

        Only monotone (min/max) programs run here, so ordering does not
        affect the fixed point; termination is quiescence, detected by
        the engine as simulator idleness.
        """
        run = self.run
        table = run.table
        self.charge(self.config.costs.elga_msg_op)
        pos = table.pos(np.asarray(payload["dst"], dtype=np.int64))
        proposed = table.values.copy()
        run.program.ufunc.at(proposed, pos, payload["val"])
        changed = np.flatnonzero(proposed < table.values)
        if run.program.aggregator == "max":
            changed = np.flatnonzero(proposed > table.values)
        self.charge(self.config.costs.elga_vertex_op * len(pos))
        if len(changed) == 0:
            return
        table.values[changed] = proposed[changed]
        table.active[changed] = True
        self._async_gossip_split(changed)
        self._async_scatter(changed)

    def _async_gossip_split(self, positions: np.ndarray) -> None:
        """Propagate improved split-vertex values to sibling replicas.

        Asynchronous mode has no barrier to hang a replica-sync round
        on; instead, monotone improvements to a split vertex gossip to
        the other replicas as plain vertex messages ("v's value is at
        most x"), which min-apply and re-scatter.  Monotonicity makes
        this convergent and order-insensitive.
        """
        run = self.run
        table = run.table
        if not run.my_split:
            return
        for p in positions:
            v = int(table.ids[p])
            replicas = run.my_split.get(v)
            if replicas is None:
                continue
            payload_val = float(table.values[p])
            for replica in replicas:
                if replica == self.agent_id:
                    continue
                self.metrics.replica_syncs += 1
                self.push.push(
                    self._agent_address(replica),
                    PacketType.VERTEX_MSG,
                    {
                        "step": 0,
                        "round": 0,
                        "inc": self._data_inc,
                        "dst": np.array([v], dtype=np.int64),
                        "val": np.array([payload_val]),
                    },
                )

    def _async_scatter(self, positions: np.ndarray) -> None:
        run = self.run
        table = run.table
        if len(positions) == 0:
            return
        program = run.program
        costs = self.config.costs
        send_mask = np.zeros(len(table), dtype=bool)
        send_mask[positions] = True
        values = program.scatter_values(table.values, np.maximum(table.out_deg_total, 1.0))
        for src_pos, dst_raw, segments in (
            (run.out_src_pos, run.out_dst_raw, run.out_segments),
            (run.in_src_pos, run.in_dst_raw, run.in_segments)
            if program.needs_in_and_out
            else (np.empty(0, np.int64), np.empty(0, np.int64), []),
        ):
            for agent_id, start, end in segments:
                seg_src = src_pos[start:end]
                mask = send_mask[seg_src]
                count = int(mask.sum())
                if count == 0:
                    continue
                self.charge(count * costs.elga_edge_op)
                self.metrics.edges_processed += count
                payload = {
                    "step": 0,
                    "round": 0,
                    "inc": self._data_inc,
                    "dst": dst_raw[start:end][mask],
                    "val": values[seg_src[mask]],
                }
                if agent_id == self.agent_id:
                    # Recurse locally without a network hop.
                    self._async_on_msg(payload)
                else:
                    self.metrics.messages_sent += 1
                    self.push.push(self._agent_address(agent_id), PacketType.VERTEX_MSG, payload)

    # ------------------------------------------------------------------
    # orchestrator-facing introspection (out-of-band, like the paper's
    # scripts reading results from the agents after a run)
    # ------------------------------------------------------------------

    def local_results(self, program_name: str) -> Dict[int, float]:
        """Persisted values for *currently hosted* vertices.

        Only hosted vertices are authoritative here: after migration an
        agent may retain persisted entries for vertices that moved away,
        and those must not shadow the new owner's values when the engine
        merges results.
        """
        if self.run is not None and self.run.table is not None and (
            self.run.program.name == program_name
        ):
            table = self.run.table
            return {int(v): float(x) for v, x in zip(table.ids, table.values)}
        hosted = self._hosted_vertex_ids()
        col = as_column(self.persistent.get(program_name))
        ids, vals = col.select(hosted)
        return {int(v): float(x) for v, x in zip(ids, vals)}

    @property
    def n_out_edges(self) -> int:
        """Resident out-copy edge count (derived from the store)."""
        store = self.out_store
        return store.n_edges if isinstance(store, EdgeStore) else sum(
            len(s) for s in store.values()
        )

    @property
    def n_in_edges(self) -> int:
        """Resident in-copy edge count (derived from the store)."""
        store = self.in_store
        return store.n_edges if isinstance(store, EdgeStore) else sum(
            len(s) for s in store.values()
        )

    @property
    def total_edges(self) -> int:
        """Resident edge copies (out + in)."""
        return self.n_out_edges + self.n_in_edges
