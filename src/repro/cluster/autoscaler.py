"""Reactive autoscaling (§3.4.3, Figure 18).

The paper's autoscaler "computes the exponential moving average of a
metric and scales to the average divided by a scaling factor", with a
stabilization wait (60 s) between scaling actions so the EMA can settle.
:class:`ReactiveAutoscaler` is that policy, decoupled from any
particular metric; the Figure 18 experiment feeds it client PageRank
query rates with a 30-second EMA, exactly as described.

Any suitable autoscaler or scaling measure can be plugged in [45]; the
policy interface is a single ``observe → desired`` pair.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple


@dataclass
class ReactiveAutoscaler:
    """EMA-based reactive scaling policy.

    Attributes
    ----------
    scaling_factor:
        Metric units per Agent: the target agent count is
        ``ema / scaling_factor`` (e.g. queries/second one Agent should
        absorb).
    ema_window:
        Time constant of the exponential moving average, seconds (the
        paper uses 30 s of query rates).
    cooldown:
        Minimum seconds between scaling actions (the paper waits 60 s
        "to allow the EMA to stabilize").
    min_agents, max_agents:
        Clamp on the target.
    history_limit:
        Maximum decision points retained in :attr:`history`.  A serving
        loop polls ``desired()`` indefinitely, so the record must be a
        ring buffer, not an unbounded log.
    deadband:
        Hysteresis band, in agent-load units, around the integer
        boundaries of ``ema / scaling_factor``.  ``ceil`` turns an EMA
        hovering at a boundary (say 3.0 agents' worth of load wobbling
        ±ε) into a 3↔4 flap as soon as each cooldown expires; with the
        deadband, a scale-up needs the raw target to clear
        ``current + deadband`` and a scale-down needs it to drop below
        ``target - deadband``, so boundary noise holds steady instead.
    """

    scaling_factor: float
    ema_window: float = 30.0
    cooldown: float = 60.0
    min_agents: int = 1
    max_agents: int = 4096
    history_limit: int = 4096
    deadband: float = 0.25
    _ema: Optional[float] = field(default=None, repr=False)
    _last_obs_time: Optional[float] = field(default=None, repr=False)
    _last_scale_time: float = field(default=-math.inf, repr=False)
    history: Deque[Tuple[float, float, int]] = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.scaling_factor <= 0:
            raise ValueError(f"scaling_factor must be positive, got {self.scaling_factor}")
        if self.ema_window <= 0 or self.cooldown < 0:
            raise ValueError("ema_window must be positive and cooldown non-negative")
        if self.history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        if not 0.0 <= self.deadband < 1.0:
            raise ValueError(f"deadband must be in [0, 1), got {self.deadband}")
        self.history = deque(self.history, maxlen=self.history_limit)

    @property
    def ema(self) -> float:
        """Current smoothed metric value."""
        return 0.0 if self._ema is None else self._ema

    def observe(self, value: float, now: float) -> None:
        """Feed one metric sample taken at simulated time ``now``.

        Samples may arrive out of order (metric reports cross the
        fabric).  A stale sample (``now`` earlier than the newest one
        seen) gets zero weight — and must *not* rewind the observation
        clock, or the next in-order sample would see an inflated ``dt``
        and be over-weighted.
        """
        if self._ema is None or self._last_obs_time is None:
            self._ema = float(value)
            self._last_obs_time = now
            return
        dt = max(now - self._last_obs_time, 0.0)
        alpha = 1.0 - math.exp(-dt / self.ema_window)
        self._ema += alpha * (float(value) - self._ema)
        self._last_obs_time = max(self._last_obs_time, now)

    def target(self) -> int:
        """Agent count the current EMA calls for (ignoring cooldown)."""
        raw = math.ceil(self.ema / self.scaling_factor)
        return int(min(max(raw, self.min_agents), self.max_agents))

    def desired(self, current_agents: int, now: float) -> Optional[int]:
        """The scaling action to take now, or None.

        Returns a new agent count only when the cooldown has elapsed
        and the target differs from the current size; calling it
        records the decision point in :attr:`history`.
        """
        tgt = self.target()
        self.history.append((now, self.ema, tgt))
        if now - self._last_scale_time < self.cooldown:
            return None
        if tgt == current_agents:
            return None
        # Hysteresis: hold inside the deadband around the boundary the
        # raw (unclamped, un-ceiled) target just crossed.
        raw = self.ema / self.scaling_factor
        if tgt > current_agents and raw <= current_agents + self.deadband:
            return None
        if tgt < current_agents and raw >= tgt - self.deadband:
            return None
        self._last_scale_time = now
        return tgt


@dataclass(frozen=True)
class ScaleDecision:
    """A partition-aware scaling action: how many agents *and* what to
    move.

    Attributes
    ----------
    target:
        Desired agent count (same meaning as ``desired()``'s return).
    donors:
        Agent ids carrying above-mean load, hottest first — the
        partitions a scale-up should relieve (or a scale-down must not
        evict the peers of).
    weights:
        Suggested post-scale ring weights for the surviving members:
        inverse-load, normalized so the mean weight is unchanged.  The
        directory adopts these through the same fenced re-weight path
        the rebalance planner uses.
    reason:
        Human-readable decision summary for logs/benchmarks.
    """

    target: int
    donors: List[int]
    weights: Dict[int, float]
    reason: str


@dataclass
class PartitionAwareAutoscaler(ReactiveAutoscaler):
    """A :class:`ReactiveAutoscaler` whose decisions name what to move.

    The reactive policy answers *how many* agents; this subclass also
    consumes the per-agent load map (edge counts or per-round compute
    charges) and attaches the hottest partitions as migration donors
    plus an inverse-load weight suggestion, so the control plane can
    re-home load in the same stroke as the membership change rather
    than waiting for hash placement to even things out by luck.

    ``donor_fraction`` bounds how many donors a decision names (top
    fraction of members by load, at least one).
    """

    donor_fraction: float = 0.25

    def plan(
        self, loads: Dict[int, float], now: float
    ) -> Optional[ScaleDecision]:
        """Scaling decision from the load map, or None to hold.

        ``loads`` maps agent id -> load measure (edges held, or summed
        compute charges from the trace).  Cooldown/deadband semantics
        are exactly :meth:`desired`'s.
        """
        if not 0.0 < self.donor_fraction <= 1.0:
            raise ValueError(
                f"donor_fraction must be in (0, 1], got {self.donor_fraction}"
            )
        current = len(loads)
        tgt = self.desired(current, now)
        if tgt is None:
            return None
        mean = sum(loads.values()) / max(len(loads), 1)
        ranked = sorted(loads, key=lambda a: (-loads[a], a))
        n_donors = max(1, math.ceil(len(ranked) * self.donor_fraction))
        donors = [a for a in ranked[:n_donors] if loads[a] > mean]
        if not donors and ranked:
            donors = ranked[:1]
        from repro.rebalance import inverse_load_weights

        weights = inverse_load_weights(loads)
        verb = "scale-up" if tgt > current else "scale-down"
        reason = (
            f"{verb} {current}->{tgt} (ema={self.ema:.3f}); "
            f"relieve agents {donors} (mean load {mean:.1f})"
        )
        return ScaleDecision(target=tgt, donors=donors, weights=weights, reason=reason)
