"""Reactive autoscaling (§3.4.3, Figure 18).

The paper's autoscaler "computes the exponential moving average of a
metric and scales to the average divided by a scaling factor", with a
stabilization wait (60 s) between scaling actions so the EMA can settle.
:class:`ReactiveAutoscaler` is that policy, decoupled from any
particular metric; the Figure 18 experiment feeds it client PageRank
query rates with a 30-second EMA, exactly as described.

Any suitable autoscaler or scaling measure can be plugged in [45]; the
policy interface is a single ``observe → desired`` pair.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Tuple


@dataclass
class ReactiveAutoscaler:
    """EMA-based reactive scaling policy.

    Attributes
    ----------
    scaling_factor:
        Metric units per Agent: the target agent count is
        ``ema / scaling_factor`` (e.g. queries/second one Agent should
        absorb).
    ema_window:
        Time constant of the exponential moving average, seconds (the
        paper uses 30 s of query rates).
    cooldown:
        Minimum seconds between scaling actions (the paper waits 60 s
        "to allow the EMA to stabilize").
    min_agents, max_agents:
        Clamp on the target.
    history_limit:
        Maximum decision points retained in :attr:`history`.  A serving
        loop polls ``desired()`` indefinitely, so the record must be a
        ring buffer, not an unbounded log.
    """

    scaling_factor: float
    ema_window: float = 30.0
    cooldown: float = 60.0
    min_agents: int = 1
    max_agents: int = 4096
    history_limit: int = 4096
    _ema: Optional[float] = field(default=None, repr=False)
    _last_obs_time: Optional[float] = field(default=None, repr=False)
    _last_scale_time: float = field(default=-math.inf, repr=False)
    history: Deque[Tuple[float, float, int]] = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.scaling_factor <= 0:
            raise ValueError(f"scaling_factor must be positive, got {self.scaling_factor}")
        if self.ema_window <= 0 or self.cooldown < 0:
            raise ValueError("ema_window must be positive and cooldown non-negative")
        if self.history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self.history = deque(self.history, maxlen=self.history_limit)

    @property
    def ema(self) -> float:
        """Current smoothed metric value."""
        return 0.0 if self._ema is None else self._ema

    def observe(self, value: float, now: float) -> None:
        """Feed one metric sample taken at simulated time ``now``.

        Samples may arrive out of order (metric reports cross the
        fabric).  A stale sample (``now`` earlier than the newest one
        seen) gets zero weight — and must *not* rewind the observation
        clock, or the next in-order sample would see an inflated ``dt``
        and be over-weighted.
        """
        if self._ema is None or self._last_obs_time is None:
            self._ema = float(value)
            self._last_obs_time = now
            return
        dt = max(now - self._last_obs_time, 0.0)
        alpha = 1.0 - math.exp(-dt / self.ema_window)
        self._ema += alpha * (float(value) - self._ema)
        self._last_obs_time = max(self._last_obs_time, now)

    def target(self) -> int:
        """Agent count the current EMA calls for (ignoring cooldown)."""
        raw = math.ceil(self.ema / self.scaling_factor)
        return int(min(max(raw, self.min_agents), self.max_agents))

    def desired(self, current_agents: int, now: float) -> Optional[int]:
        """The scaling action to take now, or None.

        Returns a new agent count only when the cooldown has elapsed
        and the target differs from the current size; calling it
        records the decision point in :attr:`history`.
        """
        tgt = self.target()
        self.history.append((now, self.ema, tgt))
        if now - self._last_scale_time < self.cooldown:
            return None
        if tgt == current_agents:
            return None
        self._last_scale_time = now
        return tgt
