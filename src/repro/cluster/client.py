"""ClientProxies: the query-serving plane (§3.1, Goal 4).

ClientProxies proxy end-user queries to Agents.  A query for a vertex
bypasses the second consistent hash (§3.4.1); queries ride the
REQ/REP-style low-latency path and are answered concurrently with
computation (Goal 4).  Beyond the thin forwarder of the seed, a proxy
is a small serving tier:

* **Coalescing** — queries for the same (program, vertex) arriving
  within ``serving_coalesce_window`` (or while an identical fan-out is
  already in flight) collapse into one fan-out whose reply is delivered
  to every waiter.
* **Result cache** — a :class:`~repro.serving.cache.ResultCache` fenced
  by the directory epoch token, the per-program result version
  (RESULT_NOTICE), and a TTL on the sim clock, so a stale read is
  structurally impossible.
* **Snapshot-consistent reads** — split-vertex queries fan out to
  *every* replica; the merged answer is delivered only if all replies
  carry the same incarnation and either the same (run_id, step)
  snapshot tag or bitwise-equal values.  A torn set (mixed tags, mixed
  values) is retried after a backoff, counted in
  :attr:`snapshot_retries` — this holds during supersteps, ingest, and
  recovery rollback alike.
* **Admission control** — at most ``serving_max_inflight`` queries are
  held open; excess load is shed with a retry-after hint
  (:meth:`query`'s return value) instead of queueing unboundedly.

Latency accounting (bounded, retry-honest): one sample per delivered
query, measured from the moment the query was *accepted* — a query
re-issued by failover or a snapshot retry keeps its first-accept time,
so failover and torn-read stalls show up in the tail instead of being
reset away.  The sample ring is bounded by ``serving_latency_window``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.counters import PerfCounters
from repro.cluster.config import ClusterConfig
from repro.cluster.directory import DirectoryState
from repro.hashing.ring import ConsistentHashRing
from repro.net.message import Message, PacketType
from repro.net.sockets import PushSocket, ReqRepSocket
from repro.partition.cache import PlacementCache
from repro.partition.placer import EdgePlacer
from repro.serving import LatencyRecorder, ResultCache
from repro.sim.entity import Entity

#: Snapshot tag agents answer with when no run ever produced a value
#: (replacement agents, never-run programs).  Proxies accept tag
#: mismatches involving it through the value-equality rule.
_NO_SNAPSHOT: Tuple[int, int] = (-1, -1)

#: Hard per-fan-out bound on snapshot retries.  Replica READY skew
#: windows are microseconds wide while the backoff is much wider, so a
#: genuine merge converges after a handful of attempts; hitting this
#: bound means replicas *permanently* disagree — a protocol bug worth a
#: loud failure, not an infinite silent retry loop.
_MAX_SNAPSHOT_RETRIES = 256


class _Waiter:
    """One accepted query waiting for its value."""

    __slots__ = ("accepted_at", "callback", "vertex", "program")

    def __init__(self, accepted_at, callback, vertex, program):
        self.accepted_at = accepted_at
        self.callback = callback
        self.vertex = vertex
        self.program = program


class _Flight:
    """One coalesced fan-out for a (program, vertex) key."""

    __slots__ = ("key", "vertex", "program", "waiters", "targets", "token",
                 "dispatched", "retries")

    def __init__(self, key, vertex, program):
        self.key = key
        self.vertex = vertex
        self.program = program
        self.waiters: List[int] = []      # waiter tokens sharing the reply
        self.targets: Dict[int, Optional[dict]] = {}  # agent id -> reply
        self.token = -1                   # current attempt's wire token
        self.dispatched = False
        self.retries = 0                  # snapshot-mismatch re-issues


class ClientProxy(Entity):
    """A query frontend.

    :meth:`query` issues a vertex-result lookup and delivers the value
    to a callback; per-query latencies (simulated) accumulate in
    :attr:`latencies` for the benchmarks.  The return value is an
    admission verdict: ``0.0`` for accepted, or a positive retry-after
    hint when the query was shed.
    """

    def __init__(
        self,
        network,
        config: ClusterConfig,
        client_id: int,
        node: int,
        directory_address: int,
        master_address: Optional[int] = None,
    ):
        super().__init__(network, f"client-{client_id}", config.seed)
        self.config = config
        self.client_id = client_id
        self.node = node
        self.directory_address = directory_address
        # Highest control-plane term witnessed; directory traffic from
        # a deposed lead (term < ours) is dropped at the door.
        self.term = 0
        self.master_address = master_address
        self._master_req = ReqRepSocket(self)
        self._rehome_pending = False
        self._rehome_attempts = 0
        self.push = PushSocket(self)
        self.dstate: Optional[DirectoryState] = None
        self.perf = PerfCounters()
        self.placer: Optional[PlacementCache] = None
        self._placement_cache = PlacementCache(counters=self.perf)
        self.latencies = LatencyRecorder(maxlen=config.serving_latency_window)
        self.queries_sent = 0
        self.replies_received = 0
        self.queries_retried = 0
        self.queries_coalesced = 0
        self.queries_shed = 0
        self.fanouts_dispatched = 0
        self.snapshot_retries = 0
        self.snapshot_value_merges = 0
        self.cache: Optional[ResultCache] = (
            ResultCache(config.serving_cache_ttl, config.serving_cache_capacity)
            if config.serving_cache_ttl > 0
            else None
        )
        # Per-program result versions learned from RESULT_NOTICE
        # broadcasts (monotone max).  Cache entries are fenced on the
        # version they were filled under.
        self.known_versions: Dict[str, int] = {}
        # Optional delivery audit: when a list is assigned, every
        # delivered reply appends {vertex, program, value, source,
        # run_id, step, time}.  Benches use it for the zero-stale check;
        # None (the default) costs nothing.
        self.audit: Optional[List[dict]] = None
        # Waiter-token -> _Waiter.  The attribute is the proxy's open
        # query set: truthy exactly while queries are outstanding.
        self._pending: Dict[int, _Waiter] = {}
        # (program, vertex) -> live flight, plus the wire-token index of
        # dispatched attempts (a resend mints a fresh token, so replies
        # to an abandoned attempt drop here instead of corrupting state).
        self._flights: Dict[Tuple[str, int], _Flight] = {}
        self._by_token: Dict[int, _Flight] = {}
        self._coalesce_buf: List[_Flight] = []
        self._flush_scheduled = False
        self._next_token = 0
        self.push.push(
            self.directory_address,
            PacketType.SUBSCRIBE,
            [PacketType.DIRECTORY_UPDATE, PacketType.RESULT_NOTICE],
        )

    # -- directory plane ---------------------------------------------------

    def handle_message(self, message: Message) -> None:
        bumped = False
        if message.term is not None:
            if message.term < self.term:
                # Control traffic from a deposed lead: fence it out.
                self.network.stats.stale_term_drops += 1
                return
            bumped = message.term > self.term
            self.term = message.term
        if message.ptype == PacketType.DIRECTORY_UPDATE:
            self._adopt(message.payload)
        elif message.ptype == PacketType.CLIENT_REPLY:
            self._on_reply(message.payload)
        elif message.ptype == PacketType.RESULT_NOTICE:
            self._on_result_notice(message.payload, assign=bumped)
        elif message.ptype == PacketType.DIRECTORY_ASSIGN:
            self._master_req.handle_reply(message)
        else:
            raise ValueError(f"ClientProxy got unexpected {message.ptype.name}")
        if bumped:
            self._on_term_bump()

    def _adopt(self, state: DirectoryState) -> None:
        if self.dstate is not None and state.fence <= self.dstate.fence:
            return
        previous = self.dstate
        self.dstate = state
        ring = ConsistentHashRing(
            state.agent_ids(),
            virtual_factor=self.config.virtual_factor,
            hash_fn=self.config.hash_fn,
            seed=self.config.seed,
            weights=state.weights,
        )
        self.placer = self._placement_cache.bind(
            state.epoch_token,
            EdgePlacer(
                ring,
                state.sketch,
                replication_threshold=self.config.replication_threshold,
                hash_fn=self.config.hash_fn,
                split_gate=state.split_vertices,
            ),
        )
        if previous is not None:
            self._failover_pending(state)
            if self.cache is not None and (
                state.batch_id > previous.batch_id
                or state.epoch_token != previous.epoch_token
            ):
                # Ingest progressed (the batch clock moved — including
                # flush-less batches, which bump no epoch and emit no
                # RESULT_NOTICE) or placement churned: a cached "vertex
                # does not exist" may have just been falsified.  Drop
                # negatives rather than waiting out the TTL; positive
                # entries keep their version/epoch fencing.
                self.cache.invalidate_negative()

    def _on_result_notice(self, payload: dict, assign: bool = False) -> None:
        """Adopt new per-program result versions.

        Ordinarily monotone (max-merge): late or duplicated notices
        cannot roll a version back.  On a term bump (``assign``) the new
        lead's versions are adopted verbatim instead — a successor
        reconstructs versions from its mirror and may legitimately land
        *below* what this proxy saw from the old lead; max-merging would
        then ignore every future legit notice and leave the cache fenced
        against versions agents will never report again.
        """
        for program, version in payload["versions"].items():
            if assign or version > self.known_versions.get(program, 0):
                self.known_versions[program] = version
                if self.cache is not None:
                    # get() would fence these lazily; eager removal
                    # keeps the capacity for entries that can still hit.
                    self.cache.invalidate_program(program)

    def _on_term_bump(self) -> None:
        """React to a control-plane lead election.

        Everything cached or in flight under the old term is suspect:
        the cache is cleared wholesale (result versions were re-assigned,
        so old entries can no longer fence correctly), and every
        dispatched fan-out is re-issued — its targets may have re-homed,
        and a reply computed under the old term must not race a
        new-term read.  Waiters keep their first-accept time so the
        failover stall lands in the latency tail.
        """
        if self.cache is not None:
            self.cache.clear()
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name, "term_bump", "control", {"term": self.term}
            )
        for flight in list(self._flights.values()):
            if not flight.dispatched:
                continue
            self._by_token.pop(flight.token, None)
            self.queries_retried += len(flight.waiters)
            self._dispatch(flight)

    def _failover_pending(self, state: DirectoryState) -> None:
        """Re-issue in-flight fan-outs whose target left the membership.

        A crashed agent never answers; once the directory broadcasts
        the post-eviction epoch, every dispatched fan-out with a dead
        target is re-resolved under the new ring and resent.  Waiters
        keep their first-accept time, so latency benchmarks charge
        failover its real cost; ``queries_retried`` counts the affected
        *queries* (waiters), matching the seed's accounting.
        """
        live = set(state.agents)
        for flight in list(self._flights.values()):
            if not flight.dispatched:
                continue  # still buffered; dispatches under the new ring
            if all(agent_id in live for agent_id in flight.targets):
                continue
            self._by_token.pop(flight.token, None)
            self.queries_retried += len(flight.waiters)
            self._dispatch(flight)

    # -- re-homing (directory failure) -------------------------------------

    def _maybe_rehome(self) -> None:
        """Ask the DirectoryMaster for a live directory to subscribe to.

        Event-driven (triggered from :meth:`query`), not periodic — an
        idle proxy costs the simulator nothing, and the first query
        after a directory death pays the re-home.  Retries with
        exponential backoff; a ``retry_after`` reply (master has no live
        registry yet) waits the hinted interval instead.
        """
        self._rehome_pending = True
        self._rehome_attempts = 0
        self._query_master()

    def _rehome_backoff(self) -> float:
        base = self.config.master_query_timeout
        factor = self.config.master_query_backoff
        return min(base * factor ** min(self._rehome_attempts, 10), 0.1)

    def _query_master(self) -> None:
        if self.master_address is None:
            self._rehome_pending = False
            return
        if (
            not self.network.is_attached(self.master_address)
            or self._master_req.busy
        ):
            self._retry_rehome()
            return
        request_id = self._master_req.request(
            self.master_address,
            PacketType.DIRECTORY_QUERY,
            None,
            self._on_rehome_assign,
        )
        self.kernel.schedule(
            self.config.master_query_timeout,
            lambda rid=request_id: self._rehome_timed_out(rid),
        )

    def _rehome_timed_out(self, request_id: int) -> None:
        if self._master_req._pending_id != request_id:
            return  # answered (or superseded) before the timeout fired
        self._master_req.cancel()
        self._retry_rehome()

    def _retry_rehome(self, delay: Optional[float] = None) -> None:
        self._rehome_attempts += 1
        if self._rehome_attempts > self.config.master_query_retries:
            # Give up for now; the next query() re-arms the whole cycle.
            self._rehome_pending = False
            return
        self.kernel.schedule(
            delay if delay is not None else self._rehome_backoff(),
            self._query_master,
        )

    def _on_rehome_assign(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, dict):
            self._retry_rehome(delay=float(payload["retry_after"]))
            return
        address = int(payload)
        if not self.network.is_attached(address):
            self._retry_rehome()
            return
        self._rehome_pending = False
        self._rehome_attempts = 0
        self.directory_address = address
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name, "rehome", "control", {"directory": address}
            )
        self.push.push(
            self.directory_address,
            PacketType.SUBSCRIBE,
            [PacketType.DIRECTORY_UPDATE, PacketType.RESULT_NOTICE],
        )

    # -- query admission ---------------------------------------------------

    def query(
        self,
        vertex: int,
        program: str,
        callback: Optional[Callable[[Optional[float]], None]] = None,
    ) -> float:
        """Ask for ``vertex``'s current result under ``program``.

        Returns ``0.0`` if the query was accepted (the callback will
        eventually fire exactly once), or a positive retry-after hint
        (simulated seconds) if admission control shed it (the callback
        will never fire; resubmit after the hint).
        """
        if self.placer is None:
            raise RuntimeError(
                f"client {self.client_id} has no directory state yet; "
                "run the simulator until the first broadcast lands"
            )
        if (
            self.master_address is not None
            and not self._rehome_pending
            and not self.network.is_attached(self.directory_address)
        ):
            # The home directory died.  Queries keep flowing on the
            # last-adopted state (fan-outs target agents, not the
            # directory), but without a live subscription this proxy
            # would never see another epoch or version — re-home now.
            self._maybe_rehome()
        if len(self._pending) >= self.config.serving_max_inflight:
            self.queries_shed += 1
            tracer = self.network.tracer
            if tracer is not None:
                tracer.instant(
                    self.name,
                    "query_shed",
                    "serving",
                    {"inflight": len(self._pending), "vertex": int(vertex)},
                )
            return self.config.serving_retry_after
        vertex = int(vertex)
        token = self._next_token
        self._next_token += 1
        self.queries_sent += 1
        self._pending[token] = _Waiter(self.now, callback, vertex, program)
        if self.cache is not None:
            self.charge(self.config.costs.elga_serving_cache_op)
            entry = self.cache.get(
                program,
                vertex,
                self.now,
                self.dstate.epoch_token,
                self.known_versions.get(program, 0),
            )
            if entry is not None:
                # Deliver asynchronously after the (cheap) cache charge
                # so a hit still records a real, nonzero latency.
                self.kernel.schedule(
                    self.config.costs.elga_serving_cache_op,
                    lambda t=token, e=entry: self._complete_waiter(
                        t, e.value, "cache", e.snapshot
                    ),
                )
                return 0.0
        self._enqueue_fanout(token, vertex, program)
        return 0.0

    # -- fan-out lifecycle -------------------------------------------------

    def _enqueue_fanout(self, waiter_token: int, vertex: int, program: str) -> None:
        window = self.config.serving_coalesce_window
        if window <= 0:
            # Coalescing disabled: every query is its own immediate
            # fan-out, with no in-flight sharing either — the true
            # pre-serving-plane baseline the benches' "off" cell
            # measures (a unique key keeps solo flights from merging).
            flight = _Flight((program, vertex, waiter_token), vertex, program)
            flight.waiters.append(waiter_token)
            self._flights[flight.key] = flight
            self._dispatch(flight)
            return
        key = (program, vertex)
        flight = self._flights.get(key)
        if flight is not None:
            # Identical fan-out buffered or in flight: share its reply.
            flight.waiters.append(waiter_token)
            self.queries_coalesced += 1
            return
        flight = _Flight(key, vertex, program)
        flight.waiters.append(waiter_token)
        self._flights[key] = flight
        self._coalesce_buf.append(flight)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.kernel.schedule(window, self._flush_coalesced)

    def _flush_coalesced(self) -> None:
        self._flush_scheduled = False
        buffered, self._coalesce_buf = self._coalesce_buf, []
        for flight in buffered:
            if self._flights.get(flight.key) is flight and not flight.dispatched:
                self._dispatch(flight)

    def _targets_for(self, vertex: int) -> List[int]:
        """Replica fan-out targets: every replica for a split vertex
        (their tags must agree for a consistent read — and hot-key read
        load spreads across all of them), the single owner otherwise."""
        if self.dstate is not None and vertex in self.dstate.split_vertices:
            return sorted(set(self.placer.replica_set(vertex)))
        return [self.placer.owner_of_vertex(vertex, rng=self.rng)]

    def _dispatch(self, flight: _Flight) -> None:
        flight.token = self._next_token
        self._next_token += 1
        flight.dispatched = True
        targets = self._targets_for(flight.vertex)
        flight.targets = {agent_id: None for agent_id in targets}
        self._by_token[flight.token] = flight
        self.fanouts_dispatched += 1
        for agent_id in targets:
            self._send_query(flight.token, flight.vertex, flight.program, agent_id)

    def _send_query(self, token: int, vertex: int, program: str, owner: int) -> None:
        address = self.dstate.agents.get(owner)
        if address is None:
            address = next(iter(sorted(self.dstate.agents.values())))
        self.push.push(
            address,
            PacketType.CLIENT_QUERY,
            {"vertex": vertex, "program": program, "token": token},
        )

    def _on_reply(self, payload: dict) -> None:
        self.replies_received += 1
        flight = self._by_token.get(payload.get("token"))
        if flight is None:
            return  # stale attempt (failover/snapshot resend) or duplicate
        agent_id = payload.get("agent_id")
        if agent_id not in flight.targets or flight.targets[agent_id] is not None:
            return  # not a target of this attempt / duplicate delivery
        flight.targets[agent_id] = payload
        if any(reply is None for reply in flight.targets.values()):
            return  # fan-out incomplete
        self._merge_flight(flight)

    def _merge_flight(self, flight: _Flight) -> None:
        """Deliver the fan-out iff every replica answered from the same
        snapshot; otherwise retry the whole fan-out after a backoff."""
        self._by_token.pop(flight.token, None)
        replies = [flight.targets[a] for a in sorted(flight.targets)]
        incs = {reply.get("inc", 0) for reply in replies}
        tags = {
            (reply.get("run_id", -1), reply.get("step", -1)) for reply in replies
        }
        first = replies[0].get("value")
        values_equal = all(reply.get("value") == first for reply in replies[1:])
        if len(incs) == 1 and (len(tags) == 1 or values_equal):
            if len(tags) > 1:
                # Tag skew with identical values: replica READY skew or
                # a replacement agent's untagged restore.  Consistent by
                # value; counted so tests can see it happening.
                self.snapshot_value_merges += 1
            del self._flights[flight.key]
            self._deliver(flight, replies[0])
            return
        # Torn read caught: replicas answered from different rounds (or
        # across an incarnation fence) with different values.  Never
        # deliver; re-issue the fan-out once the skew window has passed.
        self.snapshot_retries += 1
        flight.retries += 1
        if flight.retries > _MAX_SNAPSHOT_RETRIES:
            raise RuntimeError(
                f"client {self.client_id}: replicas of vertex {flight.vertex} "
                f"({flight.program}) disagree after {flight.retries} snapshot "
                f"retries: tags={sorted(tags)}"
            )
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name,
                "snapshot_retry",
                "serving",
                {
                    "vertex": flight.vertex,
                    "program": flight.program,
                    "tags": sorted(tags),
                    "attempt": flight.retries,
                },
            )
        self.kernel.schedule(
            self.config.serving_snapshot_backoff,
            lambda f=flight: self._redispatch(f),
        )

    def _redispatch(self, flight: _Flight) -> None:
        if self._flights.get(flight.key) is not flight:
            return  # superseded (e.g. completed via failover path)
        self._dispatch(flight)

    # -- delivery ----------------------------------------------------------

    def _deliver(self, flight: _Flight, reply: dict) -> None:
        value = reply.get("value")
        snapshot = (reply.get("run_id", -1), reply.get("step", -1))
        if self.cache is not None:
            self.cache.put(
                flight.program,
                flight.vertex,
                value,
                self.now,
                self.dstate.epoch_token,
                self.known_versions.get(flight.program, 0),
                snapshot,
            )
        for token in flight.waiters:
            self._complete_waiter(token, value, "fanout", snapshot)

    def _complete_waiter(
        self,
        token: int,
        value: Optional[float],
        source: str,
        snapshot: Tuple[int, int],
    ) -> None:
        waiter = self._pending.pop(token, None)
        if waiter is None:
            return
        self.latencies.append(self.now - waiter.accepted_at)
        if self.audit is not None:
            self.audit.append(
                {
                    "vertex": waiter.vertex,
                    "program": waiter.program,
                    "value": value,
                    "source": source,
                    "run_id": snapshot[0],
                    "step": snapshot[1],
                    "time": self.now,
                }
            )
        if waiter.callback is not None:
            waiter.callback(value)

    # -- reporting ---------------------------------------------------------

    def serving_metrics(self) -> Dict[str, float]:
        """Monotone serving counters (Prometheus / bench reporting)."""
        out: Dict[str, float] = {
            "client_queries_sent": self.queries_sent,
            "client_replies_received": self.replies_received,
            "client_queries_retried": self.queries_retried,
            "client_queries_coalesced": self.queries_coalesced,
            "client_queries_shed": self.queries_shed,
            "client_fanouts_dispatched": self.fanouts_dispatched,
            "client_snapshot_retries": self.snapshot_retries,
            "client_snapshot_value_merges": self.snapshot_value_merges,
            "client_inflight": len(self._pending),
        }
        if self.cache is not None:
            out.update(self.cache.counters())
        return out
