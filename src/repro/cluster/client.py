"""ClientProxies: the low-latency query path (§3.1).

ClientProxies proxy end-user queries to Agents.  A query for a vertex
bypasses the second consistent hash and picks one replica at random
(§3.4.1) — this is deliberate: a split (hot) vertex's read load spreads
across its replicas.  Queries ride the REQ/REP-style low-latency path
and are answered concurrently with computation (Goal 4).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.bench.counters import PerfCounters
from repro.cluster.config import ClusterConfig
from repro.cluster.directory import DirectoryState
from repro.hashing.ring import ConsistentHashRing
from repro.net.message import Message, PacketType
from repro.net.sockets import PushSocket
from repro.partition.cache import PlacementCache
from repro.partition.placer import EdgePlacer
from repro.sim.entity import Entity


class ClientProxy(Entity):
    """A query frontend.

    :meth:`query` issues a vertex-result lookup and delivers the value
    to a callback; per-query latencies (simulated) accumulate in
    :attr:`latencies` for the benchmarks.
    """

    def __init__(
        self,
        network,
        config: ClusterConfig,
        client_id: int,
        node: int,
        directory_address: int,
    ):
        super().__init__(network, f"client-{client_id}", config.seed)
        self.config = config
        self.client_id = client_id
        self.node = node
        self.directory_address = directory_address
        self.push = PushSocket(self)
        self.dstate: Optional[DirectoryState] = None
        self.perf = PerfCounters()
        self.placer: Optional[PlacementCache] = None
        self._placement_cache = PlacementCache(counters=self.perf)
        self.latencies: List[float] = []
        self.queries_sent = 0
        self.replies_received = 0
        self.queries_retried = 0
        # token -> (send time, callback, vertex, program, owner agent id)
        self._pending: Dict[int, tuple] = {}
        self._next_token = 0
        self.push.push(
            self.directory_address, PacketType.SUBSCRIBE, [PacketType.DIRECTORY_UPDATE]
        )

    def handle_message(self, message: Message) -> None:
        if message.ptype == PacketType.DIRECTORY_UPDATE:
            self._adopt(message.payload)
        elif message.ptype == PacketType.CLIENT_REPLY:
            self._on_reply(message.payload)
        else:
            raise ValueError(f"ClientProxy got unexpected {message.ptype.name}")

    def _adopt(self, state: DirectoryState) -> None:
        if self.dstate is not None and state.version <= self.dstate.version:
            return
        previous = self.dstate
        self.dstate = state
        ring = ConsistentHashRing(
            state.agent_ids(),
            virtual_factor=self.config.virtual_factor,
            hash_fn=self.config.hash_fn,
            seed=self.config.seed,
            weights=state.weights,
        )
        self.placer = self._placement_cache.bind(
            state.epoch_token,
            EdgePlacer(
                ring,
                state.sketch,
                replication_threshold=self.config.replication_threshold,
                hash_fn=self.config.hash_fn,
                split_gate=state.split_vertices,
            ),
        )
        if previous is not None:
            self._failover_pending(state)

    def _failover_pending(self, state: DirectoryState) -> None:
        """Re-issue in-flight queries whose target left the membership.

        A crashed agent never answers; once the directory broadcasts the
        post-eviction epoch, every pending query routed at it is resent
        to the vertex's owner under the new ring.  The original send
        time is kept so latency benchmarks charge failover its real
        cost.
        """
        live = set(state.agents)
        stranded = [
            token
            for token, (_, _, _, _, owner) in self._pending.items()
            if owner not in live
        ]
        for token in stranded:
            sent_at, callback, vertex, program, _ = self._pending[token]
            owner = self.placer.owner_of_vertex(vertex, rng=self.rng)
            self._pending[token] = (sent_at, callback, vertex, program, owner)
            self.queries_retried += 1
            self._send_query(token, vertex, program, owner)

    def _send_query(self, token: int, vertex: int, program: str, owner: int) -> None:
        address = self.dstate.agents.get(owner)
        if address is None:
            address = next(iter(sorted(self.dstate.agents.values())))
        self.push.push(
            address,
            PacketType.CLIENT_QUERY,
            {"vertex": vertex, "program": program, "token": token},
        )

    def query(
        self,
        vertex: int,
        program: str,
        callback: Optional[Callable[[Optional[float]], None]] = None,
    ) -> None:
        """Ask some replica of ``vertex`` for its current result."""
        if self.placer is None:
            raise RuntimeError(
                f"client {self.client_id} has no directory state yet; "
                "run the simulator until the first broadcast lands"
            )
        token = self._next_token
        self._next_token += 1
        self.queries_sent += 1
        owner = self.placer.owner_of_vertex(int(vertex), rng=self.rng)
        self._pending[token] = (self.now, callback, int(vertex), program, owner)
        self._send_query(token, int(vertex), program, owner)

    def _on_reply(self, payload: dict) -> None:
        token = payload.get("token")
        entry = self._pending.pop(token, None)
        if entry is None:
            return  # duplicate/stale reply
        sent_at, callback = entry[0], entry[1]
        self.replies_received += 1
        self.latencies.append(self.now - sent_at)
        if callback is not None:
            callback(payload.get("value"))
