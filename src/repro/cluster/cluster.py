"""Cluster orchestration: wiring, ingest, and elastic scaling.

:class:`ElGACluster` plays the role of the paper's launch scripts
(pdsh + numactl in the artifact appendix): it builds the simulator,
starts the directory system, brings up Agents across nodes, and offers
the operator-level actions — add/remove Agents, ingest streams, settle
the system.  Algorithm execution lives one level up, in
:class:`repro.core.engine.ElGA`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cluster.agent import Agent
from repro.cluster.client import ClientProxy
from repro.cluster.config import ClusterConfig
from repro.cluster.directory import Directory, DirectoryMaster
from repro.cluster.recovery import RecoveryStore
from repro.cluster.streamer import Streamer
from repro.graph.stream import EdgeBatch
from repro.net.message import PacketType
from repro.net.network import Network
from repro.sim.kernel import SimKernel
from repro.sim.random import entity_rng


class ElGACluster:
    """A running (simulated) ElGA deployment.

    Parameters
    ----------
    config:
        Shared cluster configuration; ``config.total_agents`` Agents
        come up across ``config.nodes`` nodes.

    Examples
    --------
    >>> cluster = ElGACluster(ClusterConfig(nodes=2, agents_per_node=2))
    >>> len(cluster.agents)
    4
    """

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.kernel = SimKernel()
        self.network = Network(
            self.kernel,
            transport=config.transport,
            reliable=config.reliable_transport,
            retry_timeout=config.retry_timeout,
            retry_backoff=config.retry_backoff,
            retry_timeout_cap=config.retry_timeout_cap,
            max_retries=config.max_retries,
        )
        if config.tracing:
            from repro.obs.trace import Tracer

            self.network.tracer = Tracer(self.kernel)
        self.master = DirectoryMaster(self.network, seed=config.seed)
        self.directories: List[Directory] = []
        for i in range(config.n_directories):
            directory = Directory(self.network, config, i)
            self.directories.append(directory)
            self.master.register_directory(directory.address)
        lead = self.directories[0]
        lead.peers = [d.address for d in self.directories[1:]]
        for d in self.directories[1:]:
            d.peers = [lead.address]
        addresses = {d.index: d.address for d in self.directories}
        for d in self.directories:
            d.master_address = self.master.address
            d.directory_addresses = dict(addresses)
            d.on_lead_change = self._on_lead_change
        # Control-plane failover: which directory currently holds the
        # lead term, plus the engine hooks to re-install on a successor.
        self._lead_index = 0
        self._run_controller_ref = None
        self._on_eviction_ref = None

        self.agents: Dict[int, Agent] = {}
        self._departing: List[Agent] = []
        self._next_agent_id = 0
        self._next_streamer_id = 0
        self._next_client_id = 0
        self.streamers: List[Streamer] = []
        self.clients: List[ClientProxy] = []
        self._scale_rng = entity_rng(config.seed, "cluster-scaler")
        # Crash tolerance: the durable side-channel every agent
        # checkpoints into, the crashed-agent parking lot, the recovery
        # incarnation counter (fences pre-crash data traffic), and a
        # deterministic trace of crash/recovery decisions.
        self.recovery = RecoveryStore()
        self._crashed: Dict[int, Agent] = {}
        self._incarnation = 0
        self._crash_rng = entity_rng(config.seed, "cluster-crasher")
        self.recovery_log: List[dict] = []

        for i in range(config.total_agents):
            self.add_agent(node=i // config.agents_per_node, settle=False)
        self.settle()

    # ------------------------------------------------------------------
    # membership / elasticity
    # ------------------------------------------------------------------

    @property
    def lead(self) -> Directory:
        """The directory currently holding the lead term.

        Index 0 at bootstrap; repointed by :meth:`_on_lead_change` when
        an election promotes a successor.  Engine code must read this
        property at each use rather than capturing it — the lead can
        change between any two kernel events.
        """
        return self.directories[self._lead_index]

    def directory_for(self, index: int) -> Directory:
        """Deterministic home-directory assignment, skipping dead ones
        (a participant created mid-failover must not be homed on a
        detached endpoint it has no lease machinery to escape)."""
        live = [d for d in self.directories if self.network.is_attached(d.address)]
        if not live:
            raise RuntimeError("no live directories")
        return live[index % len(live)]

    def _on_lead_change(self, directory: Directory) -> None:
        """Election callback: repoint ``lead`` and re-install hooks."""
        self._lead_index = directory.index
        directory.run_controller = self._run_controller_ref
        directory.on_eviction = self._on_eviction_ref
        self.recovery_log.append(
            {
                "event": "lead_elected",
                "index": directory.index,
                "term": directory.term,
                "time": round(self.kernel.now, 9),
            }
        )

    def install_run_controller(self, controller, on_eviction=None) -> None:
        """Install the engine's barrier hooks on the current lead.

        The cluster keeps the references so an elected successor gets
        them re-installed before any barrier can complete under its
        term."""
        self._run_controller_ref = controller
        self._on_eviction_ref = on_eviction
        self.lead.run_controller = controller
        self.lead.on_eviction = on_eviction

    def uninstall_run_controller(self) -> None:
        self._run_controller_ref = None
        self._on_eviction_ref = None
        self.lead.run_controller = None
        self.lead.on_eviction = None

    def crash_directory(self, index: Optional[int] = None) -> int:
        """Abruptly kill one Directory (default: the current lead).

        The endpoint vanishes mid-flight exactly like a crashed agent's.
        Recovery is protocol-driven: peers detect the lease lapse, the
        lowest-index live directory succeeds under a bumped term, and
        participants re-home via the master.
        """
        live = [d for d in self.directories if self.network.is_attached(d.address)]
        if len(live) <= 1:
            raise RuntimeError("refusing to crash the last live directory")
        if index is None:
            index = self._lead_index
        directory = self.directories[index]
        if not self.network.is_attached(directory.address):
            raise RuntimeError(f"directory {index} is already dead")
        directory.crashed = True
        self.network.detach_abrupt(directory.address)
        self.recovery_log.append(
            {
                "event": "directory_crash",
                "index": index,
                "term": directory.term,
                "lead": index == self._lead_index,
                "time": round(self.kernel.now, 9),
            }
        )
        return index

    def crash_master(self) -> None:
        """Abruptly kill the DirectoryMaster (bootstrap + eviction
        arbiter).  Directories keep running; suspicion verdicts and
        re-homing queries stall until :meth:`restart_master`."""
        self.network.detach_abrupt(self.master.address)
        self.recovery_log.append(
            {"event": "master_crash", "time": round(self.kernel.now, 9)}
        )

    def restart_master(self) -> None:
        """Bring up a fresh DirectoryMaster at a new endpoint.

        Its registry starts *empty* and rebuilds purely from the
        directories' periodic DIRECTORY_REGISTER heartbeats — the
        well-known endpoint is rewired into every participant (the
        operator updating a service address), but no registry state is
        handed over.
        """
        self.master = DirectoryMaster(self.network, seed=self.config.seed)
        for d in self.directories:
            d.master_address = self.master.address
        for agent in self.agents.values():
            agent.master_address = self.master.address
        for client in self.clients:
            client.master_address = self.master.address
        self.recovery_log.append(
            {"event": "master_restart", "time": round(self.kernel.now, 9)}
        )

    def add_agent(
        self,
        node: Optional[int] = None,
        settle: bool = True,
        weight: float = 1.0,
        recover_from: Optional[int] = None,
        restore_checkpoint: Optional[tuple] = None,
        agent_id: Optional[int] = None,
    ) -> Agent:
        """Bring up one new Agent (elastic scale-up).

        ``weight`` is the heterogeneous-capacity extension (§3.4.2
        future work): a weight-w agent contributes w× the virtual ring
        positions and therefore claims roughly w× the edges.
        ``recover_from`` makes the new agent a *replacement*: it
        restores the named crashed agent's durable checkpoint (rolled
        back to ``restore_checkpoint`` when given) and replays its WAL
        suffix before joining.  ``agent_id`` pins the identity instead
        of allocating a fresh one — a replacement reuses its victim's
        id so it inherits the same ring positions (fabric addresses are
        never reused; the id is a placement identity, not an endpoint).
        """
        if agent_id is None:
            agent_id = self._next_agent_id
            self._next_agent_id += 1
        elif agent_id in self.agents:
            raise ValueError(f"agent id {agent_id} is already a live member")
        else:
            self._next_agent_id = max(self._next_agent_id, agent_id + 1)
        if node is None:
            node = agent_id // self.config.agents_per_node
        directory = self.directory_for(agent_id)
        agent = Agent(
            self.network,
            self.config,
            agent_id,
            node,
            directory.address,
            weight=weight,
            recovery=self.recovery,
            recover_from=recover_from,
            restore_checkpoint=restore_checkpoint,
            incarnation=self._incarnation,
            master_address=self.master.address,
        )
        self.agents[agent_id] = agent
        if settle:
            self.settle()
        return agent

    def remove_agent(self, agent_id: int, settle: bool = True) -> None:
        """Gracefully remove one Agent (elastic scale-down).

        The agent stays on the departing list until it has drained its
        edges and detached — :meth:`consistent` must keep counting its
        in-flight migration traffic even though it is no longer a
        member (a chaos-delayed migrate batch from a departing agent
        must not race a mid-run resume)."""
        agent = self.agents.pop(agent_id)
        self._departing.append(agent)
        agent.initiate_leave()
        if settle:
            self.settle()

    def crash_agent(self, agent_id: Optional[int] = None) -> int:
        """Abruptly kill one Agent (no drain, no goodbye — §fault model).

        The victim's endpoint vanishes from the fabric mid-flight:
        pending retransmissions from it are cancelled, messages to it
        are abandoned by the reliable transport, and nothing it held
        in memory survives.  Recovery is driven by the failure detector
        (heartbeat leases) and the durable checkpoint/WAL side-channel.

        Picks a seeded-random victim when ``agent_id`` is None; returns
        the crashed agent's id.
        """
        if not self.agents:
            raise RuntimeError("no live agents to crash")
        if agent_id is None:
            agent_id = int(self._crash_rng.choice(sorted(self.agents)))
        agent = self.agents.pop(agent_id)
        agent.crashed = True
        self.network.detach_abrupt(agent.address)
        self._crashed[agent_id] = agent
        self.recovery_log.append(
            {"event": "crash", "agent_id": agent_id, "time": round(self.kernel.now, 9)}
        )
        return agent_id

    def replace_crashed_agent(
        self,
        crashed_id: int,
        run_id: Optional[int] = None,
        step: Optional[int] = None,
    ) -> Agent:
        """Bring up a replacement for a crashed Agent.

        The replacement restores the victim's durable state (latest
        checkpoint + WAL replay; rolled back to the ``(run_id, step)``
        value checkpoint when given) and rejoins the directory under
        the *victim's own agent id* (with a fresh fabric address).
        Reusing the id keeps the consistent-hash ring — and therefore
        the edge partition — bit-identical to the pre-crash placement:
        the restored edges are exactly the edges it owns, no
        re-homing migration runs, and the data plane's canonical
        reductions regroup identically to a never-crashed cluster.
        The durable slot carries over with the id (the replacement
        re-snapshots into it after the restore), so it is *not*
        forgotten here.
        """
        crashed = self._crashed.pop(crashed_id, None)
        node = crashed.node if crashed is not None else None
        weight = crashed.weight if crashed is not None else 1.0
        restore = (run_id, step) if run_id is not None and step is not None else None
        agent = self.add_agent(
            node=node,
            settle=False,
            weight=weight,
            recover_from=crashed_id,
            restore_checkpoint=restore,
            agent_id=crashed_id,
        )
        self.recovery_log.append(
            {
                "event": "replace",
                "crashed": crashed_id,
                "replacement": agent.agent_id,
                "restored_step": step,
                "wal_replayed": agent.metrics.wal_records_replayed,
                "edges_restored": agent.total_edges,
            }
        )
        return agent

    def bump_incarnation(self) -> int:
        """Advance the recovery incarnation (fences stale data traffic)."""
        self._incarnation += 1
        return self._incarnation

    def scale_to(self, n_agents: int, settle: bool = True) -> None:
        """Scale the cluster up or down to ``n_agents`` total Agents.

        Scale-down removes uniformly random Agents (Figure 16 removes
        "a random one"); scale-up packs new Agents onto nodes at the
        configured per-node density.
        """
        if n_agents < 1:
            raise ValueError(f"cannot scale below one agent, got {n_agents}")
        while len(self.agents) < n_agents:
            self.add_agent(settle=False)
        while len(self.agents) > n_agents:
            victim = int(self._scale_rng.choice(sorted(self.agents)))
            self.remove_agent(victim, settle=False)
        if settle:
            self.settle()

    def rebalance(self, weights: Dict[int, float], settle: bool = True) -> None:
        """Adopt a ring re-weight plan (load-adaptive repartitioning).

        The lead directory adopts the plan exactly like a membership
        change — term-fenced, epoch-bumping, broadcast at once — and
        every agent that observes the new weights re-homes its
        misplaced edges over the existing EDGE_MIGRATE path.  With
        ``settle`` the call returns only once migration traffic has
        drained; pass ``settle=False`` mid-run and poll
        :meth:`consistent` instead (the engine's suspension hook does).
        """
        self.lead.adopt_rebalance(weights)
        if settle:
            self.settle()

    def current_weights(self) -> Dict[int, float]:
        """Ring weight per live agent (1.0 unless re-weighted)."""
        weights = self.lead.state.weights
        return {aid: float(weights.get(aid, 1.0)) for aid in sorted(self.agents)}

    def settle(self, max_events: int = 50_000_000) -> None:
        """Run the simulator until the system is quiescent."""
        self.kernel.run_until_idle(max_events=max_events)

    # ------------------------------------------------------------------
    # streaming ingest
    # ------------------------------------------------------------------

    def new_streamer(self, node: int = 0) -> Streamer:
        streamer = Streamer(
            self.network,
            self.config,
            self._next_streamer_id,
            node,
            self.directory_for(self._next_streamer_id).address,
        )
        self._next_streamer_id += 1
        self.streamers.append(streamer)
        self.settle()  # pick up the current directory state
        return streamer

    def new_client(self, node: int = 0) -> ClientProxy:
        client = ClientProxy(
            self.network,
            self.config,
            self._next_client_id,
            node,
            self.directory_for(self._next_client_id).address,
            master_address=self.master.address,
        )
        self._next_client_id += 1
        self.clients.append(client)
        self.settle()
        return client

    def ingest(self, batch: EdgeBatch, n_streamers: int = 1) -> Dict[str, float]:
        """Stream a change batch into the cluster and wait for full
        acknowledgement.

        Returns timing/throughput figures in *simulated* time — the
        quantities Figure 14 reports.
        """
        while len(self.streamers) < n_streamers:
            self.new_streamer(node=len(self.streamers) % max(self.config.nodes, 1))
        parts = batch.split(n_streamers)
        start = self.kernel.now
        done_at: List[float] = []
        for streamer, part in zip(self.streamers[:n_streamers], parts):
            streamer.stream_batch(part, on_complete=done_at.append)
        self.settle()
        if len(done_at) != n_streamers:
            raise RuntimeError(
                f"ingest incomplete: {len(done_at)}/{n_streamers} streamers finished"
            )
        elapsed = max(done_at) - start if done_at else 0.0
        tracer = self.network.tracer
        if tracer is not None:
            tracer.complete(
                "cluster",
                "ingest",
                "run",
                start,
                self.kernel.now,
                {"edges": len(batch), "streamers": n_streamers},
            )
        return {
            "edges": float(len(batch)),
            "sim_seconds": elapsed,
            "edges_per_second": len(batch) / elapsed if elapsed > 0 else float("inf"),
        }

    def flush_sketches(self) -> None:
        """Force all agents' degree deltas into the global sketch and
        broadcast (done before runs so placement sees fresh degrees)."""
        for agent in sorted_agents(self.agents):
            agent.flush_sketch()
        self.settle()
        # The lead batches sketch broadcasts; force one out if dirty.
        self.lead._sketch_broadcast_due()
        self.settle()

    def collect_metrics(self) -> Dict[int, dict]:
        """Have every agent report metrics; return the directory view.

        This is the in-protocol path (§3.4.3) — metric snapshots travel
        as METRIC_REPORT messages to each agent's Directory, and the
        union of the directories' stores is returned.
        """
        for agent in sorted_agents(self.agents):
            agent.report_metrics()
        self.settle()
        merged: Dict[int, dict] = {}
        for directory in self.directories:
            merged.update(directory.metric_store)
        # Autoscaling must never size the cluster off ghosts: drop
        # snapshots from agents that are suspected, evicted, or crashed
        # (a dead agent's last report would otherwise linger in a
        # non-lead directory's store forever).
        live = set(self.agents)
        suspected = self.lead._suspected
        return {
            agent_id: snap
            for agent_id, snap in merged.items()
            if agent_id in live and agent_id not in suspected
        }

    def collect_client_metrics(self) -> Dict[str, float]:
        """Sum the serving-plane counters over every client proxy.

        Proxies are purely local entities (no METRIC_REPORT protocol
        leg), so this is a direct aggregation rather than a directory
        round-trip like :meth:`collect_metrics`.
        """
        merged: Dict[str, float] = {}
        for client in self.clients:
            for key, value in client.serving_metrics().items():
                merged[key] = merged.get(key, 0) + value
        return merged

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def edge_loads(self) -> Dict[int, int]:
        """Resident edge copies per live agent (load-balance views)."""
        return {aid: agent.total_edges for aid, agent in sorted(self.agents.items())}

    def total_resident_edges(self) -> int:
        return sum(a.total_edges for a in self.agents.values())

    def directory_version(self) -> int:
        return self.lead.state.version

    def consistent(self) -> bool:
        """Whether every live agent has adopted the latest directory
        state and has no migration traffic outstanding.

        Departing agents count until they detach: a graceful leaver
        only disconnects once its edges have drained *and* every
        migrate batch is acknowledged, so an attached leaver means
        migration traffic may still be in flight."""
        self._departing = [
            a for a in self._departing if self.network.is_attached(a.address)
        ]
        if self._departing:
            return False
        fence = self.lead.state.fence
        for agent in self.agents.values():
            if agent.dstate is None or agent.dstate.fence != fence:
                return False
            if agent._migration_acks_pending != 0:
                return False
        return True


def sorted_agents(agents: Dict[int, Agent]) -> List[Agent]:
    """Agents in id order (deterministic iteration)."""
    return [agents[k] for k in sorted(agents)]
