"""Cluster-wide configuration.

Everything a Participant needs to agree on with every other Participant
is fixed here: the hash function, the virtual-agent factor, sketch
dimensions, and the replication threshold.  In the real system these are
compile-time CONFIG flags (Appendix); changing one requires the whole
cluster to share it, which is why they are configuration rather than
directory state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.costmodel import CostModel, DEFAULT_COSTS
from repro.hashing.hashes import HASH_FUNCTIONS
from repro.net.latency import TransportModel


@dataclass
class ClusterConfig:
    """Shared configuration for one ElGA cluster.

    Parameters mirror the paper's defaults scaled to this repo's graph
    sizes.  The paper replicates vertices above an estimated degree of
    10⁷ on graphs of 10⁹–10¹¹ edges; at our ~10⁻⁴ scale the equivalent
    default threshold is ~10³.

    Attributes
    ----------
    nodes:
        Number of physical machines (the paper's cluster has 64).
    agents_per_node:
        Agents per machine — one per core in the paper (32).
    hash_name:
        Key of :data:`repro.hashing.hashes.HASH_FUNCTIONS` (Figure 5;
        ``wang`` is the paper's choice).
    virtual_factor:
        Virtual agents per Agent (Figure 6; 100).
    sketch_width, sketch_depth:
        CountMinSketch dimensions (Figure 7; the paper uses width
        ~10^4.2 with a high threshold).
    replication_threshold:
        Estimated degree above which a vertex splits across Agents.
    n_directories:
        Directory servers; Participants spread across them.
    sketch_broadcast_interval:
        Minimum simulated seconds between directory broadcasts caused
        by sketch deltas alone (membership changes broadcast at once).
    seed:
        Experiment root seed (drives every entity's RNG stream).
    reliable_transport:
        Run the fabric in reliable mode (sequenced + acknowledged +
        retransmitted delivery).  Off by default: the perfect simulated
        fabric needs none of it, and classic benchmarks keep their
        exact traffic counts.  Chaos runs (an installed ``FaultPlan``)
        switch it on so dropped messages are recovered rather than
        deadlocking the barrier protocol.
    retry_timeout, retry_backoff, retry_timeout_cap, max_retries:
        Reliable-mode retransmission policy (initial timeout seconds,
        exponential factor, timeout ceiling, give-up bound).
    heartbeat_interval:
        Simulated seconds between an Agent's HEARTBEAT pushes to its
        Directory while a synchronous run is live.  ``0`` disables
        failure detection entirely (the default: classic benchmarks
        keep their exact traffic counts, and a perfect fabric can
        never lose an agent).
    lease_timeout:
        How long a Directory lets an agent's liveness lease go stale
        before suspecting it.  Must exceed ``heartbeat_interval`` when
        detection is enabled.
    checkpoint_every:
        Take a coordinated value checkpoint every N supersteps during a
        synchronous run.  ``0`` disables checkpointing; a crash then
        degrades to WAL-only recovery (the run restarts from persisted
        pre-run state instead of rolling back to a mid-run barrier).
    coalescing:
        Data-plane packet coalescing: buffer every VERTEX_MSG /
        REPLICA_SYNC / REPLICA_VALUE emission of a round per
        destination agent and ship one struct-of-arrays packet per
        (destination, packet type) once the replica choreography for
        the round has resolved.  Coalescing also switches incoming
        message folding to the two-level canonical reduction (each
        round-packet reduces to one partial per destination vertex;
        partials then fold in (dst, value)-sorted order), which keeps
        results bit-identical regardless of fabric delivery order.
        Off = the seed's packet-per-emission behaviour.
    combining:
        Sender-side message combining (§3.4: aggregators are
        commutative/associative precisely so replicas can
        pre-aggregate): perform the first level of the canonical
        reduction on the *sender* before the packet ships, so one
        value per destination vertex crosses the fabric.  The receiver
        would have folded the identical packet contents in the
        identical order, so results are bit-identical with combining
        on or off.  Requires ``coalescing`` (combining an arbitrary
        per-emission packet would make the reduction tree depend on
        emission timing).
    ack_batch_window:
        Simulated seconds a receiver accrues VERTEX_MSG_ACK credits
        before flushing one cumulative ack (``count`` = packets
        covered) per (sender, incarnation).  ``0`` acks every packet
        individually (the seed behaviour).  Only applies while
        ``coalescing`` is on.
    tracing:
        Attach a :class:`~repro.obs.trace.Tracer` to the fabric:
        every entity records spans (superstep compute, flush, barrier
        wait, checkpoint, recovery) and message-causality events on the
        simulated clock.  Off by default — the instrument sites then
        cost one attribute check each, keeping benchmark throughput.
    serving_coalesce_window:
        Simulated seconds a ClientProxy buffers queries before shipping
        the buffered fan-outs, so queries for the same (program, vertex)
        arriving within the window collapse into one fan-out with shared
        reply delivery.  ``0`` dispatches every fan-out immediately
        (queries still join an identical fan-out already in flight).
    serving_cache_ttl:
        Simulated seconds a proxy-side result-cache entry stays fresh.
        Entries are additionally fenced by the directory's placement
        epoch token and the per-program result version, so the TTL only
        bounds staleness the version plane cannot see (it never
        overrides an epoch/version invalidation).  ``0`` disables the
        result cache entirely.
    serving_cache_capacity:
        Maximum (program, vertex) entries a proxy's result cache holds;
        the oldest entry is evicted first (insertion order).
    serving_max_inflight:
        Admission control: maximum queries a proxy will hold open
        (waiting on cache-hit delivery or fan-out replies) at once.
        Excess queries are shed with a retry-after hint instead of
        queueing unboundedly.
    serving_retry_after:
        The retry-after hint (simulated seconds) returned to a shed
        query's submitter.
    serving_snapshot_backoff:
        Simulated seconds a proxy waits before re-issuing a fan-out
        whose replica replies straddled two snapshots (different
        (run_id, step) tags with different values).
    serving_latency_window:
        Per-proxy bound on recorded latency samples (a ring of the most
        recent N); also bounds the shed/retry bookkeeping deques.
    dir_lease_interval:
        Simulated seconds between the lead Directory's DIR_LEASE pushes
        to its peer Directories (the control-plane liveness lease that
        backs lead failover).  ``0`` disables directory failover
        entirely — the default, so single-directory clusters and classic
        benchmarks keep their exact traffic counts.
    dir_lease_timeout:
        How stale a peer lets the lead's lease go before starting an
        election.  Must exceed ``dir_lease_interval`` when failover is
        enabled.  The lowest-index live Directory succeeds (a
        deterministic rule — no randomized votes — so the same seed
        always produces the same term sequence).
    master_query_timeout:
        Simulated seconds a participant waits for a DIRECTORY_ASSIGN
        reply before cancelling the request and re-querying the master
        (exponential backoff up to ``master_query_retries`` attempts).
    master_query_backoff:
        Exponential factor applied to ``master_query_timeout`` between
        re-queries.
    master_query_retries:
        Re-query attempts before a participant gives up re-homing.
    master_restart_delay:
        Simulated seconds after a master crash before the chaos harness
        restarts it (the operator's MTTR in the simulation).
    rebalance_skew_threshold:
        Per-agent load skew (max/mean) below which the rebalance
        planner holds still.  1.0 would chase every wobble; the default
        tolerates 15% imbalance before moving anything.
    rebalance_min_weight, rebalance_max_weight:
        Absolute clamp on planner-emitted ring weights (1.0 is the
        homogeneous default; the clamp keeps a mis-measured agent from
        being starved of keys or handed the whole ring).
    rebalance_max_weight_delta:
        Largest per-member weight change one plan may apply — bounds
        the migration volume a single adoption can trigger.
    """

    nodes: int = 4
    agents_per_node: int = 4
    hash_name: str = "wang"
    virtual_factor: int = 100
    sketch_width: int = 4096
    sketch_depth: int = 8
    replication_threshold: int = 1000
    n_directories: int = 1
    sketch_broadcast_interval: float = 0.05
    sketch_flush_every: int = 512
    seed: int = 0
    reliable_transport: bool = False
    retry_timeout: float = 5e-3
    retry_backoff: float = 2.0
    retry_timeout_cap: float = 0.1
    max_retries: int = 30
    heartbeat_interval: float = 0.0
    lease_timeout: float = 0.025
    checkpoint_every: int = 0
    coalescing: bool = True
    combining: bool = True
    ack_batch_window: float = 2e-5
    tracing: bool = False
    serving_coalesce_window: float = 2e-5
    serving_cache_ttl: float = 5e-3
    serving_cache_capacity: int = 65536
    serving_max_inflight: int = 1024
    serving_retry_after: float = 1e-3
    serving_snapshot_backoff: float = 2e-4
    serving_latency_window: int = 65536
    dir_lease_interval: float = 0.0
    dir_lease_timeout: float = 0.02
    master_query_timeout: float = 2e-3
    master_query_backoff: float = 2.0
    master_query_retries: int = 16
    master_restart_delay: float = 5e-3
    rebalance_skew_threshold: float = 1.15
    rebalance_min_weight: float = 0.25
    rebalance_max_weight: float = 4.0
    rebalance_max_weight_delta: float = 1.0
    transport: TransportModel = field(default_factory=TransportModel.zeromq)
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)

    def __post_init__(self) -> None:
        if self.hash_name not in HASH_FUNCTIONS:
            raise ValueError(
                f"unknown hash {self.hash_name!r}; known: {sorted(HASH_FUNCTIONS)}"
            )
        if self.nodes < 1 or self.agents_per_node < 1:
            raise ValueError("need at least one node and one agent per node")
        if self.n_directories < 1:
            raise ValueError("need at least one directory")
        if self.replication_threshold < 1:
            raise ValueError("replication_threshold must be >= 1")
        if self.retry_timeout <= 0 or self.retry_timeout_cap < self.retry_timeout:
            raise ValueError("retry timeouts must satisfy 0 < timeout <= cap")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.heartbeat_interval < 0:
            raise ValueError("heartbeat_interval must be >= 0")
        if self.heartbeat_interval > 0 and self.lease_timeout <= self.heartbeat_interval:
            raise ValueError("lease_timeout must exceed heartbeat_interval")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.ack_batch_window < 0:
            raise ValueError("ack_batch_window must be >= 0")
        if self.combining and not self.coalescing:
            raise ValueError(
                "combining requires coalescing: without round-buffered "
                "packets the reduction tree would depend on emission timing"
            )
        if self.serving_coalesce_window < 0 or self.serving_cache_ttl < 0:
            raise ValueError("serving windows must be >= 0")
        if self.serving_cache_capacity < 1:
            raise ValueError("serving_cache_capacity must be >= 1")
        if self.serving_max_inflight < 1:
            raise ValueError("serving_max_inflight must be >= 1")
        if self.serving_retry_after <= 0 or self.serving_snapshot_backoff <= 0:
            raise ValueError("serving retry/backoff hints must be > 0")
        if self.serving_latency_window < 1:
            raise ValueError("serving_latency_window must be >= 1")
        if self.dir_lease_interval < 0:
            raise ValueError("dir_lease_interval must be >= 0")
        if self.dir_lease_interval > 0 and self.dir_lease_timeout <= self.dir_lease_interval:
            raise ValueError("dir_lease_timeout must exceed dir_lease_interval")
        if self.master_query_timeout <= 0 or self.master_query_backoff < 1.0:
            raise ValueError("master query retry policy must satisfy timeout > 0, backoff >= 1")
        if self.master_query_retries < 1:
            raise ValueError("master_query_retries must be >= 1")
        if self.master_restart_delay < 0:
            raise ValueError("master_restart_delay must be >= 0")
        if self.rebalance_skew_threshold < 1.0:
            raise ValueError("rebalance_skew_threshold must be >= 1")
        if not 0 < self.rebalance_min_weight <= 1.0 <= self.rebalance_max_weight:
            raise ValueError(
                "rebalance weights must satisfy 0 < min_weight <= 1 <= max_weight"
            )
        if self.rebalance_max_weight_delta <= 0:
            raise ValueError("rebalance_max_weight_delta must be positive")

    @property
    def hash_fn(self) -> Callable:
        """The configured hash function."""
        return HASH_FUNCTIONS[self.hash_name]

    @property
    def total_agents(self) -> int:
        """Initial Agent count (nodes × agents per node)."""
        return self.nodes * self.agents_per_node
