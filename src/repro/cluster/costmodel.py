"""Calibrated per-operation compute costs (simulated seconds).

The simulation executes every algorithm and protocol step exactly, but
charges *time* through these constants instead of measuring the Python
interpreter, so results are deterministic and reflect the mechanisms the
paper attributes performance to (load balance, lookup overhead, message
latency, parallelism) rather than CPython's speed.

Calibration anchors, all taken from the paper itself or the systems it
cites:

* §3.5: MPI ≈ 1 µs, raw TCP ≈ 4 µs, ZeroMQ > 20 µs per send — these
  live in :class:`repro.net.latency.TransportModel`.
* §4.7: Blogel's CSR scan is faster per edge than ElGA's flat hash
  maps, but Blogel only profits from 8 MPI ranks/node while ElGA uses
  every core (32/node); ElGA still wins end-to-end.
* §4.8: GAPbs runs LiveJournal-scale WCC in ~0.94 s including CSR
  build; STINGER's median dynamic batch is ~0.032 s vs ElGA's 0.027 s.
* GraphX carries JVM + Spark stage overheads of tens of seconds per
  run (Figure 15: never under 49.45 s even for one-edge changes).

The absolute values are order-of-magnitude estimates for the paper's
2.1 GHz Xeon E5-2683v4; EXPERIMENTS.md compares shapes, not absolutes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Per-operation simulated compute costs, in seconds."""

    # --- ElGA agent costs -------------------------------------------------
    # Processing one edge in a superstep: flat-hash-map access + message
    # buffer write.  Slower than a CSR scan (Blogel) by design (§4.7).
    elga_edge_op: float = 80e-9
    # One placement lookup: CountMinSketch query (d=8 rows) plus two
    # O(log(P·V)) binary searches (§3.4.1).
    elga_lookup: float = 55e-9
    # One placement lookup served from a participant's epoch-versioned
    # PlacementCache: a hash-probe into a memo table instead of the
    # sketch query + ring searches.  Participants charge hits at this
    # reduced rate and misses at the full ``placement_lookup_cost``;
    # the cache is only consulted while its directory epoch matches, so
    # the answer is bit-identical to the uncached path.
    elga_lookup_cached: float = 8e-9
    # Applying one vertex update / aggregating one received value.
    elga_vertex_op: float = 25e-9
    # Sender-side combining: folding one (dst, val) pair into the
    # per-destination partial before the packet ships.  A streaming
    # ufunc reduction over a sorted buffer — cheaper than the
    # receive-side ``elga_vertex_op`` it replaces (no hash-map probe),
    # and the per-packet ``elga_msg_op`` savings ride on coalescing.
    elga_combine_op: float = 6e-9
    # Ingesting one edge change (hash-map insert + sketch update).
    elga_ingest_op: float = 180e-9
    # Packing/unpacking one aggregated message buffer (per message, the
    # per-value cost rides on bandwidth via message size).
    elga_msg_op: float = 1.5e-6
    # Re-evaluating ownership of one resident edge after a directory
    # update (migration check, §3.4.3).
    elga_migrate_check: float = 60e-9
    # Moving one edge to another agent (erase + buffer write).
    elga_migrate_op: float = 150e-9
    # Serving one client query.
    elga_query_op: float = 1.5e-6
    # One proxy-side serving-cache operation (TTL'd result-cache probe,
    # coalescing-table probe, or cached-reply delivery).  Like
    # ``elga_lookup_cached`` this is a memo-table access, orders of
    # magnitude below the agent-side ``elga_query_op`` it saves — the
    # asymmetry the serving bench's QPS headroom comes from.
    elga_serving_cache_op: float = 2e-7

    # --- Streamer costs -----------------------------------------------------
    # Producing and routing one edge change at a streamer.
    streamer_edge_op: float = 140e-9

    # --- Blogel (C++/MPI BSP, CSR) -------------------------------------------
    # CSR scan + message write per edge; faster than ElGA's hash maps.
    blogel_edge_op: float = 70e-9
    # Receive-side combiner aggregation per incoming edge message.
    blogel_combine_op: float = 25e-9
    blogel_vertex_op: float = 25e-9
    # Per-superstep MPI allreduce term: latency × log2(P) plus a
    # saturation term linear in P (the paper observed allreduces
    # saturating the network past 8 ranks/node).
    blogel_allreduce_base: float = 25e-6
    blogel_allreduce_per_rank: float = 1.2e-6

    # --- GraphX (Spark/JVM) -----------------------------------------------------
    # JVM + RDD overhead per edge per iteration.
    graphx_edge_op: float = 520e-9
    graphx_vertex_op: float = 180e-9
    # Per-iteration stage scheduling + shuffle setup.
    graphx_stage_overhead: float = 0.35
    # Job startup/teardown (executor launch, DAG setup): the reason
    # GraphX never beats ~49 s on Twitter-2010 even for one-edge batches
    # (Figure 15).  Includes graph re-load into RDDs.
    graphx_job_overhead: float = 38.0
    graphx_load_per_edge: float = 7e-9

    # --- Single-node systems (Figure 13) -------------------------------------------
    # STINGER: shared-memory dynamic batch insert + component repair.
    stinger_edge_op: float = 55e-9
    stinger_batch_overhead: float = 0.012
    # GAPbs: CSR build + Shiloach-Vishkin per edge, already amortized
    # over the node's 32 cores.  Calibrated so LiveJournal (~69 M
    # directed edges, ~3 hook/compress passes) lands at the paper's
    # 0.94 s including the CSR build (§4.8).
    gapbs_edge_op: float = 1.2e-9
    gapbs_build_per_edge: float = 3e-9

    # -- derived costs ---------------------------------------------------------

    def sketch_query_cost(self, width: int, depth: int) -> float:
        """Per-query CountMinSketch cost as a function of table size.

        The Figure 7a inflection comes from the sketch falling out of
        cache: each query touches ``depth`` rows, and a row's access
        cost steps up as the row outgrows L1/L2/L3 (per-core slice)
        on the paper's Xeon E5-2683v4.
        """
        row_bytes = width * 8
        if row_bytes <= 32 * 1024:
            per_row = 3e-9
        elif row_bytes <= 256 * 1024:
            per_row = 6e-9
        elif row_bytes <= 2 * 1024 * 1024:
            per_row = 14e-9
        else:
            per_row = 45e-9
        return depth * per_row

    def placement_lookup_cost(
        self, width: int, depth: int, ring_positions: int, cached: bool = False
    ) -> float:
        """One edge-to-Agent resolution: sketch query + two ring
        binary searches of O(log(P · virtual_factor)) (§3.4.1–2).

        With ``cached=True``, the reduced memo-table charge for a
        PlacementCache hit (see ``elga_lookup_cached``) — the only
        simulated-time change the cache introduces.
        """
        if cached:
            return self.elga_lookup_cached
        search = 2 * max(1.0, math.log2(max(ring_positions, 2))) * 1.6e-9
        return self.sketch_query_cost(width, depth) + search

    def combine_cost(self, pairs_in: int) -> float:
        """Sender-side combining charge for pre-reducing ``pairs_in``
        raw (dst, val) pairs into per-destination partials.

        The savings are accounted where they occur: the receiver
        charges ``elga_msg_op`` per *packet* and ``elga_vertex_op``
        per *delivered pair*, both of which shrink when combining and
        coalescing reduce the traffic — so total simulated time
        reflects the smaller wire volume without any special-casing.
        """
        return self.elga_combine_op * pairs_in


DEFAULT_COSTS = CostModel()
"""The calibrated defaults used by all experiments."""
