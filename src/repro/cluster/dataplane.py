"""Data-plane fast path: canonical combining and packet coalescing.

ElGA restricts vertex programs to commutative/associative aggregators
precisely so partial aggregation can happen anywhere in the pipeline
(§3.4).  This module supplies the two pieces the Agent's synchronous
data plane builds on:

* :func:`combine_pairs` — the *canonical per-batch reduction*: fold a
  ``(dst, val)`` multiset into one partial per destination vertex, in
  (dst, val)-lexicographic order, via ``ufunc.at``.  Because the fold
  order is a pure function of the batch *contents*, the result is
  bit-identical no matter where it runs — on the sender before the
  packet ships (combining on) or on the receiver when the packet
  arrives (combining off).  ``ufunc.at`` is deliberate: ``reduceat`` /
  ``ufunc.reduce`` use pairwise summation whose tree shape depends on
  segment lengths, which would break bit-equality between paths.

* :class:`RoundBuffers` — per-(destination agent, packet type) buffers
  that merge every data-plane emission of one superstep round into a
  single struct-of-arrays packet.  Coalescing is what makes the
  *batch boundaries* canonical: a round-packet's contents are exactly
  "everything this sender produced for that destination this round",
  independent of the order replica syncs or values happened to arrive.

Together they give the two-level reduction the Agent relies on for
determinism under chaos: level 1 folds each round-packet to one
partial per vertex (sender- or receiver-side, identically); level 2
folds the partials across senders in (dst, partial)-sorted order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.net.message import PacketType

# Data-plane packet types subject to round coalescing, in the order
# their buffers flush (syncs unblock primaries, values unblock
# replicas, vertex messages ride last).
COALESCED_TYPES = (
    PacketType.REPLICA_SYNC,
    PacketType.REPLICA_VALUE,
    PacketType.VERTEX_MSG,
)


def combine_pairs(
    dst: np.ndarray, val: np.ndarray, ufunc: np.ufunc, identity: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Canonically reduce a (dst, val) multiset to one value per dst.

    Pairs fold in (dst, val)-lexicographic order starting from the
    aggregator identity — the same order the receive-side flush uses —
    so sender-side and receive-side reduction are bit-identical.
    Returns (sorted unique dsts, folded values).
    """
    from repro import kernels

    return kernels.combine_pairs(dst, val, ufunc, identity)


def _merge_field(payloads: List[dict], key: str) -> np.ndarray:
    if len(payloads) == 1:
        return np.asarray(payloads[0][key])
    return np.concatenate([np.asarray(p[key]) for p in payloads])


class RoundBuffers:
    """Per-destination round buffers for data-plane emissions.

    One superstep round's VERTEX_MSG / REPLICA_SYNC / REPLICA_VALUE
    emissions toward the same agent are held here and merged into a
    single struct-of-arrays packet per (destination, packet type) at
    flush time.  ``emissions``/``packets`` counters feed the
    coalescing perf counters.
    """

    def __init__(self) -> None:
        self._buf: Dict[PacketType, Dict[int, List[dict]]] = {
            ptype: {} for ptype in COALESCED_TYPES
        }
        self.emissions = 0

    def add(self, agent_id: int, ptype: PacketType, payload: dict) -> None:
        self._buf[ptype].setdefault(agent_id, []).append(payload)
        self.emissions += 1

    def pending(self, ptype: PacketType) -> bool:
        return bool(self._buf[ptype])

    @property
    def empty(self) -> bool:
        return not any(self._buf[ptype] for ptype in COALESCED_TYPES)

    def clear(self) -> None:
        for ptype in COALESCED_TYPES:
            self._buf[ptype] = {}

    def drain_vertex_msgs(
        self, step: int, round_: int
    ) -> Iterator[Tuple[int, int, dict]]:
        """Yield (agent_id, n_emissions, merged payload) per destination,
        in agent-id order.  The caller combines/sends."""
        buffered = self._buf[PacketType.VERTEX_MSG]
        self._buf[PacketType.VERTEX_MSG] = {}
        for agent_id in sorted(buffered):
            payloads = buffered[agent_id]
            payload = {
                "step": step,
                "round": round_,
                "dst": _merge_field(payloads, "dst").astype(np.int64, copy=False),
                "val": _merge_field(payloads, "val").astype(np.float64, copy=False),
            }
            yield agent_id, len(payloads), payload

    def drain_replica(
        self, ptype: PacketType, step: int, round_: int
    ) -> Iterator[Tuple[int, int, dict]]:
        """Yield merged REPLICA_SYNC / REPLICA_VALUE packets per
        destination, rows in sorted-vertex order (canonical wire form:
        the merged packet does not depend on emission order)."""
        buffered = self._buf[ptype]
        self._buf[ptype] = {}
        value_key = "partials" if ptype == PacketType.REPLICA_SYNC else "values"
        flag_key = "got" if ptype == PacketType.REPLICA_SYNC else "active"
        for agent_id in sorted(buffered):
            payloads = buffered[agent_id]
            verts = _merge_field(payloads, "verts").astype(np.int64, copy=False)
            values = _merge_field(payloads, value_key)
            flags = _merge_field(payloads, flag_key)
            outdeg = _merge_field(payloads, "outdeg")
            order = np.argsort(verts, kind="stable")
            payload = {
                "step": step,
                "round": round_,
                "verts": verts[order],
                value_key: values[order],
                flag_key: flags[order],
                "outdeg": outdeg[order],
            }
            yield agent_id, len(payloads), payload
