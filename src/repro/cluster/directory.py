"""The directory system (§3.3): membership, sketch, and barriers.

Directories broadcast to every Participant the state needed to find any
edge's owner: the Agent list and the degree CountMinSketch — a payload
of O(P + d·w), exactly the paper's bound — plus the batch clock and the
split-vertex registry.  They also coordinate bulk-synchronous barriers
(Figure 2): Agents report ready to their Directory, Directories
re-broadcast readiness among themselves, and when every Agent is ready
the superstep advances.

A single **DirectoryMaster** is the bootstrap service: queried once by
any component to find a Directory, and only again if that Directory
leaves (§3.3).

Internally one directory (index 0, the *lead*) is authoritative for
membership and sketch merging; peers forward joins/leaves/deltas to it
and mirror its state via ``DIRECTORY_SYNC`` — the paper's "all
Directories internally broadcast messages appropriately", specialized
to a hub topology for determinism.

The split-vertex registry is an implementation addition: the paper's
Agents learn replication factors from the sketch alone, but a replica
of a split vertex that happens to hold none of its edges must still
participate in replica synchronization, so the directory broadcast
carries the (small) set of currently-split vertex ids.  This adds
O(#hubs) to the O(P + d·w) broadcast; DESIGN.md discusses the choice.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.net.message import Message, PacketType
from repro.net.sockets import PubSubSocket, ReqRepSocket
from repro.sim.entity import Entity
from repro.sketch.countmin import CountMinSketch


class DirectoryState:
    """One version of the broadcast directory state.

    Treated as immutable by recipients; the lead directory builds a new
    instance for every broadcast.
    """

    __slots__ = (
        "version",
        "batch_id",
        "agents",
        "sketch",
        "split_vertices",
        "weights",
        "epoch",
        "term",
    )

    def __init__(
        self,
        version: int,
        batch_id: int,
        agents: Dict[int, int],
        sketch: CountMinSketch,
        split_vertices: frozenset,
        weights: Optional[Dict[int, float]] = None,
        epoch: Optional[tuple] = None,
        term: int = 0,
    ):
        self.term = term
        self.version = version
        self.batch_id = batch_id
        self.agents = dict(agents)  # agent id -> network address
        self.sketch = sketch
        self.split_vertices = frozenset(split_vertices)
        # Capacity weights (§3.4.2 heterogeneous extension): scale each
        # agent's virtual-position count on every participant's ring.
        self.weights = dict(weights or {})
        # Placement epoch: (membership version, sketch version, split
        # registry size).  Placement is a pure function of this token's
        # underlying state, so participants' placement caches invalidate
        # exactly when it changes — a batch-clock-only broadcast bumps
        # ``version`` but not the epoch, and caches survive it.
        self.epoch = epoch

    @property
    def epoch_token(self) -> tuple:
        """The placement-invalidation key for this state.

        Falls back to the broadcast version (invalidate-per-broadcast,
        always safe) for states built without an explicit epoch.
        """
        if self.epoch is not None:
            return self.epoch
        return ("v", self.version)

    @property
    def nbytes(self) -> int:
        """Broadcast size: O(P) addresses + O(d·w) sketch + split set."""
        return (
            16 * len(self.agents)
            + 8 * len(self.weights)
            + self.sketch.nbytes
            + 8 * len(self.split_vertices)
            + 16
        )

    def agent_ids(self) -> List[int]:
        return sorted(self.agents)

    @property
    def fence(self) -> Tuple[int, int]:
        """The adoption fence: states order by (term, version).

        A freshly elected lead's first broadcast may carry a *lower*
        version than the dead lead's last one (sync messages can be
        lost), but its higher term must still win everywhere.
        """
        return (self.term, self.version)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirectoryState(t{self.term}/v{self.version}, batch={self.batch_id}, "
            f"P={len(self.agents)}, split={len(self.split_vertices)})"
        )


class DirectoryMaster(Entity):
    """Bootstrap service: hands out a Directory address on request.

    The master itself is reconstructable: its registry is soft state
    rebuilt from the directories' periodic ``DIRECTORY_REGISTER``
    heartbeats, so a restarted (or standby) master converges on the
    live directory set without any handoff.  ``DIRECTORY_QUERY`` never
    raises — an empty (or fully dead) registry answers with a
    retry-after hint so participants back off and re-query.
    """

    def __init__(self, network, seed: int = 0, retry_after: float = 1e-3):
        super().__init__(network, "directory-master", seed)
        self._directories: List[int] = []
        self._next = 0
        self.retry_after = retry_after

    def register_directory(self, address: int) -> None:
        """Called by the cluster when a Directory comes up (idempotent)."""
        if address not in self._directories:
            self._directories.append(address)

    def unregister_directory(self, address: int) -> None:
        self._directories = [a for a in self._directories if a != address]
        # Clamp the round-robin cursor: stale modulo state over a shorter
        # list would skew assignment toward the survivors after the gap.
        if self._directories:
            self._next %= len(self._directories)
        else:
            self._next = 0

    def handle_message(self, message: Message) -> None:
        if message.ptype == PacketType.DIRECTORY_QUERY:
            live = [a for a in self._directories if self.network.is_attached(a)]
            if not live:
                # Nothing to assign (bootstrap race, or every registered
                # directory is dead): tell the requester when to retry
                # instead of crashing the sim (registration heartbeats
                # will repopulate the registry).
                ReqRepSocket.reply_to(
                    self.network,
                    message,
                    PacketType.DIRECTORY_ASSIGN,
                    {"retry_after": self.retry_after},
                )
                return
            address = live[self._next % len(live)]
            self._next += 1
            ReqRepSocket.reply_to(self.network, message, PacketType.DIRECTORY_ASSIGN, address)
        elif message.ptype == PacketType.DIRECTORY_REGISTER:
            self.register_directory(int(message.payload["address"]))
        elif message.ptype == PacketType.AGENT_SUSPECT:
            # Failure-detection arbiter: the lead suspects an agent whose
            # lease lapsed; the master confirms the eviction iff the
            # agent's endpoint is actually gone (crashed), protecting
            # slow-but-alive agents from false suspicion.
            payload = message.payload
            evict = not self.network.is_attached(int(payload["address"]))
            verdict = Message(
                ptype=PacketType.EVICT_CONFIRM,
                payload={"agent_id": int(payload["agent_id"]), "evict": evict},
            )
            verdict.src = self.address
            verdict.dst = message.src
            self.network.send(verdict)
        else:
            raise ValueError(f"DirectoryMaster got unexpected {message.ptype.name}")


class Directory(Entity):
    """One directory server.

    Parameters
    ----------
    network, config:
        Fabric and shared cluster configuration.
    index:
        Directory index; index 0 is the lead.
    """

    def __init__(self, network, config: ClusterConfig, index: int):
        super().__init__(network, f"directory-{index}", config.seed)
        self.config = config
        self.index = index
        self.is_lead = index == 0
        self.pubsub = PubSubSocket(self)
        self.peers: List[int] = []  # other directories' addresses (lead first)
        self.state = DirectoryState(
            version=0,
            batch_id=0,
            agents={},
            sketch=CountMinSketch(config.sketch_width, config.sketch_depth, seed=config.seed),
            split_vertices=frozenset(),
        )
        self._weights: Dict[int, float] = {}
        # Placement-epoch components (lead only; peers mirror the lead's
        # epoch via DIRECTORY_SYNC).  Membership bumps on join/leave,
        # sketch on every delta merge; the split component is the
        # (monotone) registry size at broadcast time.
        self._membership_version = 0
        self._sketch_version = 0
        # Latest metric snapshot per agent (§3.4.3: "Metrics are passed
        # to Directories"); autoscalers read these.
        self.metric_store: Dict[int, dict] = {}
        # Serving plane: per-program result versions.  The lead bumps a
        # program's version whenever its results may have changed
        # (RUN_START, each completed barrier round, recovery) and
        # broadcasts a RESULT_NOTICE; peers merge and re-publish to
        # their own subscribers (client proxies), whose result caches
        # fence entries on the version they were filled under.
        self.result_versions: Dict[str, int] = {}
        self._active_program: Optional[str] = None
        # Lead-only aggregation state.
        self._pending_split: Set[int] = set()
        self._sketch_dirty = False
        self._last_sketch_broadcast = -1e30
        self._broadcast_scheduled = False
        self._ready: Dict[int, Dict[int, dict]] = {}  # step -> agent id -> stats
        # Highest barrier round already completed this run.  Rounds are
        # monotone within a run, so a READY for a completed round is a
        # stale duplicate and must not re-trigger the controller.
        self._ready_done = -1
        self._membership_dirty = False
        # Engine hook: called by the lead as run_controller(round, step,
        # stats) when all agents report ready.  Returns the next
        # SUPERSTEP_ADVANCE payload, or None to hold the barrier (used
        # for mid-run elastic scaling).
        self.run_controller: Optional[Callable[[int, int, dict], Optional[dict]]] = None
        # Failure detection (lead only).  Leases map agent id -> last
        # heartbeat time; suspicion is arbitrated by the master (whose
        # address the cluster wires in) before eviction.  While
        # ``_recovering`` the barrier is held shut: no READY bucket may
        # complete until the engine finishes reshaping the run.
        self.master_address: Optional[int] = None
        self.on_eviction: Optional[Callable[[int], None]] = None
        self._leases: Dict[int, float] = {}
        # Suspected agents, keyed to when the AGENT_SUSPECT was last
        # sent: if the master's verdict never lands (it crashed, or the
        # confirm was addressed to a dead lead), the probe is re-sent
        # after a lease-timeout so arbitration survives master loss.
        self._suspected: Dict[int, float] = {}
        self._lease_pending = False
        self._recovering = False
        # Control-plane fault tolerance.  ``term`` is the monotone
        # election counter fencing all directory-originated traffic
        # (the control-plane analogue of the data plane's incarnation
        # numbers).  ``directory_addresses`` maps every directory index
        # to its address (wired by the cluster) so a candidate can run
        # the deterministic lowest-index-live succession rule locally.
        self.term = 0
        self.directory_addresses: Dict[int, int] = {}
        self.on_lead_change: Optional[Callable[["Directory"], None]] = None
        # Set by the cluster's crash_directory: a dead process neither
        # handles messages nor fires its timer chains (the kernel still
        # runs already-scheduled callbacks; they must no-op).
        self.crashed = False
        # Lead side: when it last heard a DIR_LEASE_ACK from each peer.
        self._peer_seen: Dict[int, float] = {}
        self._dir_lease_pending = False
        # Peer side: when it last heard *anything* from the lead, plus
        # the mirrored control tail used to reconstruct barrier state on
        # election — the last lead control broadcast (re-sent verbatim
        # under the new term so partially-delivered broadcasts unstick)
        # and the highest barrier round it implies was completed.
        self._lead_seen = 0.0
        self._election_pending = False
        self._mirrored_ctrl: Optional[Tuple[PacketType, object]] = None
        self._mirrored_ready_done = -1
        self._mirrored_run_live = False
        self._register_pending = False

    # -- message dispatch -----------------------------------------------------

    def handle_message(self, message: Message) -> None:
        ptype = message.ptype
        if self.crashed:
            return  # racing in-flight delivery to a dead process
        if not self._admit_term(message):
            return
        if not self.is_lead and self.peers and message.src == self.peers[0]:
            self._lead_seen = self.now
        if ptype == PacketType.DIR_LEASE:
            # Lead's lease renewal: acknowledge so the lead can prune
            # dead peers from its broadcast list.
            ack = Message(
                ptype=PacketType.DIR_LEASE_ACK,
                payload={"index": self.index},
                term=self.term,
            )
            ack.src = self.address
            ack.dst = message.src
            self.network.send(ack)
            return
        if ptype == PacketType.DIR_LEASE_ACK:
            self._peer_seen[message.src] = self.now
            return
        if ptype == PacketType.SUBSCRIBE:
            if isinstance(message.payload, dict) and message.payload.get("remove"):
                self.pubsub.unsubscribe(message.src)
            else:
                self.pubsub.subscribe(message.src, message.payload)
                # Late joiners immediately get the current state so they
                # can start placing edges without waiting for churn.
                if (
                    PacketType.RESULT_NOTICE in message.payload
                    and self.result_versions
                ):
                    # Seed a late-joining proxy with the current result
                    # versions so its first cache fills are fenced
                    # against everything that already ran.
                    seeded = Message(
                        ptype=PacketType.RESULT_NOTICE,
                        payload={"versions": dict(self.result_versions)},
                        term=self.term,
                    )
                    seeded.src = self.address
                    seeded.dst = message.src
                    self.network.send(seeded)
                if (
                    PacketType.DIRECTORY_UPDATE in message.payload
                    and self.state.version > 0
                ):
                    # The lead's state.sketch is the live master copy,
                    # mutated by future delta merges — hand late joiners
                    # a snapshot, never the live object.
                    payload = self._snapshot_state() if self.is_lead else self.state
                    update = Message(
                        ptype=PacketType.DIRECTORY_UPDATE,
                        payload=payload,
                        term=payload.term,
                    )
                    update.src = self.address
                    update.dst = message.src
                    self.network.send(update)
        elif ptype == PacketType.AGENT_JOIN:
            self._to_lead(message)
        elif ptype == PacketType.AGENT_LEAVE:
            self._to_lead(message)
        elif ptype == PacketType.SKETCH_DELTA:
            self._to_lead(message)
        elif ptype == PacketType.SPLIT_REPORT:
            self._to_lead(message)
        elif ptype == PacketType.REBALANCE_PLAN:
            self._to_lead(message)
        elif ptype == PacketType.HEARTBEAT:
            self._to_lead(message)
        elif ptype == PacketType.EVICT_CONFIRM:
            self._on_evict_confirm(message.payload)
        elif ptype == PacketType.AGENT_READY:
            self._on_agent_ready(message)
        elif ptype == PacketType.READY_REBROADCAST:
            self._on_ready_rebroadcast(message)
        elif ptype == PacketType.METRIC_REPORT:
            payload = message.payload
            self.metric_store[int(payload["agent_id"])] = dict(payload["metrics"])
        elif ptype == PacketType.DIRECTORY_SYNC:
            self._on_sync(message)
        elif ptype in (
            PacketType.SUPERSTEP_ADVANCE,
            PacketType.RUN_START,
            PacketType.RECOVER,
        ):
            # Lead-originated control, re-published to local subscribers.
            # Mirror the control tail: on election the successor re-sends
            # this broadcast verbatim under the new term, so agents a
            # partial delivery left behind can proceed.
            self._mirror_control(ptype, message.payload)
            self.pubsub.publish(ptype, message.payload, term=message.term)
        elif ptype == PacketType.RESULT_NOTICE:
            # Lead-originated version bump: merge (so late SUBSCRIBE
            # seeding works from any directory) and re-publish.
            for prog, version in message.payload["versions"].items():
                if version > self.result_versions.get(prog, 0):
                    self.result_versions[prog] = version
            self.pubsub.publish(ptype, message.payload, term=message.term)
        else:
            raise ValueError(f"Directory got unexpected {ptype.name}")

    def _admit_term(self, message: Message) -> bool:
        """Fence directory-origin traffic by term; adopt newer terms.

        Returns ``False`` for stale-term messages (dropped and counted).
        A higher term on any message means a successor was elected; an
        old lead that somehow survived steps down immediately
        (split-brain safety — in the simulation a replaced lead is
        always detached, but the rule costs nothing and is load-bearing
        the moment partitions can heal).
        """
        term = message.term
        if term is None:
            return True
        if term < self.term:
            self.network.stats.stale_term_drops += 1
            return False
        if term > self.term:
            self.term = term
            if self.is_lead:
                self._step_down(message.src)
            elif self.peers and self.peers[0] != message.src:
                self.peers = [message.src]
        return True

    def _mirror_control(self, ptype: PacketType, payload) -> None:
        self._mirrored_ctrl = (ptype, payload)
        if ptype == PacketType.RUN_START:
            self._mirrored_ready_done = -1
            self._mirrored_run_live = True
            program = getattr(payload, "program", None)
            self._active_program = getattr(program, "name", None)
            self._ensure_election_watch()
            self._ensure_master_register()
        elif ptype == PacketType.SUPERSTEP_ADVANCE:
            phase = payload.get("phase") if isinstance(payload, dict) else None
            if phase == "halt":
                self._mirrored_run_live = False
            else:
                round_id = int(payload.get("round", 0))
                # The lead broadcast round N only after completing
                # barrier round N-1.
                self._mirrored_ready_done = max(self._mirrored_ready_done, round_id - 1)

    def _step_down(self, new_lead: int) -> None:
        """Demote this directory: a higher-term lead exists."""
        self.is_lead = False
        self.run_controller = None
        self.on_eviction = None
        self._ready.clear()
        self.peers = [new_lead]
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name, "step_down", "control", {"term": self.term}
            )

    def _to_lead(self, message: Message) -> None:
        """Handle membership/sketch traffic at the lead, or forward it."""
        if self.is_lead:
            handler = {
                PacketType.AGENT_JOIN: self._lead_join,
                PacketType.AGENT_LEAVE: self._lead_leave,
                PacketType.SKETCH_DELTA: self._lead_sketch_delta,
                PacketType.SPLIT_REPORT: self._lead_split_report,
                PacketType.REBALANCE_PLAN: self._lead_rebalance,
                PacketType.HEARTBEAT: self._lead_heartbeat,
            }[message.ptype]
            handler(message.payload)
        else:
            fwd = Message(ptype=message.ptype, payload=message.payload)
            fwd.src = self.address
            fwd.dst = self.peers[0]  # lead is always peers[0] for non-leads
            self.network.send(fwd)

    # -- lead: membership and sketch ---------------------------------------------

    def _lead_join(self, payload: dict) -> None:
        agents = dict(self.state.agents)
        agent_id = int(payload["agent_id"])
        address = int(payload["address"])
        if agents.get(agent_id) == address:
            return  # duplicate JOIN: membership already reflects it
        agents[agent_id] = address
        weight = float(payload.get("weight", 1.0))
        if weight != 1.0:
            self._weights[agent_id] = weight
        self._membership_version += 1
        self._replace_state(agents=agents, bump_batch=False)
        self._broadcast_now()

    def _lead_leave(self, payload: dict) -> None:
        agents = dict(self.state.agents)
        if agents.pop(int(payload["agent_id"]), None) is None:
            return  # duplicate LEAVE: the agent is already gone
        self._weights.pop(int(payload["agent_id"]), None)
        self._membership_version += 1
        self._replace_state(agents=agents, bump_batch=False)
        self._broadcast_now()

    def _lead_rebalance(self, payload) -> None:
        """Adopt a planner re-weight plan (lead only).

        Exactly the shape of a membership change: the weight map merges
        into lead-only state, the membership version bumps (so every
        participant's placement cache invalidates — weights change the
        ring), and the new state broadcasts at once under the current
        term.  Adoption is idempotent: a plan that would leave every
        weight unchanged (a duplicate delivery, or a controller-replay
        after an election) neither bumps the epoch nor re-broadcasts.
        """
        weights = payload["weights"] if isinstance(payload, dict) else payload
        members = set(self.state.agents)
        merged = dict(self._weights)
        for agent_id, weight in weights.items():
            agent_id = int(agent_id)
            if agent_id not in members:
                continue  # stale plan naming a departed member
            weight = float(weight)
            if weight <= 0:
                raise ValueError(f"rebalance weight must be positive, got {weight}")
            if weight == 1.0:
                merged.pop(agent_id, None)
            else:
                merged[agent_id] = weight
        if merged == self._weights:
            return
        self._weights = merged
        self.network.stats.rebalance_adoptions += 1
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name,
                "rebalance_adopt",
                "control",
                {"weights": {k: merged.get(k, 1.0) for k in sorted(members)}},
            )
        self._membership_version += 1
        self._replace_state(agents=self.state.agents, bump_batch=False)
        self._broadcast_now()

    def adopt_rebalance(self, weights: Dict[int, float]) -> None:
        """Direct-call form of a REBALANCE_PLAN adoption (lead only)."""
        if not self.is_lead:
            raise RuntimeError("rebalance plans are adopted by the lead directory")
        self._lead_rebalance({"weights": weights})

    def _lead_sketch_delta(self, delta: CountMinSketch) -> None:
        # Bump at merge time, not broadcast time: the live master sketch
        # changes here, so any state snapshot taken from now on (e.g. a
        # late-joiner SUBSCRIBE reply) must carry a new epoch.
        self.state.sketch.merge(delta)
        self._sketch_version += 1
        self._sketch_dirty = True
        self._maybe_schedule_sketch_broadcast()

    def _lead_split_report(self, payload) -> None:
        new = {int(v) for v in np.atleast_1d(payload)}
        if not new - set(self.state.split_vertices) - self._pending_split:
            return
        self._pending_split |= new
        self._sketch_dirty = True
        self._maybe_schedule_sketch_broadcast()

    def _maybe_schedule_sketch_broadcast(self) -> None:
        if self._broadcast_scheduled:
            return
        wait = max(
            0.0,
            self._last_sketch_broadcast + self.config.sketch_broadcast_interval - self.now,
        )
        self._broadcast_scheduled = True
        self.kernel.schedule(wait, self._sketch_broadcast_due)

    def _sketch_broadcast_due(self) -> None:
        self._broadcast_scheduled = False
        if self.crashed:
            return
        if not self._sketch_dirty:
            return
        self._last_sketch_broadcast = self.now
        self._sketch_dirty = False
        self._replace_state(agents=self.state.agents, bump_batch=False)
        self._broadcast_now()

    def _replace_state(self, agents: Dict[int, int], bump_batch: bool) -> None:
        split = frozenset(self.state.split_vertices | self._pending_split)
        self._pending_split.clear()
        self.state = DirectoryState(
            version=self.state.version + 1,
            batch_id=self.state.batch_id + (1 if bump_batch else 0),
            agents=agents,
            sketch=self.state.sketch,  # lead keeps the live master copy
            split_vertices=split,
            weights=self._weights,
            # The term leads the epoch token: a successor re-derives its
            # epoch counters from the mirror, and without the term a
            # re-derived token could collide with a pre-crash epoch of
            # different content, poisoning placement caches.
            epoch=(self.term, self._membership_version, self._sketch_version, len(split)),
            term=self.term,
        )

    def advance_batch_clock(self) -> int:
        """Bump the monotonically increasing batch id (lead only)."""
        if not self.is_lead:
            raise RuntimeError("batch clock is owned by the lead directory")
        self._replace_state(agents=self.state.agents, bump_batch=True)
        self._broadcast_now()
        return self.state.batch_id

    def _snapshot_state(self) -> DirectoryState:
        """An immutable copy of the lead's state, stamped with the epoch
        describing its contents *right now* (the live sketch may have
        merged deltas since ``self.state`` was built)."""
        return DirectoryState(
            version=self.state.version,
            batch_id=self.state.batch_id,
            agents=self.state.agents,
            sketch=self.state.sketch.copy(),
            split_vertices=self.state.split_vertices,
            weights=self.state.weights,
            epoch=(
                self.term,
                self._membership_version,
                self._sketch_version,
                len(self.state.split_vertices),
            ),
            term=self.term,
        )

    def _broadcast_now(self) -> None:
        """Sync peers and publish the new state to local subscribers."""
        snapshot = self._snapshot_state()
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name,
                "directory_broadcast",
                "control",
                {
                    "version": snapshot.version,
                    "agents": len(snapshot.agents),
                    "batch_id": snapshot.batch_id,
                },
            )
        for peer in self.peers:
            msg = Message(
                ptype=PacketType.DIRECTORY_SYNC, payload=snapshot, term=self.term
            )
            msg.src = self.address
            msg.dst = peer
            self.network.send(msg)
        self.pubsub.publish(PacketType.DIRECTORY_UPDATE, snapshot, term=self.term)

    def _on_sync(self, message: Message) -> None:
        incoming: DirectoryState = message.payload
        if incoming.fence <= self.state.fence:
            return  # stale
        self.state = incoming
        self.pubsub.publish(
            PacketType.DIRECTORY_UPDATE, incoming, term=incoming.term
        )

    # -- barrier protocol (Figure 2) ------------------------------------------------

    def _on_agent_ready(self, message: Message) -> None:
        payload = message.payload
        if self.is_lead:
            self._lead_collect_ready(int(payload["agent_id"]), payload)
        else:
            fwd = Message(ptype=PacketType.READY_REBROADCAST, payload=payload)
            fwd.src = self.address
            fwd.dst = self.peers[0]
            self.network.send(fwd)

    def _on_ready_rebroadcast(self, message: Message) -> None:
        if not self.is_lead:
            raise RuntimeError("only the lead aggregates readiness")
        payload = message.payload
        self._lead_collect_ready(int(payload["agent_id"]), payload)

    def _lead_collect_ready(self, agent_id: int, payload: dict) -> None:
        if self._recovering:
            # An eviction shrank membership mid-round; letting the stale
            # bucket auto-complete would advance the barrier under the
            # engine's feet.  READYs for the recovered run restart from
            # the resume (or re-issued RUN_START) round.
            return
        round_id = int(payload["round"])
        step = int(payload["step"])
        if round_id <= self._ready_done:
            return  # duplicate READY for an already-completed barrier
        bucket = self._ready.setdefault(round_id, {})
        bucket[agent_id] = payload.get("stats", {})
        if set(bucket) >= set(self.state.agents):
            # Merge in agent-id order: float sums must not depend on the
            # order READY messages happened to arrive in.
            stats = _merge_stats(bucket[k] for k in sorted(bucket))
            del self._ready[round_id]
            self._ready_done = round_id
            # Every agent has published its step-``step`` serving view:
            # results changed cluster-wide, so proxy caches filled under
            # the previous version must stop serving.
            self.note_results_changed(self._active_program)
            tracer = self.network.tracer
            if tracer is not None:
                tracer.instant(
                    self.name,
                    "barrier_complete",
                    "barrier",
                    {"round": round_id, "step": step, "agents": len(self.state.agents)},
                )
            if self.run_controller is None:
                return
            advance = self.run_controller(round_id, step, stats)
            if advance is not None:
                self.send_advance(advance)

    def send_advance(self, payload: dict) -> None:
        """Broadcast a SUPERSTEP_ADVANCE to every agent (lead only)."""
        if payload.get("phase") == "resume":
            # The barrier re-opens (post-scale or post-recovery); leases
            # restart from now so time spent suspended never counts
            # against anyone.
            self._recovering = False
            self._reseed_leases()
        self._control_broadcast(PacketType.SUPERSTEP_ADVANCE, payload)

    def send_run_start(self, payload) -> None:
        """Broadcast a RUN_START to every agent (lead only)."""
        # Barrier rounds restart from zero with each run.
        self._ready.clear()
        self._ready_done = -1
        self._recovering = False
        self._suspected.clear()
        self._reseed_leases()
        # The payload is the RunSpec; remember whose results the
        # barrier rounds are about to change, and invalidate anything
        # cached from that program's previous fixpoint.
        program = getattr(payload, "program", None)
        self._active_program = getattr(program, "name", None)
        self.note_results_changed(self._active_program)
        self._control_broadcast(PacketType.RUN_START, payload)
        self._ensure_dir_lease()
        self._ensure_master_register()

    # -- failure detection (lead only) ----------------------------------------

    def _reseed_leases(self) -> None:
        if self.config.heartbeat_interval <= 0:
            return
        now = self.now
        self._leases = {agent_id: now for agent_id in self.state.agents}
        if not self._lease_pending:
            self._lease_pending = True
            self.kernel.schedule(self.config.lease_timeout / 2.0, self._lease_tick)

    def _lead_heartbeat(self, payload: dict) -> None:
        self._leases[int(payload["agent_id"])] = self.now

    def _lease_tick(self) -> None:
        self._lease_pending = False
        controller = self.run_controller
        if (
            self.crashed
            or controller is None
            or getattr(controller, "done", False)
            or self.config.heartbeat_interval <= 0
        ):
            return  # chain ends with the run; the next run re-arms it
        now = self.now
        # While recovery reshapes the cluster — or an apply-only drain /
        # suspension holds the barrier — agents legitimately go quiet;
        # refresh instead of suspecting.  But only for endpoints that
        # still answer: blanket refreshes during a suspension meant an
        # agent crashing with EDGE_MIGRATE traffic in flight was never
        # suspected, and the migration-quiescence poll deadlocked on an
        # ack the victim could no longer send.  A detached endpoint is a
        # dead process (the connection refuses), quiet phase or not.
        quiet = self._recovering or getattr(controller, "phase", "") == "apply_only"
        for agent_id in sorted(self.state.agents):
            last = self._leases.get(agent_id)
            alive = self.network.is_attached(self.state.agents[agent_id])
            if last is None or (quiet and alive):
                self._leases[agent_id] = now
                continue
            if agent_id in self._suspected:
                # Verdict pending at the master; re-ask if it has been
                # silent for a full lease (master crash/restart window).
                if now - self._suspected[agent_id] > self.config.lease_timeout:
                    self._suspect(agent_id, now - last, resend=True)
                continue
            if now - last > self.config.lease_timeout:
                self._suspect(agent_id, now - last)
        self._lease_pending = True
        self.kernel.schedule(self.config.lease_timeout / 2.0, self._lease_tick)

    def _suspect(self, agent_id: int, overdue: float, resend: bool = False) -> None:
        if self.master_address is None:
            return  # nobody to arbitrate; keep waiting
        self._suspected[agent_id] = self.now
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name,
                "suspect",
                "failure",
                {"agent_id": agent_id, "overdue": overdue, "resend": resend},
            )
        if not resend:
            self.network.stats.lease_expirations += 1
            interval = self.config.heartbeat_interval
            self.network.stats.heartbeats_missed += (
                max(1, int(overdue / interval)) if interval > 0 else 1
            )
        suspect = Message(
            ptype=PacketType.AGENT_SUSPECT,
            payload={
                "agent_id": agent_id,
                "address": self.state.agents.get(agent_id, -1),
            },
        )
        suspect.src = self.address
        suspect.dst = self.master_address
        self.network.send(suspect)

    def _on_evict_confirm(self, payload: dict) -> None:
        if not self.is_lead:
            raise RuntimeError("only the lead evicts members")
        agent_id = int(payload["agent_id"])
        self._suspected.pop(agent_id, None)
        if not payload.get("evict"):
            # False suspicion (slow but alive): refresh and move on.
            self._leases[agent_id] = self.now
            return
        if agent_id not in self.state.agents:
            return  # duplicate confirmation; already evicted
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(self.name, "evict", "failure", {"agent_id": agent_id})
        agents = dict(self.state.agents)
        agents.pop(agent_id)
        self._weights.pop(agent_id, None)
        self._leases.pop(agent_id, None)
        self.metric_store.pop(agent_id, None)
        self._membership_version += 1
        # Hold the barrier shut *before* anything else: the eviction
        # shrinks membership, and a stale READY bucket must not
        # auto-complete against the smaller set.
        self._recovering = True
        self._ready.clear()
        self._replace_state(agents=agents, bump_batch=False)
        self._broadcast_now()
        if self.on_eviction is not None:
            self.on_eviction(agent_id)

    def broadcast_recover(self, payload: dict) -> None:
        """Broadcast a RECOVER directive to every agent (lead only)."""
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name,
                "recover_broadcast",
                "recovery",
                {
                    "mode": payload.get("mode"),
                    "step": payload.get("step"),
                    "incarnation": payload.get("incarnation"),
                },
            )
        # Rollback rewinds every agent's serving tag to the checkpoint
        # step; restart drops views entirely.  Either way, cached
        # replies from the pre-recovery snapshot must stop serving.
        self.note_results_changed(self._active_program)
        self._control_broadcast(PacketType.RECOVER, payload)

    # -- control-plane fault tolerance: leases, elections, succession ------

    @property
    def _failover_on(self) -> bool:
        """Directory failover requires a lease cadence and a peer."""
        return self.config.dir_lease_interval > 0 and len(self.directory_addresses) > 1

    def _run_live(self) -> bool:
        """Whether a synchronous run is live from this directory's view.

        The lease/election/registration timer chains are scoped to run
        liveness so the kernel can go quiescent between runs (``settle``
        would otherwise never drain).  The lead reads its controller;
        peers read the mirrored control tail.
        """
        if self.is_lead:
            controller = self.run_controller
            return controller is not None and not getattr(controller, "done", False)
        return self._mirrored_run_live

    def _ensure_dir_lease(self) -> None:
        """Arm the lead's DIR_LEASE renewal chain (idempotent)."""
        if not self.is_lead or not self._failover_on or self._dir_lease_pending:
            return
        self._dir_lease_pending = True
        self.kernel.schedule(self.config.dir_lease_interval, self._dir_lease_tick)

    def _dir_lease_tick(self) -> None:
        self._dir_lease_pending = False
        if self.crashed or not self.is_lead or not self._failover_on or not self._run_live():
            return  # chain ends with the run; send_run_start re-arms it
        # Prune peers whose endpoint is gone: broadcasts to them would
        # only churn the reliable transport's abandonment path.
        self.peers = [p for p in self.peers if self.network.is_attached(p)]
        for peer in self.peers:
            lease = Message(
                ptype=PacketType.DIR_LEASE,
                payload={"term": self.term, "version": self.state.version},
                term=self.term,
            )
            lease.src = self.address
            lease.dst = peer
            self.network.send(lease)
        self._dir_lease_pending = True
        self.kernel.schedule(self.config.dir_lease_interval, self._dir_lease_tick)

    def _ensure_election_watch(self) -> None:
        """Arm a peer's lead-liveness watchdog (idempotent)."""
        if self.is_lead or not self._failover_on or self._election_pending:
            return
        self._election_pending = True
        self.kernel.schedule(self.config.dir_lease_timeout / 2.0, self._election_tick)

    def _election_tick(self) -> None:
        self._election_pending = False
        if self.crashed or self.is_lead or not self._failover_on or not self._mirrored_run_live:
            return
        lead_addr = self.peers[0] if self.peers else None
        if lead_addr is None:
            return
        overdue = self.now - self._lead_seen > self.config.dir_lease_timeout
        if overdue:
            if self.network.is_attached(lead_addr):
                # Lease lapsed but the endpoint still answers the
                # liveness probe (slow lead, lossy control path): renew
                # locally rather than electing over a live lead — the
                # same arbitration idiom the master applies to agents.
                self._lead_seen = self.now
            elif self._is_successor():
                self._become_lead()
                return
            # else: a lower-index live peer will take the term; keep
            # watching in case it dies before it does.
        self._ensure_election_watch()

    def _is_successor(self) -> bool:
        """Deterministic succession: lowest-index live directory wins.

        Liveness is the fabric's attachment probe, so every candidate
        evaluates the same predicate on the same state — no votes, no
        randomness, and therefore per-seed reproducible term sequences.
        """
        for idx in sorted(self.directory_addresses):
            if idx == self.index:
                return True
            if self.network.is_attached(self.directory_addresses[idx]):
                return False
        return False  # pragma: no cover - self is always attached

    def _become_lead(self) -> None:
        """Take over as lead under a bumped term.

        Mirrored state (DirectoryState, result versions, the control
        tail) carries over; lead-only aggregation state (weights, epoch
        counters, READY buckets, leases) is reconstructed here, and
        whatever the mirror could not see is re-driven: agents re-report
        READY on the term bump, and the re-broadcast control tail
        unsticks agents a partially-delivered broadcast left behind.
        """
        self.term += 1
        self.is_lead = True
        self.network.stats.lead_elections += 1
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name,
                "lead_elected",
                "control",
                {"term": self.term, "index": self.index},
            )
        self.peers = [
            addr
            for idx, addr in sorted(self.directory_addresses.items())
            if idx != self.index and self.network.is_attached(addr)
        ]
        # Lead-only aggregation state, rebuilt from the mirror.
        self._weights = dict(self.state.weights)
        epoch = self.state.epoch
        if epoch is not None and len(epoch) == 4:
            self._membership_version = int(epoch[1])
            self._sketch_version = int(epoch[2])
        self._pending_split = set()
        self._sketch_dirty = False
        self._ready = {}
        self._ready_done = self._mirrored_ready_done
        self._suspected = {}
        self._leases = {}
        # If the old lead died mid-recovery the barrier stays shut until
        # the engine's resume reopens it; the control-tail re-broadcast
        # below lets agents that missed the RECOVER catch up.
        self._recovering = (
            self._mirrored_ctrl is not None
            and self._mirrored_ctrl[0] == PacketType.RECOVER
        )
        if self.on_lead_change is not None:
            # The cluster re-installs the engine's controller hooks and
            # repoints ``cluster.lead`` before any barrier can complete.
            self.on_lead_change(self)
        self._reseed_leases()
        # Re-announce result versions past the mirror.  The dead lead
        # may have bumped further than it synced; proxies *assign* (not
        # max-merge) versions on a term bump and clear their caches, so
        # the non-monotone adoption is safe.
        if self.result_versions:
            versions = {prog: v + 1 for prog, v in self.result_versions.items()}
            self.result_versions = versions
            self._control_broadcast(
                PacketType.RESULT_NOTICE, {"versions": dict(versions)}
            )
        # New-term state broadcast: re-fences every subscriber and rolls
        # the placement epoch (its leading component is the term).
        self._replace_state(agents=self.state.agents, bump_batch=False)
        self._broadcast_now()
        # Re-drive the last control broadcast verbatim under the new
        # term: agents already past it drop the duplicate (round/run_id
        # guards), stuck agents proceed.
        if self._mirrored_ctrl is not None and self._mirrored_run_live:
            ptype, payload = self._mirrored_ctrl
            self._control_broadcast(ptype, payload)
        self._ensure_dir_lease()

    def _ensure_master_register(self) -> None:
        """Arm the periodic DIRECTORY_REGISTER heartbeat (idempotent).

        Every directory re-registers on a cadence so a restarted master
        rebuilds its registry as soft state; needs only the lease knob,
        not a peer (single-directory clusters still re-register).
        """
        if self.config.dir_lease_interval <= 0 or self._register_pending:
            return
        self._register_pending = True
        self.kernel.schedule(self.config.dir_lease_interval, self._master_register_tick)

    def _master_register_tick(self) -> None:
        self._register_pending = False
        if self.crashed or self.config.dir_lease_interval <= 0 or not self._run_live():
            return
        master = self.master_address
        if master is not None and self.network.is_attached(master):
            register = Message(
                ptype=PacketType.DIRECTORY_REGISTER,
                payload={"index": self.index, "address": self.address},
            )
            register.src = self.address
            register.dst = master
            self.network.send(register)
        self._register_pending = True
        self.kernel.schedule(self.config.dir_lease_interval, self._master_register_tick)

    # -- serving plane: result versions (lead only) -----------------------

    def note_results_changed(self, program: Optional[str]) -> None:
        """Bump ``program``'s result version and notify proxies.

        Called by the barrier on every completed round, by RUN_START /
        recovery broadcasts, and by the engine when an async run
        finalizes.  No-op for ``None`` (e.g. a run started before any
        program was known) and on non-lead directories.
        """
        if not self.is_lead or program is None:
            return
        version = self.result_versions.get(program, 0) + 1
        self.result_versions[program] = version
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name,
                "result_notice",
                "serving",
                {"program": program, "version": version},
            )
        self._control_broadcast(
            PacketType.RESULT_NOTICE, {"versions": {program: version}}
        )

    def _control_broadcast(self, ptype: PacketType, payload) -> None:
        if not self.is_lead:
            raise RuntimeError("control broadcasts originate at the lead directory")
        if ptype in (
            PacketType.SUPERSTEP_ADVANCE,
            PacketType.RUN_START,
            PacketType.RECOVER,
        ):
            # The lead mirrors its own tail too: it may be *elected* lead
            # later in life, and succession math reads these fields.
            self._mirror_control(ptype, payload)
        for peer in self.peers:
            msg = Message(ptype=ptype, payload=payload, term=self.term)
            msg.src = self.address
            msg.dst = peer
            self.network.send(msg)
        self.pubsub.publish(ptype, payload, term=self.term)


def _merge_stats(stat_dicts) -> dict:
    """Aggregate per-agent stats (residuals, active counts, ...).

    Keys prefixed ``max_`` fold by maximum (e.g. the worst per-vertex
    residual of a delta run); everything else sums.  Both reductions are
    order-insensitive, so merged stats stay deterministic.
    """
    merged: dict = {}
    for stats in stat_dicts:
        for key, value in stats.items():
            if key.startswith("max_"):
                merged[key] = max(merged.get(key, value), value)
            else:
                merged[key] = merged.get(key, 0) + value
    return merged
