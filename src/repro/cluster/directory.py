"""The directory system (§3.3): membership, sketch, and barriers.

Directories broadcast to every Participant the state needed to find any
edge's owner: the Agent list and the degree CountMinSketch — a payload
of O(P + d·w), exactly the paper's bound — plus the batch clock and the
split-vertex registry.  They also coordinate bulk-synchronous barriers
(Figure 2): Agents report ready to their Directory, Directories
re-broadcast readiness among themselves, and when every Agent is ready
the superstep advances.

A single **DirectoryMaster** is the bootstrap service: queried once by
any component to find a Directory, and only again if that Directory
leaves (§3.3).

Internally one directory (index 0, the *lead*) is authoritative for
membership and sketch merging; peers forward joins/leaves/deltas to it
and mirror its state via ``DIRECTORY_SYNC`` — the paper's "all
Directories internally broadcast messages appropriately", specialized
to a hub topology for determinism.

The split-vertex registry is an implementation addition: the paper's
Agents learn replication factors from the sketch alone, but a replica
of a split vertex that happens to hold none of its edges must still
participate in replica synchronization, so the directory broadcast
carries the (small) set of currently-split vertex ids.  This adds
O(#hubs) to the O(P + d·w) broadcast; DESIGN.md discusses the choice.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.net.message import Message, PacketType
from repro.net.sockets import PubSubSocket, ReqRepSocket
from repro.sim.entity import Entity
from repro.sketch.countmin import CountMinSketch


class DirectoryState:
    """One version of the broadcast directory state.

    Treated as immutable by recipients; the lead directory builds a new
    instance for every broadcast.
    """

    __slots__ = (
        "version",
        "batch_id",
        "agents",
        "sketch",
        "split_vertices",
        "weights",
        "epoch",
    )

    def __init__(
        self,
        version: int,
        batch_id: int,
        agents: Dict[int, int],
        sketch: CountMinSketch,
        split_vertices: frozenset,
        weights: Optional[Dict[int, float]] = None,
        epoch: Optional[tuple] = None,
    ):
        self.version = version
        self.batch_id = batch_id
        self.agents = dict(agents)  # agent id -> network address
        self.sketch = sketch
        self.split_vertices = frozenset(split_vertices)
        # Capacity weights (§3.4.2 heterogeneous extension): scale each
        # agent's virtual-position count on every participant's ring.
        self.weights = dict(weights or {})
        # Placement epoch: (membership version, sketch version, split
        # registry size).  Placement is a pure function of this token's
        # underlying state, so participants' placement caches invalidate
        # exactly when it changes — a batch-clock-only broadcast bumps
        # ``version`` but not the epoch, and caches survive it.
        self.epoch = epoch

    @property
    def epoch_token(self) -> tuple:
        """The placement-invalidation key for this state.

        Falls back to the broadcast version (invalidate-per-broadcast,
        always safe) for states built without an explicit epoch.
        """
        if self.epoch is not None:
            return self.epoch
        return ("v", self.version)

    @property
    def nbytes(self) -> int:
        """Broadcast size: O(P) addresses + O(d·w) sketch + split set."""
        return (
            16 * len(self.agents)
            + 8 * len(self.weights)
            + self.sketch.nbytes
            + 8 * len(self.split_vertices)
            + 16
        )

    def agent_ids(self) -> List[int]:
        return sorted(self.agents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirectoryState(v{self.version}, batch={self.batch_id}, "
            f"P={len(self.agents)}, split={len(self.split_vertices)})"
        )


class DirectoryMaster(Entity):
    """Bootstrap service: hands out a Directory address on request."""

    def __init__(self, network, seed: int = 0):
        super().__init__(network, "directory-master", seed)
        self._directories: List[int] = []
        self._next = 0

    def register_directory(self, address: int) -> None:
        """Called by the cluster when a Directory comes up."""
        self._directories.append(address)

    def unregister_directory(self, address: int) -> None:
        self._directories = [a for a in self._directories if a != address]

    def handle_message(self, message: Message) -> None:
        if message.ptype == PacketType.DIRECTORY_QUERY:
            if not self._directories:
                raise RuntimeError("no directories registered with the master")
            address = self._directories[self._next % len(self._directories)]
            self._next += 1
            ReqRepSocket.reply_to(self.network, message, PacketType.DIRECTORY_ASSIGN, address)
        elif message.ptype == PacketType.AGENT_SUSPECT:
            # Failure-detection arbiter: the lead suspects an agent whose
            # lease lapsed; the master confirms the eviction iff the
            # agent's endpoint is actually gone (crashed), protecting
            # slow-but-alive agents from false suspicion.
            payload = message.payload
            evict = not self.network.is_attached(int(payload["address"]))
            verdict = Message(
                ptype=PacketType.EVICT_CONFIRM,
                payload={"agent_id": int(payload["agent_id"]), "evict": evict},
            )
            verdict.src = self.address
            verdict.dst = message.src
            self.network.send(verdict)
        else:
            raise ValueError(f"DirectoryMaster got unexpected {message.ptype.name}")


class Directory(Entity):
    """One directory server.

    Parameters
    ----------
    network, config:
        Fabric and shared cluster configuration.
    index:
        Directory index; index 0 is the lead.
    """

    def __init__(self, network, config: ClusterConfig, index: int):
        super().__init__(network, f"directory-{index}", config.seed)
        self.config = config
        self.index = index
        self.is_lead = index == 0
        self.pubsub = PubSubSocket(self)
        self.peers: List[int] = []  # other directories' addresses (lead first)
        self.state = DirectoryState(
            version=0,
            batch_id=0,
            agents={},
            sketch=CountMinSketch(config.sketch_width, config.sketch_depth, seed=config.seed),
            split_vertices=frozenset(),
        )
        self._weights: Dict[int, float] = {}
        # Placement-epoch components (lead only; peers mirror the lead's
        # epoch via DIRECTORY_SYNC).  Membership bumps on join/leave,
        # sketch on every delta merge; the split component is the
        # (monotone) registry size at broadcast time.
        self._membership_version = 0
        self._sketch_version = 0
        # Latest metric snapshot per agent (§3.4.3: "Metrics are passed
        # to Directories"); autoscalers read these.
        self.metric_store: Dict[int, dict] = {}
        # Serving plane: per-program result versions.  The lead bumps a
        # program's version whenever its results may have changed
        # (RUN_START, each completed barrier round, recovery) and
        # broadcasts a RESULT_NOTICE; peers merge and re-publish to
        # their own subscribers (client proxies), whose result caches
        # fence entries on the version they were filled under.
        self.result_versions: Dict[str, int] = {}
        self._active_program: Optional[str] = None
        # Lead-only aggregation state.
        self._pending_split: Set[int] = set()
        self._sketch_dirty = False
        self._last_sketch_broadcast = -1e30
        self._broadcast_scheduled = False
        self._ready: Dict[int, Dict[int, dict]] = {}  # step -> agent id -> stats
        # Highest barrier round already completed this run.  Rounds are
        # monotone within a run, so a READY for a completed round is a
        # stale duplicate and must not re-trigger the controller.
        self._ready_done = -1
        self._membership_dirty = False
        # Engine hook: called by the lead as run_controller(round, step,
        # stats) when all agents report ready.  Returns the next
        # SUPERSTEP_ADVANCE payload, or None to hold the barrier (used
        # for mid-run elastic scaling).
        self.run_controller: Optional[Callable[[int, int, dict], Optional[dict]]] = None
        # Failure detection (lead only).  Leases map agent id -> last
        # heartbeat time; suspicion is arbitrated by the master (whose
        # address the cluster wires in) before eviction.  While
        # ``_recovering`` the barrier is held shut: no READY bucket may
        # complete until the engine finishes reshaping the run.
        self.master_address: Optional[int] = None
        self.on_eviction: Optional[Callable[[int], None]] = None
        self._leases: Dict[int, float] = {}
        self._suspected: Set[int] = set()
        self._lease_pending = False
        self._recovering = False

    # -- message dispatch -----------------------------------------------------

    def handle_message(self, message: Message) -> None:
        ptype = message.ptype
        if ptype == PacketType.SUBSCRIBE:
            if isinstance(message.payload, dict) and message.payload.get("remove"):
                self.pubsub.unsubscribe(message.src)
            else:
                self.pubsub.subscribe(message.src, message.payload)
                # Late joiners immediately get the current state so they
                # can start placing edges without waiting for churn.
                if (
                    PacketType.RESULT_NOTICE in message.payload
                    and self.result_versions
                ):
                    # Seed a late-joining proxy with the current result
                    # versions so its first cache fills are fenced
                    # against everything that already ran.
                    seeded = Message(
                        ptype=PacketType.RESULT_NOTICE,
                        payload={"versions": dict(self.result_versions)},
                    )
                    seeded.src = self.address
                    seeded.dst = message.src
                    self.network.send(seeded)
                if (
                    PacketType.DIRECTORY_UPDATE in message.payload
                    and self.state.version > 0
                ):
                    # The lead's state.sketch is the live master copy,
                    # mutated by future delta merges — hand late joiners
                    # a snapshot, never the live object.
                    payload = self._snapshot_state() if self.is_lead else self.state
                    update = Message(
                        ptype=PacketType.DIRECTORY_UPDATE, payload=payload
                    )
                    update.src = self.address
                    update.dst = message.src
                    self.network.send(update)
        elif ptype == PacketType.AGENT_JOIN:
            self._to_lead(message)
        elif ptype == PacketType.AGENT_LEAVE:
            self._to_lead(message)
        elif ptype == PacketType.SKETCH_DELTA:
            self._to_lead(message)
        elif ptype == PacketType.SPLIT_REPORT:
            self._to_lead(message)
        elif ptype == PacketType.HEARTBEAT:
            self._to_lead(message)
        elif ptype == PacketType.EVICT_CONFIRM:
            self._on_evict_confirm(message.payload)
        elif ptype == PacketType.AGENT_READY:
            self._on_agent_ready(message)
        elif ptype == PacketType.READY_REBROADCAST:
            self._on_ready_rebroadcast(message)
        elif ptype == PacketType.METRIC_REPORT:
            payload = message.payload
            self.metric_store[int(payload["agent_id"])] = dict(payload["metrics"])
        elif ptype == PacketType.DIRECTORY_SYNC:
            self._on_sync(message)
        elif ptype in (
            PacketType.SUPERSTEP_ADVANCE,
            PacketType.RUN_START,
            PacketType.RECOVER,
        ):
            # Lead-originated control, re-published to local subscribers.
            self.pubsub.publish(ptype, message.payload)
        elif ptype == PacketType.RESULT_NOTICE:
            # Lead-originated version bump: merge (so late SUBSCRIBE
            # seeding works from any directory) and re-publish.
            for prog, version in message.payload["versions"].items():
                if version > self.result_versions.get(prog, 0):
                    self.result_versions[prog] = version
            self.pubsub.publish(ptype, message.payload)
        else:
            raise ValueError(f"Directory got unexpected {ptype.name}")

    def _to_lead(self, message: Message) -> None:
        """Handle membership/sketch traffic at the lead, or forward it."""
        if self.is_lead:
            handler = {
                PacketType.AGENT_JOIN: self._lead_join,
                PacketType.AGENT_LEAVE: self._lead_leave,
                PacketType.SKETCH_DELTA: self._lead_sketch_delta,
                PacketType.SPLIT_REPORT: self._lead_split_report,
                PacketType.HEARTBEAT: self._lead_heartbeat,
            }[message.ptype]
            handler(message.payload)
        else:
            fwd = Message(ptype=message.ptype, payload=message.payload)
            fwd.src = self.address
            fwd.dst = self.peers[0]  # lead is always peers[0] for non-leads
            self.network.send(fwd)

    # -- lead: membership and sketch ---------------------------------------------

    def _lead_join(self, payload: dict) -> None:
        agents = dict(self.state.agents)
        agent_id = int(payload["agent_id"])
        address = int(payload["address"])
        if agents.get(agent_id) == address:
            return  # duplicate JOIN: membership already reflects it
        agents[agent_id] = address
        weight = float(payload.get("weight", 1.0))
        if weight != 1.0:
            self._weights[agent_id] = weight
        self._membership_version += 1
        self._replace_state(agents=agents, bump_batch=False)
        self._broadcast_now()

    def _lead_leave(self, payload: dict) -> None:
        agents = dict(self.state.agents)
        if agents.pop(int(payload["agent_id"]), None) is None:
            return  # duplicate LEAVE: the agent is already gone
        self._weights.pop(int(payload["agent_id"]), None)
        self._membership_version += 1
        self._replace_state(agents=agents, bump_batch=False)
        self._broadcast_now()

    def _lead_sketch_delta(self, delta: CountMinSketch) -> None:
        # Bump at merge time, not broadcast time: the live master sketch
        # changes here, so any state snapshot taken from now on (e.g. a
        # late-joiner SUBSCRIBE reply) must carry a new epoch.
        self.state.sketch.merge(delta)
        self._sketch_version += 1
        self._sketch_dirty = True
        self._maybe_schedule_sketch_broadcast()

    def _lead_split_report(self, payload) -> None:
        new = {int(v) for v in np.atleast_1d(payload)}
        if not new - set(self.state.split_vertices) - self._pending_split:
            return
        self._pending_split |= new
        self._sketch_dirty = True
        self._maybe_schedule_sketch_broadcast()

    def _maybe_schedule_sketch_broadcast(self) -> None:
        if self._broadcast_scheduled:
            return
        wait = max(
            0.0,
            self._last_sketch_broadcast + self.config.sketch_broadcast_interval - self.now,
        )
        self._broadcast_scheduled = True
        self.kernel.schedule(wait, self._sketch_broadcast_due)

    def _sketch_broadcast_due(self) -> None:
        self._broadcast_scheduled = False
        if not self._sketch_dirty:
            return
        self._last_sketch_broadcast = self.now
        self._sketch_dirty = False
        self._replace_state(agents=self.state.agents, bump_batch=False)
        self._broadcast_now()

    def _replace_state(self, agents: Dict[int, int], bump_batch: bool) -> None:
        split = frozenset(self.state.split_vertices | self._pending_split)
        self._pending_split.clear()
        self.state = DirectoryState(
            version=self.state.version + 1,
            batch_id=self.state.batch_id + (1 if bump_batch else 0),
            agents=agents,
            sketch=self.state.sketch,  # lead keeps the live master copy
            split_vertices=split,
            weights=self._weights,
            epoch=(self._membership_version, self._sketch_version, len(split)),
        )

    def advance_batch_clock(self) -> int:
        """Bump the monotonically increasing batch id (lead only)."""
        if not self.is_lead:
            raise RuntimeError("batch clock is owned by the lead directory")
        self._replace_state(agents=self.state.agents, bump_batch=True)
        self._broadcast_now()
        return self.state.batch_id

    def _snapshot_state(self) -> DirectoryState:
        """An immutable copy of the lead's state, stamped with the epoch
        describing its contents *right now* (the live sketch may have
        merged deltas since ``self.state`` was built)."""
        return DirectoryState(
            version=self.state.version,
            batch_id=self.state.batch_id,
            agents=self.state.agents,
            sketch=self.state.sketch.copy(),
            split_vertices=self.state.split_vertices,
            weights=self.state.weights,
            epoch=(
                self._membership_version,
                self._sketch_version,
                len(self.state.split_vertices),
            ),
        )

    def _broadcast_now(self) -> None:
        """Sync peers and publish the new state to local subscribers."""
        snapshot = self._snapshot_state()
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name,
                "directory_broadcast",
                "control",
                {
                    "version": snapshot.version,
                    "agents": len(snapshot.agents),
                    "batch_id": snapshot.batch_id,
                },
            )
        for peer in self.peers:
            msg = Message(ptype=PacketType.DIRECTORY_SYNC, payload=snapshot)
            msg.src = self.address
            msg.dst = peer
            self.network.send(msg)
        self.pubsub.publish(PacketType.DIRECTORY_UPDATE, snapshot)

    def _on_sync(self, message: Message) -> None:
        incoming: DirectoryState = message.payload
        if incoming.version <= self.state.version:
            return  # stale
        self.state = incoming
        self.pubsub.publish(PacketType.DIRECTORY_UPDATE, incoming)

    # -- barrier protocol (Figure 2) ------------------------------------------------

    def _on_agent_ready(self, message: Message) -> None:
        payload = message.payload
        if self.is_lead:
            self._lead_collect_ready(int(payload["agent_id"]), payload)
        else:
            fwd = Message(ptype=PacketType.READY_REBROADCAST, payload=payload)
            fwd.src = self.address
            fwd.dst = self.peers[0]
            self.network.send(fwd)

    def _on_ready_rebroadcast(self, message: Message) -> None:
        if not self.is_lead:
            raise RuntimeError("only the lead aggregates readiness")
        payload = message.payload
        self._lead_collect_ready(int(payload["agent_id"]), payload)

    def _lead_collect_ready(self, agent_id: int, payload: dict) -> None:
        if self._recovering:
            # An eviction shrank membership mid-round; letting the stale
            # bucket auto-complete would advance the barrier under the
            # engine's feet.  READYs for the recovered run restart from
            # the resume (or re-issued RUN_START) round.
            return
        round_id = int(payload["round"])
        step = int(payload["step"])
        if round_id <= self._ready_done:
            return  # duplicate READY for an already-completed barrier
        bucket = self._ready.setdefault(round_id, {})
        bucket[agent_id] = payload.get("stats", {})
        if set(bucket) >= set(self.state.agents):
            # Merge in agent-id order: float sums must not depend on the
            # order READY messages happened to arrive in.
            stats = _merge_stats(bucket[k] for k in sorted(bucket))
            del self._ready[round_id]
            self._ready_done = round_id
            # Every agent has published its step-``step`` serving view:
            # results changed cluster-wide, so proxy caches filled under
            # the previous version must stop serving.
            self.note_results_changed(self._active_program)
            tracer = self.network.tracer
            if tracer is not None:
                tracer.instant(
                    self.name,
                    "barrier_complete",
                    "barrier",
                    {"round": round_id, "step": step, "agents": len(self.state.agents)},
                )
            if self.run_controller is None:
                return
            advance = self.run_controller(round_id, step, stats)
            if advance is not None:
                self.send_advance(advance)

    def send_advance(self, payload: dict) -> None:
        """Broadcast a SUPERSTEP_ADVANCE to every agent (lead only)."""
        if payload.get("phase") == "resume":
            # The barrier re-opens (post-scale or post-recovery); leases
            # restart from now so time spent suspended never counts
            # against anyone.
            self._recovering = False
            self._reseed_leases()
        self._control_broadcast(PacketType.SUPERSTEP_ADVANCE, payload)

    def send_run_start(self, payload) -> None:
        """Broadcast a RUN_START to every agent (lead only)."""
        # Barrier rounds restart from zero with each run.
        self._ready.clear()
        self._ready_done = -1
        self._recovering = False
        self._suspected.clear()
        self._reseed_leases()
        # The payload is the RunSpec; remember whose results the
        # barrier rounds are about to change, and invalidate anything
        # cached from that program's previous fixpoint.
        program = getattr(payload, "program", None)
        self._active_program = getattr(program, "name", None)
        self.note_results_changed(self._active_program)
        self._control_broadcast(PacketType.RUN_START, payload)

    # -- failure detection (lead only) ----------------------------------------

    def _reseed_leases(self) -> None:
        if self.config.heartbeat_interval <= 0:
            return
        now = self.now
        self._leases = {agent_id: now for agent_id in self.state.agents}
        if not self._lease_pending:
            self._lease_pending = True
            self.kernel.schedule(self.config.lease_timeout / 2.0, self._lease_tick)

    def _lead_heartbeat(self, payload: dict) -> None:
        self._leases[int(payload["agent_id"])] = self.now

    def _lease_tick(self) -> None:
        self._lease_pending = False
        controller = self.run_controller
        if (
            controller is None
            or getattr(controller, "done", False)
            or self.config.heartbeat_interval <= 0
        ):
            return  # chain ends with the run; the next run re-arms it
        now = self.now
        # While recovery reshapes the cluster — or an apply-only drain /
        # suspension holds the barrier — agents legitimately go quiet;
        # refresh instead of suspecting.
        quiet = self._recovering or getattr(controller, "phase", "") == "apply_only"
        for agent_id in sorted(self.state.agents):
            last = self._leases.get(agent_id)
            if last is None or quiet:
                self._leases[agent_id] = now
                continue
            if agent_id in self._suspected:
                continue  # verdict pending at the master
            if now - last > self.config.lease_timeout:
                self._suspect(agent_id, now - last)
        self._lease_pending = True
        self.kernel.schedule(self.config.lease_timeout / 2.0, self._lease_tick)

    def _suspect(self, agent_id: int, overdue: float) -> None:
        if self.master_address is None:
            return  # nobody to arbitrate; keep waiting
        self._suspected.add(agent_id)
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name,
                "suspect",
                "failure",
                {"agent_id": agent_id, "overdue": overdue},
            )
        self.network.stats.lease_expirations += 1
        interval = self.config.heartbeat_interval
        self.network.stats.heartbeats_missed += (
            max(1, int(overdue / interval)) if interval > 0 else 1
        )
        suspect = Message(
            ptype=PacketType.AGENT_SUSPECT,
            payload={
                "agent_id": agent_id,
                "address": self.state.agents.get(agent_id, -1),
            },
        )
        suspect.src = self.address
        suspect.dst = self.master_address
        self.network.send(suspect)

    def _on_evict_confirm(self, payload: dict) -> None:
        if not self.is_lead:
            raise RuntimeError("only the lead evicts members")
        agent_id = int(payload["agent_id"])
        self._suspected.discard(agent_id)
        if not payload.get("evict"):
            # False suspicion (slow but alive): refresh and move on.
            self._leases[agent_id] = self.now
            return
        if agent_id not in self.state.agents:
            return  # duplicate confirmation; already evicted
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(self.name, "evict", "failure", {"agent_id": agent_id})
        agents = dict(self.state.agents)
        agents.pop(agent_id)
        self._weights.pop(agent_id, None)
        self._leases.pop(agent_id, None)
        self.metric_store.pop(agent_id, None)
        self._membership_version += 1
        # Hold the barrier shut *before* anything else: the eviction
        # shrinks membership, and a stale READY bucket must not
        # auto-complete against the smaller set.
        self._recovering = True
        self._ready.clear()
        self._replace_state(agents=agents, bump_batch=False)
        self._broadcast_now()
        if self.on_eviction is not None:
            self.on_eviction(agent_id)

    def broadcast_recover(self, payload: dict) -> None:
        """Broadcast a RECOVER directive to every agent (lead only)."""
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name,
                "recover_broadcast",
                "recovery",
                {
                    "mode": payload.get("mode"),
                    "step": payload.get("step"),
                    "incarnation": payload.get("incarnation"),
                },
            )
        # Rollback rewinds every agent's serving tag to the checkpoint
        # step; restart drops views entirely.  Either way, cached
        # replies from the pre-recovery snapshot must stop serving.
        self.note_results_changed(self._active_program)
        self._control_broadcast(PacketType.RECOVER, payload)

    # -- serving plane: result versions (lead only) -----------------------

    def note_results_changed(self, program: Optional[str]) -> None:
        """Bump ``program``'s result version and notify proxies.

        Called by the barrier on every completed round, by RUN_START /
        recovery broadcasts, and by the engine when an async run
        finalizes.  No-op for ``None`` (e.g. a run started before any
        program was known) and on non-lead directories.
        """
        if not self.is_lead or program is None:
            return
        version = self.result_versions.get(program, 0) + 1
        self.result_versions[program] = version
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                self.name,
                "result_notice",
                "serving",
                {"program": program, "version": version},
            )
        self._control_broadcast(
            PacketType.RESULT_NOTICE, {"versions": {program: version}}
        )

    def _control_broadcast(self, ptype: PacketType, payload: dict) -> None:
        if not self.is_lead:
            raise RuntimeError("control broadcasts originate at the lead directory")
        for peer in self.peers:
            msg = Message(ptype=ptype, payload=payload)
            msg.src = self.address
            msg.dst = peer
            self.network.send(msg)
        self.pubsub.publish(ptype, payload)


def _merge_stats(stat_dicts) -> dict:
    """Aggregate per-agent stats (residuals, active counts, ...).

    Keys prefixed ``max_`` fold by maximum (e.g. the worst per-vertex
    residual of a delta run); everything else sums.  Both reductions are
    order-insensitive, so merged stats stay deterministic.
    """
    merged: dict = {}
    for stats in stat_dicts:
        for key, value in stats.items():
            if key.startswith("max_"):
                merged[key] = max(merged.get(key, value), value)
            else:
                merged[key] = merged.get(key, 0) + value
    return merged
