"""Array-native shard storage: edge stores, value columns, dirty log.

The agent's hot structures were dicts — ``Dict[int, Set[int]]``
adjacency and ``Dict[int, float]`` per-program state — which cost a
Python object per vertex on every touch.  This module replaces them
with sorted-array equivalents whose *batch* operations are numpy
vectorized end to end, while keeping enough of the dict surface
(``in``, iteration, ``items``, ``==`` against plain dicts) that
existing call sites and tests read them unchanged.

* :class:`EdgeStore` — one shard role's edge copies as parallel
  ``(keys, others)`` int64 arrays in (key asc, other asc) lexicographic
  order.  ``arrays()`` returns zero-copy read-only views — what the
  old ``_store_arrays`` rebuilt per call is now the storage itself,
  and ``version`` is the mutation counter callers can key caches on.
  ``apply`` ingests a whole mutation batch at once and reports the
  *effective* rows (duplicates and no-ops dropped) in the same
  deterministic inserts-then-removes, (key, other)-sorted order the
  old per-row walk produced.
* :class:`ValueColumn` — a ``{vertex: float}`` mapping as id-indexed
  ndarray columns with vectorized ``lookup``/``set_many``/``select``
  joins replacing per-vertex ``dict.get`` loops.
* :class:`IdSet` — a ``Set[int]`` as a sorted id array.
* :class:`DirtyLog` — the mutation dirty log as array batches with
  row-count watermarks, so streaming ingest appends arrays instead of
  per-edge tuples.

Sorting uses signed int64 comparison throughout, so negative vertex
ids order consistently everywhere; when both columns fit in 31 bits
(the overwhelmingly common case) pair operations pack into a single
int64 key, falling back to structured dtypes otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=np.float64)
_PAIR_DT = np.dtype([("k", np.int64), ("o", np.int64)])
_PACK_LIMIT = np.int64(1) << np.int64(31)


def _as_i64(arr) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(arr), dtype=np.int64)


def _pack_pairs(keys: np.ndarray, others: np.ndarray) -> np.ndarray:
    """A 1-D representation of (key, other) pairs whose scalar order
    equals (key asc, other asc): a packed int64 when both columns fit
    in 31 unsigned bits, a structured array otherwise."""
    if len(keys) and (
        keys.min(initial=0) < 0
        or others.min(initial=0) < 0
        or keys.max(initial=0) >= _PACK_LIMIT
        or others.max(initial=0) >= _PACK_LIMIT
    ):
        rec = np.empty(len(keys), dtype=_PAIR_DT)
        rec["k"] = keys
        rec["o"] = others
        return rec
    return (keys << np.int64(31)) | others


def _ro(view: np.ndarray) -> np.ndarray:
    view = view.view()
    view.flags.writeable = False
    return view


class EdgeStore:
    """One adjacency role's edges as lexsorted parallel arrays.

    Invariants: ``keys``/``others`` are same-length int64 arrays sorted
    by (key, other) with no duplicate pairs; a vertex with no edges has
    no rows (matching the old dicts, which deleted emptied sets).
    """

    __slots__ = ("_keys", "_others", "_version", "_unique_keys", "_starts")

    def __init__(self, keys: Optional[np.ndarray] = None, others: Optional[np.ndarray] = None):
        self._keys = _EMPTY_I64 if keys is None else _as_i64(keys)
        self._others = _EMPTY_I64 if others is None else _as_i64(others)
        self._version = 0
        self._unique_keys: Optional[np.ndarray] = None
        self._starts: Optional[np.ndarray] = None

    # -- construction / conversion -------------------------------------

    @classmethod
    def from_dict(cls, store: Dict[int, Set[int]]) -> "EdgeStore":
        pairs = [(k, o) for k, vals in store.items() for o in vals]
        if not pairs:
            return cls()
        arr = np.asarray(pairs, dtype=np.int64)
        keys, others = arr[:, 0], arr[:, 1]
        order = np.lexsort((others, keys))
        return cls(keys[order], others[order])

    def to_dict(self) -> Dict[int, Set[int]]:
        out: Dict[int, Set[int]] = {}
        for key, nbrs in self.items():
            out[key] = set(map(int, nbrs))
        return out

    def copy(self) -> "EdgeStore":
        return EdgeStore(self._keys.copy(), self._others.copy())

    # -- array access ---------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter: bumps on every state change, so callers
        can key derived caches on it."""
        return self._version

    @property
    def n_edges(self) -> int:
        return len(self._keys)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy read-only (keys, others) views, keys ascending and
        others ascending within each key — O(1), this *is* the store."""
        return _ro(self._keys), _ro(self._others)

    def _index(self) -> Tuple[np.ndarray, np.ndarray]:
        """(unique keys, row start of each key's segment), cached per
        version."""
        if self._unique_keys is None:
            if len(self._keys):
                boundaries = np.empty(len(self._keys), dtype=bool)
                boundaries[0] = True
                np.not_equal(self._keys[1:], self._keys[:-1], out=boundaries[1:])
                self._unique_keys = self._keys[boundaries]
                self._starts = np.flatnonzero(boundaries)
            else:
                self._unique_keys = _EMPTY_I64
                self._starts = _EMPTY_I64
        return self._unique_keys, self._starts

    @property
    def unique_keys(self) -> np.ndarray:
        """Sorted distinct keyed vertices (read-only view)."""
        return _ro(self._index()[0])

    def neighbors(self, vertex: int) -> np.ndarray:
        """The sorted adjacency of ``vertex`` (read-only view; empty if
        absent)."""
        lo = np.searchsorted(self._keys, vertex, side="left")
        hi = np.searchsorted(self._keys, vertex, side="right")
        return _ro(self._others[lo:hi])

    def get(self, vertex: int, default=None):
        nbrs = self.neighbors(vertex)
        if len(nbrs) == 0 and vertex not in self:
            return default if default is not None else nbrs
        return nbrs

    def degree(self, vertex: int) -> int:
        lo = np.searchsorted(self._keys, vertex, side="left")
        hi = np.searchsorted(self._keys, vertex, side="right")
        return int(hi - lo)

    def degrees(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized per-vertex degree lookup."""
        vertices = _as_i64(vertices)
        lo = np.searchsorted(self._keys, vertices, side="left")
        hi = np.searchsorted(self._keys, vertices, side="right")
        return hi - lo

    # -- dict-compatible surface ---------------------------------------

    def __contains__(self, vertex) -> bool:
        return self.degree(int(vertex)) > 0

    def __iter__(self) -> Iterator[int]:
        return iter(map(int, self._index()[0]))

    def __len__(self) -> int:
        return len(self._index()[0])

    def __bool__(self) -> bool:
        return len(self._keys) > 0

    def __getitem__(self, vertex: int) -> np.ndarray:
        nbrs = self.neighbors(int(vertex))
        if len(nbrs) == 0:
            raise KeyError(vertex)
        return nbrs

    def items(self) -> Iterator[Tuple[int, np.ndarray]]:
        uniq, starts = self._index()
        ends = np.append(starts[1:], len(self._keys))
        for key, s, e in zip(uniq, starts, ends):
            yield int(key), _ro(self._others[int(s):int(e)])

    def values(self) -> Iterator[np.ndarray]:
        for _, nbrs in self.items():
            yield nbrs

    def keys(self) -> Iterator[int]:
        return iter(self)

    def __eq__(self, other) -> bool:
        if isinstance(other, EdgeStore):
            return np.array_equal(self._keys, other._keys) and np.array_equal(
                self._others, other._others
            )
        if isinstance(other, dict):
            mine = {k for k, _ in self.items()}
            theirs = {int(k) for k, v in other.items() if len(v)}
            if mine != theirs:
                return False
            for key, nbrs in self.items():
                if set(map(int, nbrs)) != {int(v) for v in other[key]}:
                    return False
            return True
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    # -- mutation -------------------------------------------------------

    def _set(self, keys: np.ndarray, others: np.ndarray) -> None:
        self._keys = keys
        self._others = others
        self._version += 1
        self._unique_keys = None
        self._starts = None

    def contains_pairs(self, keys: np.ndarray, others: np.ndarray) -> np.ndarray:
        """Vectorized membership test for (key, other) pairs."""
        keys = _as_i64(keys)
        others = _as_i64(others)
        if len(self._keys) == 0 or len(keys) == 0:
            return np.zeros(len(keys), dtype=bool)
        store = _pack_pairs(self._keys, self._others)
        query = _pack_pairs(keys, others)
        if store.dtype != query.dtype:  # mixed packing regimes
            rec = np.empty(len(self._keys), dtype=_PAIR_DT)
            rec["k"], rec["o"] = self._keys, self._others
            store = rec
            rec = np.empty(len(keys), dtype=_PAIR_DT)
            rec["k"], rec["o"] = keys, others
            query = rec
        pos = np.searchsorted(store, query)
        pos_c = np.minimum(pos, len(store) - 1)
        return store[pos_c] == query

    def apply(
        self, keys: np.ndarray, others: np.ndarray, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply one batch of edge mutations (+1 insert / -1 remove).

        Returns the *effective* rows as ``(keys, others, actions)``
        arrays in deterministic (inserts lexsorted, then removes
        lexsorted) order — duplicates and no-ops drop out exactly as a
        row-by-row walk would.  A batch that both inserts and removes
        the same pair is the one case routed through the sequential
        fallback, preserving strict batch order.
        """
        keys = _as_i64(keys)
        others = _as_i64(others)
        actions = np.asarray(actions)
        if len(keys) == 0:
            return _EMPTY_I64, _EMPTY_I64, _EMPTY_I64
        ins = actions > 0
        if ins.any() and not ins.all():
            inserted = set(zip(keys[ins].tolist(), others[ins].tolist()))
            removed = set(zip(keys[~ins].tolist(), others[~ins].tolist()))
            if inserted & removed:
                return self._apply_sequential(keys, others, actions)

        eff_k: List[np.ndarray] = []
        eff_o: List[np.ndarray] = []
        eff_a: List[np.ndarray] = []
        add_k = add_o = None
        if ins.any():
            ik, io = self._dedup_lex(keys[ins], others[ins])
            fresh = ~self.contains_pairs(ik, io)
            add_k, add_o = ik[fresh], io[fresh]
            if len(add_k):
                eff_k.append(add_k)
                eff_o.append(add_o)
                eff_a.append(np.ones(len(add_k), dtype=np.int64))
        keep = None
        if (~ins).any():
            rk, ro = self._dedup_lex(keys[~ins], others[~ins])
            present = self.contains_pairs(rk, ro)
            rk, ro = rk[present], ro[present]
            if len(rk):
                keep = ~self.contains_pairs_mask(rk, ro)
                eff_k.append(rk)
                eff_o.append(ro)
                eff_a.append(np.full(len(rk), -1, dtype=np.int64))
        if add_k is not None and len(add_k) or keep is not None:
            base_k = self._keys if keep is None else self._keys[keep]
            base_o = self._others if keep is None else self._others[keep]
            if add_k is not None and len(add_k):
                new_k = np.concatenate([base_k, add_k])
                new_o = np.concatenate([base_o, add_o])
                order = np.lexsort((new_o, new_k))
                self._set(new_k[order], new_o[order])
            else:
                self._set(base_k.copy(), base_o.copy())
        if not eff_k:
            return _EMPTY_I64, _EMPTY_I64, _EMPTY_I64
        return (
            np.concatenate(eff_k),
            np.concatenate(eff_o),
            np.concatenate(eff_a),
        )

    def contains_pairs_mask(self, keys: np.ndarray, others: np.ndarray) -> np.ndarray:
        """Row mask over the store: True where the store row equals one
        of the (sorted, deduped) query pairs."""
        if len(self._keys) == 0 or len(keys) == 0:
            return np.zeros(len(self._keys), dtype=bool)
        store = _pack_pairs(self._keys, self._others)
        query = _pack_pairs(_as_i64(keys), _as_i64(others))
        if store.dtype != query.dtype:
            rec = np.empty(len(self._keys), dtype=_PAIR_DT)
            rec["k"], rec["o"] = self._keys, self._others
            store = rec
            rec = np.empty(len(keys), dtype=_PAIR_DT)
            rec["k"], rec["o"] = _as_i64(keys), _as_i64(others)
            query = rec
        pos = np.searchsorted(query, store)
        pos_c = np.minimum(pos, len(query) - 1)
        return query[pos_c] == store

    @staticmethod
    def _dedup_lex(keys: np.ndarray, others: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        order = np.lexsort((others, keys))
        k, o = keys[order], others[order]
        if len(k) > 1:
            first = np.empty(len(k), dtype=bool)
            first[0] = True
            np.logical_or(k[1:] != k[:-1], o[1:] != o[:-1], out=first[1:])
            k, o = k[first], o[first]
        return k, o

    def _apply_sequential(
        self, keys: np.ndarray, others: np.ndarray, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Strict batch-order fallback (same pair inserted *and*
        removed in one batch): replay through a transient dict."""
        store = self.to_dict()
        eff: List[Tuple[int, int, int]] = []
        for i in range(len(keys)):
            key = int(keys[i])
            val = int(others[i])
            bucket = store.get(key)
            if actions[i] > 0:
                if bucket is None:
                    bucket = store[key] = set()
                if val not in bucket:
                    bucket.add(val)
                    eff.append((key, val, 1))
            else:
                if bucket is not None and val in bucket:
                    bucket.remove(val)
                    eff.append((key, val, -1))
                    if not bucket:
                        del store[key]
        rebuilt = EdgeStore.from_dict(store)
        self._set(rebuilt._keys, rebuilt._others)
        if not eff:
            return _EMPTY_I64, _EMPTY_I64, _EMPTY_I64
        arr = np.asarray(eff, dtype=np.int64)
        return arr[:, 0], arr[:, 1], arr[:, 2]

    def remove_pairs(self, keys: np.ndarray, others: np.ndarray) -> int:
        """Drop the given pairs (all assumed present); returns count."""
        if len(keys) == 0:
            return 0
        rk, ro = self._dedup_lex(_as_i64(keys), _as_i64(others))
        mask = self.contains_pairs_mask(rk, ro)
        removed = int(mask.sum())
        if removed:
            self._set(self._keys[~mask], self._others[~mask])
        return removed


class ValueColumn:
    """A ``{vertex_id: float}`` mapping as id-indexed ndarray columns.

    ``ids`` is sorted unique int64; ``vals`` is parallel float64.  The
    dict-like scalar surface exists for tests and cold paths; hot paths
    use the vectorized ``lookup``/``set_many``/``select`` joins.
    """

    __slots__ = ("ids", "vals")

    def __init__(self, ids: Optional[np.ndarray] = None, vals: Optional[np.ndarray] = None):
        self.ids = _EMPTY_I64 if ids is None else _as_i64(ids)
        self.vals = (
            _EMPTY_F64
            if vals is None
            else np.ascontiguousarray(np.asarray(vals), dtype=np.float64)
        )

    @classmethod
    def from_dict(cls, d: Dict[int, float]) -> "ValueColumn":
        if not d:
            return cls()
        ids = np.fromiter(d.keys(), dtype=np.int64, count=len(d))
        vals = np.fromiter(d.values(), dtype=np.float64, count=len(d))
        order = np.argsort(ids, kind="stable")
        return cls(ids[order], vals[order])

    def to_dict(self) -> Dict[int, float]:
        return {int(i): float(v) for i, v in zip(self.ids, self.vals)}

    def copy(self) -> "ValueColumn":
        return ValueColumn(self.ids.copy(), self.vals.copy())

    def __len__(self) -> int:
        return len(self.ids)

    def __bool__(self) -> bool:
        return len(self.ids) > 0

    def __contains__(self, vertex) -> bool:
        pos = np.searchsorted(self.ids, int(vertex))
        return pos < len(self.ids) and self.ids[pos] == int(vertex)

    def __iter__(self) -> Iterator[int]:
        return iter(map(int, self.ids))

    def keys(self) -> Iterator[int]:
        return iter(self)

    def values(self) -> Iterator[float]:
        return iter(map(float, self.vals))

    def items(self) -> Iterator[Tuple[int, float]]:
        return ((int(i), float(v)) for i, v in zip(self.ids, self.vals))

    def get(self, vertex: int, default=None):
        pos = np.searchsorted(self.ids, int(vertex))
        if pos < len(self.ids) and self.ids[pos] == int(vertex):
            return float(self.vals[pos])
        return default

    def __getitem__(self, vertex: int) -> float:
        val = self.get(vertex)
        if val is None:
            raise KeyError(vertex)
        return val

    def __setitem__(self, vertex: int, value: float) -> None:
        self.set_many(
            np.asarray([int(vertex)], dtype=np.int64),
            np.asarray([float(value)], dtype=np.float64),
        )

    def __delitem__(self, vertex: int) -> None:
        pos = np.searchsorted(self.ids, int(vertex))
        if pos >= len(self.ids) or self.ids[pos] != int(vertex):
            raise KeyError(vertex)
        self.ids = np.delete(self.ids, pos)
        self.vals = np.delete(self.vals, pos)

    def pop(self, vertex: int, default=None):
        val = self.get(vertex)
        if val is None:
            return default
        del self[vertex]
        return val

    def __eq__(self, other) -> bool:
        if isinstance(other, ValueColumn):
            return np.array_equal(self.ids, other.ids) and np.array_equal(
                self.vals, other.vals
            )
        if isinstance(other, dict):
            if len(other) != len(self.ids):
                return False
            return all(other.get(int(i)) == float(v) for i, v in zip(self.ids, self.vals))
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    # -- vectorized joins ----------------------------------------------

    def lookup(self, ids: np.ndarray, default: float = np.nan) -> Tuple[np.ndarray, np.ndarray]:
        """(values, found) for each queried id; missing ids get
        ``default`` and found=False."""
        ids = _as_i64(ids)
        if len(self.ids) == 0 or len(ids) == 0:
            return np.full(len(ids), default), np.zeros(len(ids), dtype=bool)
        pos = np.minimum(np.searchsorted(self.ids, ids), len(self.ids) - 1)
        found = self.ids[pos] == ids
        return np.where(found, self.vals[pos], default), found

    def set_many(self, ids: np.ndarray, vals: np.ndarray) -> None:
        """Upsert a batch (last write wins within the batch)."""
        ids = _as_i64(ids)
        vals = np.ascontiguousarray(np.asarray(vals), dtype=np.float64)
        if len(ids) == 0:
            return
        order = np.argsort(ids, kind="stable")
        ids, vals = ids[order], vals[order]
        if len(ids) > 1:
            last = np.empty(len(ids), dtype=bool)
            last[-1] = True
            np.not_equal(ids[1:], ids[:-1], out=last[:-1])
            ids, vals = ids[last], vals[last]
        if len(self.ids) == 0:
            self.ids, self.vals = ids, vals
            return
        pos = np.minimum(np.searchsorted(self.ids, ids), len(self.ids) - 1)
        hit = self.ids[pos] == ids
        if hit.any():
            self.vals[pos[hit]] = vals[hit]
        if (~hit).any():
            merged_ids = np.concatenate([self.ids, ids[~hit]])
            merged_vals = np.concatenate([self.vals, vals[~hit]])
            order = np.argsort(merged_ids, kind="stable")
            self.ids = merged_ids[order]
            self.vals = merged_vals[order]

    def update(self, other) -> None:
        if isinstance(other, ValueColumn):
            self.set_many(other.ids, other.vals)
        elif isinstance(other, dict):
            col = ValueColumn.from_dict(other)
            self.set_many(col.ids, col.vals)
        else:  # (ids, vals) array pair
            ids, vals = other
            self.set_many(np.asarray(ids), np.asarray(vals))

    def select(self, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(present ids, their values) — the subset join used to ship
        migrating vertices' state."""
        vals, found = self.lookup(ids)
        ids = _as_i64(ids)
        return ids[found], vals[found]

    def restrict(self, ids: np.ndarray) -> None:
        """Drop every entry whose id is not in the sorted ``ids``."""
        if len(self.ids) == 0:
            return
        keep = np.isin(self.ids, _as_i64(ids))
        if not keep.all():
            self.ids = self.ids[keep]
            self.vals = self.vals[keep]


class IdSet:
    """A ``Set[int]`` as a sorted unique int64 array."""

    __slots__ = ("ids",)

    def __init__(self, ids: Optional[np.ndarray] = None):
        if ids is None:
            self.ids = _EMPTY_I64
        else:
            self.ids = np.unique(_as_i64(ids))

    @classmethod
    def from_set(cls, s: Iterable[int]) -> "IdSet":
        return cls(np.fromiter(s, dtype=np.int64) if s else None)

    def to_set(self) -> Set[int]:
        return set(map(int, self.ids))

    def copy(self) -> "IdSet":
        out = IdSet()
        out.ids = self.ids.copy()
        return out

    def __len__(self) -> int:
        return len(self.ids)

    def __bool__(self) -> bool:
        return len(self.ids) > 0

    def __contains__(self, vertex) -> bool:
        pos = np.searchsorted(self.ids, int(vertex))
        return pos < len(self.ids) and self.ids[pos] == int(vertex)

    def __iter__(self) -> Iterator[int]:
        return iter(map(int, self.ids))

    def __eq__(self, other) -> bool:
        if isinstance(other, IdSet):
            return np.array_equal(self.ids, other.ids)
        if isinstance(other, (set, frozenset)):
            return self.to_set() == other
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def add(self, vertex: int) -> None:
        self.update(np.asarray([int(vertex)], dtype=np.int64))

    def discard(self, vertex: int) -> None:
        pos = np.searchsorted(self.ids, int(vertex))
        if pos < len(self.ids) and self.ids[pos] == int(vertex):
            self.ids = np.delete(self.ids, pos)

    def update(self, other) -> None:
        if isinstance(other, IdSet):
            arr = other.ids
        elif isinstance(other, np.ndarray):
            arr = other
        else:
            other = list(other)
            arr = np.asarray(other, dtype=np.int64) if other else _EMPTY_I64
        if len(arr):
            self.ids = np.union1d(self.ids, _as_i64(arr))

    def restrict(self, ids: np.ndarray) -> None:
        if len(self.ids):
            self.ids = self.ids[np.isin(self.ids, _as_i64(ids))]

    def assign(self, universe: np.ndarray, member: np.ndarray) -> None:
        """Batch re-assignment over ``universe``: ids in universe are
        members iff their mask bit is set; ids outside are untouched."""
        universe = _as_i64(universe)
        if len(self.ids):
            outside = self.ids[~np.isin(self.ids, universe)]
        else:
            outside = _EMPTY_I64
        self.ids = np.union1d(outside, universe[member])

    def isin(self, ids: np.ndarray) -> np.ndarray:
        """Vectorized membership of ``ids`` in this set."""
        ids = _as_i64(ids)
        if len(self.ids) == 0:
            return np.zeros(len(ids), dtype=bool)
        pos = np.minimum(np.searchsorted(self.ids, ids), len(self.ids) - 1)
        return self.ids[pos] == ids


class DirtyLog:
    """Effective mutation rows as array batches with row watermarks.

    The old structure was a flat ``List[(role, key, other, action)]``;
    streaming ingest now appends one ``(role, keys, others, actions)``
    array batch per applied update, and delta runs slice suffixes by
    *row count*, so watermark arithmetic is unchanged.
    """

    __slots__ = ("_batches", "_rows")

    def __init__(self) -> None:
        self._batches: List[Tuple[str, np.ndarray, np.ndarray, np.ndarray]] = []
        self._rows = 0

    def __len__(self) -> int:
        """Total rows (matches the old flat-list semantics)."""
        return self._rows

    def append_batch(
        self, role: str, keys: np.ndarray, others: np.ndarray, actions: np.ndarray
    ) -> None:
        if len(keys) == 0:
            return
        self._batches.append(
            (role, _as_i64(keys), _as_i64(others), _as_i64(actions))
        )
        self._rows += len(keys)

    def extend(self, rows) -> None:
        """Accept either an iterable of (role, k, o, a) tuples (legacy
        WAL interop) or another DirtyLog's batches."""
        if isinstance(rows, DirtyLog):
            for role, k, o, a in rows._batches:
                self.append_batch(role, k.copy(), o.copy(), a.copy())
            return
        staged: Dict[str, List[Tuple[int, int, int]]] = {}
        for role, k, o, a in rows:
            if isinstance(k, np.ndarray):
                self.append_batch(role, k, o, a)
            else:
                staged.setdefault(role, []).append((int(k), int(o), int(a)))
        for role, triples in staged.items():
            arr = np.asarray(triples, dtype=np.int64)
            self.append_batch(role, arr[:, 0], arr[:, 1], arr[:, 2])

    def copy(self) -> "DirtyLog":
        out = DirtyLog()
        for role, k, o, a in self._batches:
            out.append_batch(role, k.copy(), o.copy(), a.copy())
        return out

    def rows(self) -> Iterator[Tuple[str, int, int, int]]:
        """Flat-row view (legacy order), for interop and tests."""
        for role, k, o, a in self._batches:
            for i in range(len(k)):
                yield role, int(k[i]), int(o[i]), int(a[i])

    def suffix(self, start_row: int) -> Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Rows from ``start_row`` on, split by role into (keys,
        others, actions) arrays — the delta-run seed format."""
        parts: Dict[str, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
        seen = 0
        for role, k, o, a in self._batches:
            end = seen + len(k)
            if end > start_row:
                lo = max(0, start_row - seen)
                parts.setdefault(role, []).append((k[lo:], o[lo:], a[lo:]))
            seen = end
        out: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for role, chunks in parts.items():
            out[role] = (
                np.concatenate([c[0] for c in chunks]),
                np.concatenate([c[1] for c in chunks]),
                np.concatenate([c[2] for c in chunks]),
            )
        return out

    def trim(self, n_rows: int) -> None:
        """Drop the first ``n_rows`` rows (watermark GC)."""
        if n_rows <= 0:
            return
        remaining = []
        to_cut = n_rows
        for role, k, o, a in self._batches:
            if to_cut >= len(k):
                to_cut -= len(k)
                continue
            if to_cut > 0:
                k, o, a = k[to_cut:], o[to_cut:], a[to_cut:]
                to_cut = 0
            remaining.append((role, k, o, a))
        self._batches = remaining
        self._rows = max(0, self._rows - n_rows)


# ----------------------------------------------------------------------
# polymorphic adapters: accept legacy dict/set forms anywhere
# ----------------------------------------------------------------------


def as_edge_store(obj) -> EdgeStore:
    if isinstance(obj, EdgeStore):
        return obj
    return EdgeStore.from_dict(obj)


def as_column(obj) -> ValueColumn:
    if isinstance(obj, ValueColumn):
        return obj
    if obj is None:
        return ValueColumn()
    return ValueColumn.from_dict(obj)


def as_idset(obj) -> IdSet:
    if isinstance(obj, IdSet):
        return obj
    if obj is None:
        return IdSet()
    return IdSet.from_set(obj)


def as_dirty_log(obj) -> DirtyLog:
    if isinstance(obj, DirtyLog):
        return obj
    log = DirtyLog()
    if obj:
        log.extend(obj)
    return log
