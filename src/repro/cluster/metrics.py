"""Per-agent metric collection (§3.4.3).

ElGA's autoscaling API collects metrics from Agents — graph change
rates, client query rates, and superstep times — and passes them to the
autoscaler.  Counters are monotone; rate computation (deltas over a
window) happens in the autoscaler, matching how the paper's exponential
moving average consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class AgentMetrics:
    """Monotone counters maintained by one Agent."""

    edges_processed: int = 0       # edge scans during compute
    messages_sent: int = 0         # data-plane messages
    updates_applied: int = 0       # edge changes applied
    updates_forwarded: int = 0     # stale-placement forwards
    queries_served: int = 0        # client queries answered
    edges_migrated: int = 0        # edges sent away on rebalance
    rebalance_adoptions: int = 0   # directory states adopted with changed weights
    supersteps: int = 0
    replica_syncs: int = 0
    # Data-plane fast path: raw (dst, val) pairs the sender-side
    # combiner removed from the wire, emissions merged away by round
    # coalescing (emissions - packets), and VERTEX_MSG_ACK packets
    # saved by cumulative ack batching (credits - ack packets).
    pairs_combined: int = 0
    packets_coalesced: int = 0
    acks_batched: int = 0
    # Placement fast path (synced from the agent's PerfCounters when a
    # METRIC_REPORT is produced).
    placement_cache_hits: int = 0
    placement_cache_misses: int = 0
    placement_epoch_invalidations: int = 0
    # Reliable-transport recovery path (synced the same way): how often
    # the fabric had to retransmit this agent's sends, and how many
    # duplicate deliveries it suppressed on this agent's behalf.
    transport_retries: int = 0
    transport_dups_suppressed: int = 0
    # Crash-tolerance path: liveness signalling and durability work.
    heartbeats_sent: int = 0
    checkpoints_taken: int = 0
    checkpoints_restored: int = 0
    wal_records_logged: int = 0
    wal_records_replayed: int = 0
    recoveries_participated: int = 0
    # Incremental path: cumulative count of locally-hosted vertices that
    # were active at each barrier round — the area under the frontier
    # curve, so frontier collapse is visible in the exposition.
    frontier_size: int = 0
    # Serving plane: queries answered from a barrier-published snapshot
    # view (vs the persistent fixpoint store), and views published (one
    # per program per completed round).
    queries_from_snapshot: int = 0
    serving_views_published: int = 0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (what a METRIC_REPORT would carry).

        Derived from the dataclass fields so a newly added counter can
        never silently miss the export (field drift).
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}


def combine_metrics(snapshots) -> Dict[str, int]:
    """Sum metric snapshots across agents (cluster-wide totals)."""
    total: Dict[str, int] = {}
    for snap in snapshots:
        for key, value in snap.items():
            total[key] = total.get(key, 0) + value
    return total
