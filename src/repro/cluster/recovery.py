"""Durability for crash recovery: checkpoints and a write-ahead log.

ElGA's elasticity machinery (§3.4.3) assumes departures are graceful —
an agent drains its edges before disconnecting.  A *crash* leaves no
time to drain, so whatever must survive has to already be off the
failed process.  This module models that durable side-channel (in a
real deployment: local disk or a replicated log; here: plain objects
owned by the cluster orchestrator, deliberately *outside* any
:class:`~repro.sim.entity.Entity`, so they survive the entity's death).

Two complementary structures per agent:

* :class:`CheckpointStore` — full snapshots of an agent's durable
  state: edge stores, persisted algorithm values/activation, and the
  un-flushed sketch delta.  During a synchronous run, *value
  checkpoints* additionally capture the in-flight vertex table at
  coordinated barrier steps (every ``checkpoint_every`` supersteps) so
  that recovery can roll the whole cluster back to the last global
  checkpoint instead of restarting the run from scratch.
* :class:`EdgeWAL` — an append-only log of edge-store mutations applied
  since the last checkpoint.  Replaying the WAL suffix on top of the
  restored checkpoint reconstructs the exact edge stores (and the exact
  pending sketch delta) the agent held when it died.  The WAL is
  truncated whenever a checkpoint is taken.

Checkpoints use copy-on-write-free deep copies of the (small, simulated)
stores; sizes are tracked so benchmarks can reason about checkpoint
cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.cluster.edgestore import DirtyLog, EdgeStore, IdSet, ValueColumn


def copy_store(store) -> Any:
    if isinstance(store, EdgeStore):
        return store.copy()
    return {k: set(v) for k, v in store.items()}


def copy_values(values: Dict[str, Any]) -> Dict[str, Any]:
    return {
        prog: vals.copy() if isinstance(vals, ValueColumn) else dict(vals)
        for prog, vals in values.items()
    }


def copy_active(active: Dict[str, Any]) -> Dict[str, Any]:
    return {
        prog: vs.copy() if isinstance(vs, IdSet) else set(vs)
        for prog, vs in active.items()
    }


def _row_count(rows) -> int:
    """Rows in a WAL batch: a list of triples or a (k, o, a) array
    tuple from the vectorized ingest path."""
    return len(rows[0]) if isinstance(rows, tuple) else len(rows)


def _rows_arrays(rows):
    """Normalize a WAL batch to (keys, others, actions) int64 arrays."""
    import numpy as np

    if isinstance(rows, tuple):
        k, o, a = rows
        return (
            np.asarray(k, dtype=np.int64),
            np.asarray(o, dtype=np.int64),
            np.asarray(a, dtype=np.int64),
        )
    arr = np.asarray(list(rows), dtype=np.int64).reshape(-1, 3)
    return arr[:, 0], arr[:, 1], arr[:, 2]


def _state_ids_vals(obj):
    """Normalize migrated-state payloads — {vertex: value} dicts or
    (ids, vals) array pairs — to array form."""
    import numpy as np

    if isinstance(obj, tuple):
        ids, vals = obj
        return np.asarray(ids, dtype=np.int64), np.asarray(vals, dtype=np.float64)
    ids = np.fromiter(obj.keys(), dtype=np.int64, count=len(obj))
    vals = np.fromiter(obj.values(), dtype=np.float64, count=len(obj))
    return ids, vals


def _state_ids(obj):
    import numpy as np

    if isinstance(obj, (tuple, np.ndarray)):
        arr = obj[0] if isinstance(obj, tuple) else obj
        return np.asarray(arr, dtype=np.int64)
    return np.fromiter(obj, dtype=np.int64, count=len(obj))


def _copy_dirty(log) -> Any:
    return log.copy() if isinstance(log, DirtyLog) else list(log)


@dataclass
class Checkpoint:
    """One durable snapshot of an agent's recoverable state."""

    out_store: Dict[int, Set[int]]
    in_store: Dict[int, Set[int]]
    persistent: Dict[str, Dict[int, float]]
    persistent_active: Dict[str, Set[int]]
    sketch_delta: Optional[object] = None  # CountMinSketch copy (or None)
    # Which run / barrier step this snapshot belongs to.  ``run_id`` is
    # None for checkpoints taken outside any run (e.g. at agent start).
    run_id: Optional[int] = None
    step: int = 0
    # Incremental-run durable state: the last-sent scatter values of
    # delta-message programs (program -> vertex -> value), the ordered
    # log of dirty mutation rows ``(role, key, other, action)`` not yet
    # consumed by every program, and each program's consumption
    # watermark into that log.
    persistent_scatter: Dict[str, Any] = field(default_factory=dict)
    #: A flat list of (role, key, other, action) rows or a DirtyLog.
    dirty_log: Any = field(default_factory=list)
    dirty_seen: Dict[str, int] = field(default_factory=dict)

    @property
    def n_edges(self) -> int:
        return sum(len(s) for s in self.out_store.values()) + sum(
            len(s) for s in self.in_store.values()
        )


@dataclass
class WALRecord:
    """One applied edge-store mutation batch.

    ``rows`` holds ``(key, other, action)`` triples for mutations that
    were *actually applied* (duplicate-suppressed inserts and no-op
    removes never reach the log).  ``sketched`` marks streaming updates
    that also fed the agent's un-flushed sketch delta; migration traffic
    does not (§3.4.1: the sketch counts logical graph changes once).
    ``values``/``active`` carry persisted vertex state that rode along
    with a migration batch, so a restore recovers algorithm state that
    moved here after the last checkpoint.
    """

    role: str  # "out" | "in"
    #: A list of (key, other, action) triples, or a (keys, others,
    #: actions) array tuple from the vectorized ingest path.
    rows: Any
    sketched: bool
    values: Optional[Dict[str, Any]] = None
    active: Optional[Dict[str, Any]] = None
    #: Last-sent scatter state that rode along with a migration batch
    #: (delta-message programs must not lose it mid-suspension).
    scatter: Optional[Dict[str, Any]] = None


class EdgeWAL:
    """Append-only log of edge mutations since the last checkpoint."""

    def __init__(self) -> None:
        self._records: List[WALRecord] = []
        self.records_logged = 0

    def append(
        self,
        role: str,
        rows: Any,
        sketched: bool,
        values: Optional[Dict[str, Any]] = None,
        active: Optional[Dict[str, Any]] = None,
        scatter: Optional[Dict[str, Any]] = None,
    ) -> None:
        n_rows = _row_count(rows)
        if not n_rows and not values and not active and not scatter:
            return
        stored = rows if isinstance(rows, tuple) else list(rows)
        self._records.append(WALRecord(role, stored, sketched, values, active, scatter))
        self.records_logged += n_rows

    def truncate(self) -> None:
        """Drop all records (a checkpoint now covers them)."""
        self._records = []

    def __len__(self) -> int:
        return sum(_row_count(r.rows) for r in self._records)

    def replay(
        self,
        out_store: Dict[int, Set[int]],
        in_store: Dict[int, Set[int]],
        sketch_delta: Optional[object] = None,
        persistent: Optional[Dict[str, Dict[int, float]]] = None,
        persistent_active: Optional[Dict[str, Set[int]]] = None,
        persistent_scatter: Optional[Dict[str, Dict[int, float]]] = None,
    ) -> int:
        """Re-apply every logged mutation onto the given stores.

        Returns the number of rows replayed.  When ``sketch_delta`` is
        given, sketched insert/remove rows are re-counted into it so the
        replacement agent re-reports exactly the degree deltas the
        crashed agent had not yet flushed.  When ``persistent`` /
        ``persistent_active`` are given, migrated-in vertex state logged
        alongside the rows is merged back in.
        """
        import numpy as np

        replayed = 0
        for record in self._records:
            store = out_store if record.role == "out" else in_store
            n_rows = _row_count(record.rows)
            if n_rows:
                keys, others, actions = _rows_arrays(record.rows)
                if isinstance(store, EdgeStore):
                    store.apply(keys, others, actions)
                else:
                    for key, other, action in zip(keys, others, actions):
                        key, other = int(key), int(other)
                        if action > 0:
                            store.setdefault(key, set()).add(other)
                        else:
                            bucket = store.get(key)
                            if bucket is not None:
                                bucket.discard(other)
                                if not bucket:
                                    del store[key]
                replayed += n_rows
                if record.sketched and sketch_delta is not None:
                    ins = actions > 0
                    if ins.any():
                        sketch_delta.add(keys[ins])
                    if (~ins).any():
                        sketch_delta.remove(keys[~ins])
            if record.values and persistent is not None:
                for prog, vals in record.values.items():
                    self._merge_values(persistent, prog, vals)
            if record.active and persistent_active is not None:
                for prog, verts in record.active.items():
                    self._merge_active(persistent_active, prog, verts)
            if record.scatter and persistent_scatter is not None:
                for prog, vals in record.scatter.items():
                    self._merge_values(persistent_scatter, prog, vals)
        return replayed

    @staticmethod
    def _merge_values(target: Dict[str, Any], prog: str, vals) -> None:
        """Merge migrated-in values — dict or (ids, vals) arrays — into
        the target map, whose entries may be dicts or ValueColumns."""
        cur = target.get(prog)
        if isinstance(cur, ValueColumn) or (cur is None and isinstance(vals, tuple)):
            col = target[prog] = cur if cur is not None else ValueColumn()
            ids, arr = _state_ids_vals(vals)
            col.set_many(ids, arr)
        else:
            d = target.setdefault(prog, {})
            if isinstance(vals, tuple):
                ids, arr = vals
                d.update((int(i), float(v)) for i, v in zip(ids, arr))
            else:
                d.update(vals)

    @staticmethod
    def _merge_active(target: Dict[str, Any], prog: str, verts) -> None:
        import numpy as np

        cur = target.get(prog)
        if isinstance(cur, IdSet) or (cur is None and isinstance(verts, np.ndarray)):
            aset = target[prog] = cur if cur is not None else IdSet()
            aset.update(_state_ids(verts))
        else:
            s = target.setdefault(prog, set())
            if isinstance(verts, np.ndarray):
                s.update(map(int, verts))
            else:
                s.update(verts)

    def sketched_rows(self) -> List[Tuple[str, Any, Any, Any]]:
        """The logged streaming mutations, in application order, as
        ``(role, key, other, action)`` rows or ``(role, keys, others,
        actions)`` array batches — exactly what a replacement agent
        re-appends to its dirty log (:meth:`DirtyLog.extend` accepts
        both; migration records are placement moves, not graph changes,
        and are excluded)."""
        rows: List[Tuple[str, Any, Any, Any]] = []
        for record in self._records:
            if record.sketched:
                if isinstance(record.rows, tuple):
                    k, o, a = record.rows
                    rows.append((record.role, k, o, a))
                else:
                    rows.extend((record.role, k, o, a) for k, o, a in record.rows)
        return rows


class CheckpointStore:
    """Durable checkpoint slots for one agent.

    ``latest`` is the most recent full snapshot (the restore base for a
    replacement agent).  ``value_checkpoints`` additionally keeps every
    barrier-step snapshot of the *current* run, keyed by ``(run_id,
    step)``: survivors roll back to the crashed agent's checkpoint step,
    which may be older than their own latest (the crash can land between
    an agent checkpointing step ``s`` and a peer doing the same).
    """

    def __init__(self) -> None:
        self.latest: Optional[Checkpoint] = None
        self.value_checkpoints: Dict[Tuple[int, int], Checkpoint] = {}
        # Snapshot from just before the current run's first mid-run
        # checkpoint: the restore base when recovery must *restart* a
        # run instead of rolling back (mid-run checkpoints overwrite
        # ``latest`` with partially-converged values).
        self.pre_run: Optional[Checkpoint] = None
        self.checkpoints_taken = 0

    def save(self, checkpoint: Checkpoint) -> None:
        if checkpoint.run_id is not None and (
            self.latest is None or self.latest.run_id != checkpoint.run_id
        ):
            self.pre_run = self.latest
        self.latest = checkpoint
        if checkpoint.run_id is not None:
            self.value_checkpoints[(checkpoint.run_id, checkpoint.step)] = checkpoint
        self.checkpoints_taken += 1

    def checkpoint_for(self, run_id: int, step: int) -> Optional[Checkpoint]:
        return self.value_checkpoints.get((run_id, step))

    def steps_for(self, run_id: int) -> List[int]:
        return sorted(s for (r, s) in self.value_checkpoints if r == run_id)

    def prune_run(self, run_id: int) -> None:
        """Drop per-step value checkpoints once a run has completed."""
        stale = [key for key in self.value_checkpoints if key[0] == run_id]
        for key in stale:
            del self.value_checkpoints[key]


@dataclass
class AgentRecoverySlot:
    """Everything durably held on behalf of one agent."""

    checkpoints: CheckpointStore = field(default_factory=CheckpointStore)
    wal: EdgeWAL = field(default_factory=EdgeWAL)


class RecoveryStore:
    """Cluster-wide durable storage, one slot per agent id.

    Owned by :class:`~repro.cluster.cluster.ElGACluster` and handed to
    each agent at construction; slots outlive the agent entity, which
    is the whole point.
    """

    def __init__(self) -> None:
        self._slots: Dict[int, AgentRecoverySlot] = {}

    def slot(self, agent_id: int) -> AgentRecoverySlot:
        if agent_id not in self._slots:
            self._slots[agent_id] = AgentRecoverySlot()
        return self._slots[agent_id]

    def forget(self, agent_id: int) -> None:
        self._slots.pop(agent_id, None)

    def prune_run(self, run_id: int) -> None:
        """Drop every agent's per-step checkpoints for a finished run."""
        for slot in self._slots.values():
            slot.checkpoints.prune_run(run_id)

    def snapshot_agent(self, agent, run_id: Optional[int] = None, step: int = 0) -> Checkpoint:
        """Capture a full checkpoint of ``agent`` and truncate its WAL."""
        checkpoint = Checkpoint(
            out_store=copy_store(agent.out_store),
            in_store=copy_store(agent.in_store),
            persistent=copy_values(agent.persistent),
            persistent_active=copy_active(agent.persistent_active),
            sketch_delta=agent.sketch_delta.copy(),
            run_id=run_id,
            step=step,
            persistent_scatter=copy_values(getattr(agent, "persistent_scatter", {})),
            dirty_log=_copy_dirty(getattr(agent, "_dirty_log", ())),
            dirty_seen=dict(getattr(agent, "_dirty_seen", {})),
        )
        slot = self.slot(agent.agent_id)
        slot.checkpoints.save(checkpoint)
        slot.wal.truncate()
        return checkpoint
