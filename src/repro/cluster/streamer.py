"""Streamers: edge-change injection (§3.1, Figure 1).

Streamers send graph updates to Agents.  A Streamer is a full
Participant: it receives directory updates, computes each change's
owning Agent itself (both the out-copy and in-copy destinations), and
pushes grouped ``EDGE_UPDATE`` batches.  Its directory view may be
stale — Agents forward misplaced updates — so Streamers never need to
synchronize with elasticity events.

The paper streams A-BTER output straight into the cluster and measures
insertion rates above 2 M edges/s/Agent (Figure 14); the Figure 14
benchmark drives this class.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.bench.counters import PerfCounters
from repro.cluster.config import ClusterConfig
from repro.cluster.directory import DirectoryState
from repro.graph.stream import EdgeBatch
from repro.hashing.ring import ConsistentHashRing
from repro.net.message import Message, PacketType
from repro.net.sockets import PushSocket
from repro.partition.cache import PlacementCache
from repro.partition.placer import EdgePlacer
from repro.sim.entity import Entity


class Streamer(Entity):
    """One update source.

    Use :meth:`stream_batch` to inject an :class:`EdgeBatch`; the
    ``on_complete`` callback fires (in simulated time) once every change
    has been acknowledged by its final applier.
    """

    def __init__(
        self,
        network,
        config: ClusterConfig,
        streamer_id: int,
        node: int,
        directory_address: int,
    ):
        super().__init__(network, f"streamer-{streamer_id}", config.seed)
        self.config = config
        self.streamer_id = streamer_id
        self.node = node
        self.directory_address = directory_address
        self.push = PushSocket(self)
        self.dstate: Optional[DirectoryState] = None
        self.perf = PerfCounters()
        self.placer: Optional[PlacementCache] = None
        self._placement_cache = PlacementCache(counters=self.perf)
        self._outstanding = 0
        self._on_complete: Optional[Callable[[float], None]] = None
        self.edges_sent = 0
        self.edges_acked = 0
        self.push.push(
            self.directory_address, PacketType.SUBSCRIBE, [PacketType.DIRECTORY_UPDATE]
        )

    def handle_message(self, message: Message) -> None:
        if message.ptype == PacketType.DIRECTORY_UPDATE:
            self._adopt(message.payload)
        elif message.ptype == PacketType.EDGE_UPDATE_ACK:
            self._on_ack(message.payload)
        else:
            raise ValueError(f"Streamer got unexpected {message.ptype.name}")

    def _adopt(self, state: DirectoryState) -> None:
        if self.dstate is not None and state.version <= self.dstate.version:
            return
        self.dstate = state
        ring = ConsistentHashRing(
            state.agent_ids(),
            virtual_factor=self.config.virtual_factor,
            hash_fn=self.config.hash_fn,
            seed=self.config.seed,
            weights=state.weights,
        )
        self.placer = self._placement_cache.bind(
            state.epoch_token,
            EdgePlacer(
                ring,
                state.sketch,
                replication_threshold=self.config.replication_threshold,
                hash_fn=self.config.hash_fn,
                split_gate=state.split_vertices,
            ),
        )

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """Whether a previous batch is still awaiting acknowledgements."""
        return self._outstanding > 0

    def stream_batch(
        self, batch: EdgeBatch, on_complete: Optional[Callable[[float], None]] = None
    ) -> None:
        """Send one batch of changes to their owning Agents.

        Every change produces two updates — the out-copy (placed by the
        source endpoint) and the in-copy (placed by the destination) —
        so the graph's both-direction storage stays consistent.
        """
        if self.placer is None:
            raise RuntimeError(
                f"streamer {self.streamer_id} has no directory state yet; "
                "run the simulator until the first broadcast lands"
            )
        if self.busy:
            raise RuntimeError("streamer already has a batch in flight")
        self._on_complete = on_complete
        n = len(batch)
        if n == 0:
            if on_complete is not None:
                self.kernel.schedule(0.0, on_complete, self.now)
            return
        self.charge(self.config.costs.streamer_edge_op * n)
        self._outstanding = 2 * n
        self.edges_sent += n
        for role in ("out", "in"):
            own = batch.us if role == "out" else batch.vs
            other = batch.vs if role == "out" else batch.us
            owners = self.placer.owner_of_edges(own, other)
            order = np.argsort(owners, kind="stable")
            owners_sorted = owners[order]
            bounds = np.flatnonzero(np.diff(owners_sorted)) + 1
            starts = np.concatenate([[0], bounds])
            ends = np.concatenate([bounds, [n]])
            for s, e in zip(starts, ends):
                rows = order[s:e]
                payload = {
                    "role": role,
                    "actions": batch.actions[rows],
                    "us": batch.us[rows],
                    "vs": batch.vs[rows],
                    "reply_to": self.address,
                    "token": self.streamer_id,
                }
                target = int(owners_sorted[s])
                address = self.dstate.agents.get(target)
                if address is None:
                    # Stale view named a departed agent; any live agent
                    # will forward (eventual consistency).
                    address = next(iter(sorted(self.dstate.agents.values())))
                self.push.push(address, PacketType.EDGE_UPDATE, payload)

    def _on_ack(self, payload: dict) -> None:
        count = int(payload.get("count", 1))
        self._outstanding -= count
        self.edges_acked += count
        if self._outstanding < 0:
            raise RuntimeError("streamer over-acknowledged: protocol bug")
        if self._outstanding == 0 and self._on_complete is not None:
            callback, self._on_complete = self._on_complete, None
            callback(self.now)
