"""ElGA's core: the locally-persistent vertex-centric model (§3.2).

Algorithms run from the perspective of a vertex: save local state, send
messages along edges, and re-run when changed state arrives (a message
from a neighbor or replica).  The engine executes them synchronously
(BSP supersteps with directory barriers) or asynchronously (monotone
programs processed on message arrival) on a continuously changing graph.

:class:`~repro.core.engine.ElGA` is the public facade — start there.
"""

from repro.core.algorithms.degree import DegreeCount
from repro.core.algorithms.pagerank import PageRank
from repro.core.algorithms.ppr import PersonalizedPageRank
from repro.core.algorithms.sssp import SSSP
from repro.core.algorithms.wcc import WCC
from repro.core.engine import ElGA
from repro.core.program import RunSpec, VertexProgram

__all__ = [
    "DegreeCount",
    "ElGA",
    "PageRank",
    "PersonalizedPageRank",
    "RunSpec",
    "SSSP",
    "VertexProgram",
    "WCC",
]
