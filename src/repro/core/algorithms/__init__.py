"""Vertex programs: the algorithms of §4.3 plus extensions.

PageRank and WCC are the paper's benchmark algorithms (implemented
identically across ElGA, Blogel, and GraphX so performance differences
come from the systems).  SSSP exercises the asynchronous waiting-set
machinery; DegreeCount is a one-superstep program used by protocol
tests.
"""

from repro.core.algorithms.degree import DegreeCount
from repro.core.algorithms.kcore import KCore
from repro.core.algorithms.lpa import LabelPropagation
from repro.core.algorithms.pagerank import PageRank
from repro.core.algorithms.ppr import PersonalizedPageRank
from repro.core.algorithms.sssp import SSSP
from repro.core.algorithms.wcc import WCC

__all__ = [
    "DegreeCount",
    "KCore",
    "LabelPropagation",
    "PageRank",
    "PersonalizedPageRank",
    "SSSP",
    "WCC",
]
