"""In-degree counting — a one-superstep protocol smoke-test program.

Every vertex sends ``1`` along its out-edges; each vertex's final value
is its in-degree.  Because the answer is exactly checkable against the
graph, the test suite uses this program to validate message routing,
replica aggregation, and the barrier protocol independently of any
iterative algorithm's convergence behavior.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.core.program import VertexProgram


class DegreeCount(VertexProgram):
    """One-superstep in-degree count.

    Examples
    --------
    >>> DegreeCount().aggregator
    'sum'
    """

    name = "degree-count"
    aggregator = "sum"
    needs_in_and_out = False
    supports_async = False

    def initial_value(self, vertex_ids: np.ndarray, ctx: Dict[str, Any]) -> np.ndarray:
        return np.zeros(len(vertex_ids))

    def scatter_values(self, values: np.ndarray, out_deg_total: np.ndarray) -> np.ndarray:
        return np.ones(len(values))

    def apply(
        self, old: np.ndarray, agg: np.ndarray, got: np.ndarray, ctx: Dict[str, Any]
    ) -> Tuple[np.ndarray, np.ndarray]:
        # After one exchange the aggregate *is* the in-degree; nobody
        # re-activates.
        return agg, np.zeros(len(old), dtype=bool)

    def halt(self, step: int, stats: Dict[str, float], ctx: Dict[str, Any]) -> bool:
        return step >= 1
