"""k-core decomposition membership as a vertex program.

The k-core of a graph is the maximal subgraph in which every vertex has
degree ≥ k (over both edge directions — cores are a property of the
underlying undirected structure).  The classic algorithm peels: delete
every vertex of degree < k, which lowers neighbors' degrees, and repeat
to a fixpoint.  As a synchronous vertex program, peeling is a census:
every surviving vertex scatters a unit ticket each superstep, the sum
aggregator counts each vertex's surviving neighbors, and a vertex whose
count falls below k peels itself (drops to 0 and goes inactive, so its
tickets vanish from the next round's census).  The run halts the first
superstep nobody peels — exactly the peeling fixpoint — after at most
|peeling depth| supersteps.

Membership survives in the persisted value (1.0 in-core, 0.0 peeled),
so downstream reads join it like any other program's results.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.core.program import VertexProgram


class KCore(VertexProgram):
    """k-core membership by synchronous peeling.

    Parameters
    ----------
    k:
        Core order; final value 1.0 marks vertices in the k-core.

    Examples
    --------
    >>> KCore(2).aggregator
    'sum'
    """

    name = "kcore"
    aggregator = "sum"
    # Degree counts both directions: cores live on the undirected graph.
    needs_in_and_out = True
    supports_async = False
    supports_delta = False

    def __init__(self, k: int, max_iters: int = 10_000):
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)
        self.max_iters = int(max_iters)
        self.name = f"kcore{self.k}"

    def initial_value(self, vertex_ids: np.ndarray, ctx: Dict[str, Any]) -> np.ndarray:
        return np.ones(len(vertex_ids), dtype=np.float64)

    def scatter_values(self, values: np.ndarray, out_deg_total: np.ndarray) -> np.ndarray:
        # One census ticket per edge from each surviving vertex (peeled
        # vertices are inactive and never reach the scatter, but their
        # zero value keeps stray messages harmless).
        return values

    def apply(
        self, old: np.ndarray, agg: np.ndarray, got: np.ndarray, ctx: Dict[str, Any]
    ) -> Tuple[np.ndarray, np.ndarray]:
        support = np.where(got, agg, 0.0)
        survives = (old > 0.5) & (support >= self.k)
        new = survives.astype(np.float64)
        # Survivors stay active: the census repeats until nobody peels.
        return new, survives

    def step_stats(
        self, old: np.ndarray, new: np.ndarray, active: np.ndarray
    ) -> Dict[str, float]:
        return {
            "active": float(active.sum()),
            "peeled": float(((old > 0.5) & (new < 0.5)).sum()),
        }

    def halt(self, step: int, stats: Dict[str, float], ctx: Dict[str, Any]) -> bool:
        if step >= self.max_iters:
            return True
        # Step 0 is the initial scatter; the first census lands at step 1.
        return step >= 1 and stats.get("peeled", 0) == 0
