"""Label-propagation community detection via a max-ticket lottery.

Classic LPA adopts the *most frequent* neighbor label each round — a
mode, which is not a commutative/associative reduction and so cannot
ride the agents' pre-aggregating data plane.  The lottery reformulation
can: each vertex holds a (score, label) ticket packed into one float,
re-drawing a fresh pseudo-random score for its label every round, and
every vertex adopts the label of the best ticket among its neighbors
and itself.  Because each neighbor holds an independent ticket, a label
carried by many neighbors holds many lottery tickets and wins with
probability proportional to its frequency — the mode in expectation —
while the reduction itself is a plain ``max``, which replicas can fold
in any grouping with bit-identical results (tickets are exact integers
below 2**53).

Scores are drawn by hashing the vertex id with the vertex's previous
ticket, so the randomness is deterministic, reshuffles every round, and
needs no round counter (programs are stateless and shared across
agents).  Labels settle inside densely connected regions — where the
winning ticket almost always carries the local consensus label — and
cross sparse cuts rarely, which is what makes the fixpoint a community
structure rather than connected components.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.core.program import VertexProgram
from repro.hashing.hashes import wang64

#: Bits reserved for the label in a packed ticket.  Labels are vertex
#: ids, so graphs up to ~16.7M vertices fit; scores use 28 more bits,
#: keeping every ticket an exact float64 integer (< 2**52).
_LABEL_BITS = 24
_LABEL_MOD = np.int64(1) << np.int64(_LABEL_BITS)
_SCORE_MASK = np.uint64((1 << 28) - 1)
_SALT = np.uint64(0x9E3779B97F4A7C15)


def _pack(scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
    return (scores.astype(np.float64) * float(_LABEL_MOD)) + labels.astype(np.float64)


def _draw_scores(ids: np.ndarray, entropy: np.ndarray) -> np.ndarray:
    """28-bit per-vertex scores from (vertex id, previous ticket)."""
    with np.errstate(over="ignore"):
        mixed = wang64(
            ids.astype(np.uint64) * _SALT ^ entropy.astype(np.int64).astype(np.uint64)
        )
    return (np.asarray(mixed, dtype=np.uint64) & _SCORE_MASK).astype(np.float64)


class LabelPropagation(VertexProgram):
    """Community detection by lottery-max label propagation.

    Final values decode to labels via ``labels(values)``; vertices with
    equal labels share a community.

    Examples
    --------
    >>> LabelPropagation().aggregator
    'max'
    """

    name = "lpa"
    aggregator = "max"
    needs_in_and_out = True
    supports_async = False
    supports_delta = False

    def __init__(self, max_iters: int = 30):
        self.max_iters = int(max_iters)

    @staticmethod
    def labels(values: np.ndarray) -> np.ndarray:
        """Decode packed tickets to community labels."""
        return (np.asarray(values, dtype=np.float64) % float(_LABEL_MOD)).astype(
            np.int64
        )

    def initial_value(self, vertex_ids: np.ndarray, ctx: Dict[str, Any]) -> np.ndarray:
        ids = np.asarray(vertex_ids, dtype=np.int64)
        if len(ids) and ids.max(initial=0) >= int(_LABEL_MOD):
            raise ValueError(
                f"LabelPropagation packs labels into {_LABEL_BITS} bits; "
                f"vertex id {int(ids.max())} does not fit"
            )
        return _pack(_draw_scores(ids, ids), ids)

    def scatter_values(self, values: np.ndarray, out_deg_total: np.ndarray) -> np.ndarray:
        # The message *is* the ticket.
        return values

    def apply(
        self, old: np.ndarray, agg: np.ndarray, got: np.ndarray, ctx: Dict[str, Any]
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Best ticket among the neighbors' and our own: a neighbor label
        # displaces ours only when its lottery draw beats ours, which
        # happens with frequency proportional to how many neighbors
        # carry it.
        best = np.where(got, np.maximum(old, agg), old)
        labels = self.labels(best)
        ids = np.asarray(ctx["_vertex_ids"], dtype=np.int64)
        # Re-draw next round's score from (id, this round's winner) —
        # deterministic, but fresh entropy every round.
        new = _pack(_draw_scores(ids, best), labels)
        return new, np.ones(len(old), dtype=bool)

    def step_stats(
        self, old: np.ndarray, new: np.ndarray, active: np.ndarray
    ) -> Dict[str, float]:
        return {
            "active": float(active.sum()),
            "changed": float((self.labels(old) != self.labels(new)).sum()),
        }

    def halt(self, step: int, stats: Dict[str, float], ctx: Dict[str, Any]) -> bool:
        if step >= self.max_iters:
            return True
        # Labels at a fixpoint of the lottery dynamics: every vertex's
        # own consensus ticket won.  Give the shuffle a few rounds
        # before trusting a quiet step.
        return step >= 3 and stats.get("changed", 0) == 0
