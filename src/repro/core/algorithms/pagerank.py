"""PageRank vertex program (§4.3).

"At each iteration, a vertex receives messages from each in-neighbor,
aggregates them with a sum, scales the value, and sends its values out
to its out-neighbors."  Termination matches the baselines: the run halts
when the global L1 residual drops below ``tol`` or after ``max_iters``
supersteps; the paper validates agreement to 1e-8 across systems.

In the dynamic case PageRank converges from the previous fixpoint by
residual propagation: because p = (1-d)/n + d·Mᵀp is linear, only the
*change* in each vertex's scattered value needs to flow.  Every vertex
remembers the last per-edge value it sent; an active vertex scatters
``s_new - s_last`` and a receiver folds ``d · Σ deltas`` straight into
its rank.  Edge mutations (u, v, ±1) inject round-0 seeds of ±u's old
per-edge message at v, so inserting and deleting the same edge cancels
exactly.  Vertices whose |Δp| falls under an activation threshold drop
out of the frontier; the run halts on global quiescence or when the L1
residual dips below ``tol``, matching the from-scratch tolerance.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.program import VertexProgram


class PageRank(VertexProgram):
    """Synchronous PageRank.

    Parameters
    ----------
    damping:
        Damping factor d (0.85, as everywhere).
    tol:
        Global L1 convergence threshold.
    max_iters:
        Superstep cap.
    delta_tol:
        Per-vertex activation threshold for delta runs: a vertex leaves
        the frontier once |Δp| drops under it.  Defaults to
        ``tol / global_n``, which bounds the extra steady-state error of
        a delta run by ``tol · d/(1-d)`` in L1 — the same order as the
        halt tolerance itself.

    Examples
    --------
    >>> pr = PageRank(damping=0.85, tol=1e-8)
    >>> pr.aggregator
    'sum'
    """

    name = "pagerank"
    aggregator = "sum"
    needs_in_and_out = False
    supports_async = False
    supports_delta = True
    delta_messages = True
    requires_stable_n = True

    def __init__(
        self,
        damping: float = 0.85,
        tol: float = 1e-8,
        max_iters: int = 100,
        delta_tol: Optional[float] = None,
    ):
        if not 0 < damping < 1:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        if delta_tol is not None and delta_tol <= 0:
            raise ValueError(f"delta_tol must be positive, got {delta_tol}")
        self.damping = float(damping)
        self.tol = float(tol)
        self.max_iters = int(max_iters)
        self.delta_tol = None if delta_tol is None else float(delta_tol)

    def _activation_threshold(self, ctx: Dict[str, Any]) -> float:
        if self.delta_tol is not None:
            return self.delta_tol
        return self.tol / max(int(ctx.get("global_n", 1)), 1)

    def initial_value(self, vertex_ids: np.ndarray, ctx: Dict[str, Any]) -> np.ndarray:
        n = max(int(ctx["global_n"]), 1)
        return np.full(len(vertex_ids), 1.0 / n)

    def scatter_values(self, values: np.ndarray, out_deg_total: np.ndarray) -> np.ndarray:
        # Dangling vertices have no out-edges, so the guard value is
        # never used — it only avoids a divide warning.
        return values / np.maximum(out_deg_total, 1.0)

    def apply(
        self, old: np.ndarray, agg: np.ndarray, got: np.ndarray, ctx: Dict[str, Any]
    ) -> Tuple[np.ndarray, np.ndarray]:
        from repro import kernels

        n = max(int(ctx["global_n"]), 1)
        new = kernels.pagerank_apply(
            np.asarray(agg, dtype=np.float64), (1.0 - self.damping) / n, self.damping
        )
        # PageRank is dense: every vertex recomputes and rescatters every
        # superstep until the global residual halts the run.
        return new, np.ones(len(old), dtype=bool)

    def step_stats(
        self, old: np.ndarray, new: np.ndarray, active: np.ndarray
    ) -> Dict[str, float]:
        return {
            "residual": float(np.abs(new - old).sum()),
            "active": float(active.sum()),
        }

    def halt(self, step: int, stats: Dict[str, float], ctx: Dict[str, Any]) -> bool:
        if step >= self.max_iters:
            return True
        # Step 0 is the initial scatter; residuals exist from step 1 on.
        return step >= 1 and stats.get("residual", np.inf) < self.tol

    # -- incremental (delta) hooks ------------------------------------------

    def affected(
        self,
        role: str,
        keys: np.ndarray,
        others: np.ndarray,
        actions: np.ndarray,
        ctx: Dict[str, Any],
    ) -> np.ndarray:
        # A mutated out-edge changes u's per-edge message (its degree
        # moved), so u must rescatter.  The destination v needs no
        # a-priori activation: the round-0 seed correction reaches it as
        # a message and delta_apply activates it if the change matters.
        if role == "out":
            return np.unique(keys)
        return np.empty(0, dtype=np.int64)

    def delta_seed_values(
        self,
        role: str,
        keys: np.ndarray,
        others: np.ndarray,
        actions: np.ndarray,
        values: np.ndarray,
        out_deg_old: np.ndarray,
        ctx: Dict[str, Any],
    ) -> Optional[np.ndarray]:
        if role != "out":
            return None
        # ±(u's old per-edge message): what v used to receive along the
        # mutated edge.  A vertex that had no out-edges never sent
        # anything, so its seed is zero.
        seeds = actions * values / np.maximum(out_deg_old, 1.0)
        return np.where(out_deg_old > 0, seeds, 0.0)

    def delta_flush_mask(
        self,
        values: np.ndarray,
        out_deg_total: np.ndarray,
        last_sent: np.ndarray,
        ctx: Dict[str, Any],
    ) -> Optional[np.ndarray]:
        # Unsent rank mass still owed to out-neighbors: per-edge pending
        # times fan-out.  NaN baselines (split rows) compare False.
        pending = self.scatter_values(values, out_deg_total) - last_sent
        mass = np.abs(pending) * out_deg_total
        return mass > self._activation_threshold(ctx)

    def delta_apply(
        self, old: np.ndarray, agg: np.ndarray, got: np.ndarray, ctx: Dict[str, Any]
    ) -> Tuple[np.ndarray, np.ndarray]:
        # agg is the summed change in incoming messages; the linearity
        # of p = (1-d)/n + d·Σ means the rank moves by exactly d·agg.
        delta = np.where(got, self.damping * agg, 0.0)
        new = old + delta
        return new, np.abs(delta) > self._activation_threshold(ctx)

    def delta_stats(
        self, old: np.ndarray, new: np.ndarray, active: np.ndarray
    ) -> Dict[str, float]:
        resid = np.abs(new - old)
        return {
            "residual": float(resid.sum()),
            "active": float(active.sum()),
            # max_-prefixed: the directory folds this by maximum, not sum.
            "max_residual": float(resid.max(initial=0.0)),
        }

    def delta_halt(self, step: int, stats: Dict[str, float], ctx: Dict[str, Any]) -> bool:
        if step >= self.max_iters:
            return True
        if step < 1:
            return False
        # Frontier quiescence, or the same L1 tolerance as from-scratch.
        return stats.get("active", 0) == 0 or stats.get("residual", np.inf) < self.tol
