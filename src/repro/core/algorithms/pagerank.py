"""PageRank vertex program (§4.3).

"At each iteration, a vertex receives messages from each in-neighbor,
aggregates them with a sum, scales the value, and sends its values out
to its out-neighbors."  Termination matches the baselines: the run halts
when the global L1 residual drops below ``tol`` or after ``max_iters``
supersteps; the paper validates agreement to 1e-8 across systems.

In the dynamic case PageRank is restarted from the persisted ranks
(every vertex active — rank mass moves globally on any change), which
converges in far fewer iterations than from scratch when the batch is
small.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.core.program import VertexProgram


class PageRank(VertexProgram):
    """Synchronous PageRank.

    Parameters
    ----------
    damping:
        Damping factor d (0.85, as everywhere).
    tol:
        Global L1 convergence threshold.
    max_iters:
        Superstep cap.

    Examples
    --------
    >>> pr = PageRank(damping=0.85, tol=1e-8)
    >>> pr.aggregator
    'sum'
    """

    name = "pagerank"
    aggregator = "sum"
    needs_in_and_out = False
    supports_async = False

    def __init__(self, damping: float = 0.85, tol: float = 1e-8, max_iters: int = 100):
        if not 0 < damping < 1:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        self.damping = float(damping)
        self.tol = float(tol)
        self.max_iters = int(max_iters)

    def initial_value(self, vertex_ids: np.ndarray, ctx: Dict[str, Any]) -> np.ndarray:
        n = max(int(ctx["global_n"]), 1)
        return np.full(len(vertex_ids), 1.0 / n)

    def scatter_values(self, values: np.ndarray, out_deg_total: np.ndarray) -> np.ndarray:
        # Dangling vertices have no out-edges, so the guard value is
        # never used — it only avoids a divide warning.
        return values / np.maximum(out_deg_total, 1.0)

    def apply(
        self, old: np.ndarray, agg: np.ndarray, got: np.ndarray, ctx: Dict[str, Any]
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = max(int(ctx["global_n"]), 1)
        new = (1.0 - self.damping) / n + self.damping * agg
        # PageRank is dense: every vertex recomputes and rescatters every
        # superstep until the global residual halts the run.
        return new, np.ones(len(old), dtype=bool)

    def step_stats(
        self, old: np.ndarray, new: np.ndarray, active: np.ndarray
    ) -> Dict[str, float]:
        return {
            "residual": float(np.abs(new - old).sum()),
            "active": float(active.sum()),
        }

    def halt(self, step: int, stats: Dict[str, float], ctx: Dict[str, Any]) -> bool:
        if step >= self.max_iters:
            return True
        # Step 0 is the initial scatter; residuals exist from step 1 on.
        return step >= 1 and stats.get("residual", np.inf) < self.tol
