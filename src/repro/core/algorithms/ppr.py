"""Personalized PageRank — a teleport-to-source PageRank variant.

The paper's evaluation uses global PageRank; personalized PageRank is
the single-seed variant behind "who matters *to this vertex*" queries
(recommendation, similarity).  It exercises the same synchronous
machinery with a non-uniform teleport vector: rank mass restarts at the
source instead of spreading uniformly, so the result concentrates
around the seed's neighborhood.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.core.program import VertexProgram


class PersonalizedPageRank(VertexProgram):
    """Synchronous personalized PageRank.

    Parameters
    ----------
    source:
        The seed vertex: all teleport mass restarts here.
    damping, tol, max_iters:
        As for global PageRank.

    Examples
    --------
    >>> PersonalizedPageRank(source=3).aggregator
    'sum'
    """

    name = "personalized-pagerank"
    aggregator = "sum"
    needs_in_and_out = False
    supports_async = False

    def __init__(
        self,
        source: int,
        damping: float = 0.85,
        tol: float = 1e-8,
        max_iters: int = 100,
    ):
        if not 0 < damping < 1:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        self.source = int(source)
        self.damping = float(damping)
        self.tol = float(tol)
        self.max_iters = int(max_iters)

    def initial_value(self, vertex_ids: np.ndarray, ctx: Dict[str, Any]) -> np.ndarray:
        values = np.zeros(len(vertex_ids))
        values[np.asarray(vertex_ids) == self.source] = 1.0
        return values

    def scatter_values(self, values: np.ndarray, out_deg_total: np.ndarray) -> np.ndarray:
        return values / np.maximum(out_deg_total, 1.0)

    def apply(
        self, old: np.ndarray, agg: np.ndarray, got: np.ndarray, ctx: Dict[str, Any]
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Teleport mass restarts entirely at the source vertex.
        restart = (np.asarray(ctx["_vertex_ids"]) == self.source).astype(float) if "_vertex_ids" in ctx else None
        if restart is None:
            raise RuntimeError("personalized PageRank requires vertex ids in context")
        new = (1.0 - self.damping) * restart + self.damping * agg
        return new, np.ones(len(old), dtype=bool)

    def step_stats(
        self, old: np.ndarray, new: np.ndarray, active: np.ndarray
    ) -> Dict[str, float]:
        return {
            "residual": float(np.abs(new - old).sum()),
            "active": float(active.sum()),
        }

    def halt(self, step: int, stats: Dict[str, float], ctx: Dict[str, Any]) -> bool:
        if step >= self.max_iters:
            return True
        return step >= 1 and stats.get("residual", np.inf) < self.tol
