"""Single-source shortest paths — the asynchronous extension program.

The paper lists studying algorithms with different communication
patterns as future work (§4.3) and describes asynchronous execution,
where a vertex is processed as soon as it has no outstanding awaited
messages (§3.2).  Unweighted SSSP (hop counts) is the canonical
monotone program for that mode: distances only decrease, min-aggregation
is order-insensitive, so relaxations can be applied the moment a message
arrives, and the run ends at quiescence.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.core.program import VertexProgram


class SSSP(VertexProgram):
    """Unweighted single-source shortest paths (hop distance).

    Parameters
    ----------
    source:
        The source vertex id (distance 0); unreachable vertices keep
        ``inf``.

    Examples
    --------
    >>> SSSP(source=0).supports_async
    True
    """

    name = "sssp"
    aggregator = "min"
    needs_in_and_out = False
    supports_async = True

    def __init__(self, source: int, max_iters: int = 10_000):
        self.source = int(source)
        self.max_iters = int(max_iters)

    def initial_value(self, vertex_ids: np.ndarray, ctx: Dict[str, Any]) -> np.ndarray:
        values = np.full(len(vertex_ids), np.inf)
        values[np.asarray(vertex_ids) == self.source] = 0.0
        return values

    def initially_active(self, vertex_ids, values, ctx):
        # Only the source has anything to say at step 0.
        return np.asarray(values) == 0.0

    def scatter_values(self, values: np.ndarray, out_deg_total: np.ndarray) -> np.ndarray:
        # Message along an out-edge proposes distance-through-me.
        return values + 1.0

    def apply(
        self, old: np.ndarray, agg: np.ndarray, got: np.ndarray, ctx: Dict[str, Any]
    ) -> Tuple[np.ndarray, np.ndarray]:
        new = np.minimum(old, agg)
        return new, new < old

    def halt(self, step: int, stats: Dict[str, float], ctx: Dict[str, Any]) -> bool:
        if step >= self.max_iters:
            return True
        return step >= 1 and stats.get("active", 0) == 0
