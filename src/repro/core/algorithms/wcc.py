"""Weakly-connected-components vertex program (§4.3).

"A vertex aggregates and sends with a minimum instead of a sum and only
sends updated minimums, but to both in- and out-neighbors."  Static
runs initialize every vertex to its own id; the incremental case
(insertions) retains prior component labels and activates only the
vertices directly modified by the batch, and labels then flow from
activated vertices until quiescence (Figure 15).

Incremental correctness note: with *insertions only*, min-label
propagation from the batch's endpoints is exact — labels are monotone
decreasing.  Deletions can split components and require recomputation;
the engine falls back to a full run when a batch contains deletions,
the same policy the paper's incremental experiments use (§4.3, §4.9).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.core.program import VertexProgram


class WCC(VertexProgram):
    """Weakly connected components by min-label propagation.

    Two vertices end in the same component iff their final labels are
    equal; labels are the minimum vertex id in the component.

    Examples
    --------
    >>> WCC().aggregator
    'min'
    """

    name = "wcc"
    aggregator = "min"
    needs_in_and_out = True
    supports_async = True
    # Monotone label-shrink repair: insertions activate both endpoints,
    # absolute labels re-fold safely (no delta messages needed), and
    # deletions invalidate the fixpoint (labels cannot grow back).
    supports_delta = True
    deletions_invalidate = True

    def __init__(self, max_iters: int = 10_000):
        self.max_iters = int(max_iters)

    def initial_value(self, vertex_ids: np.ndarray, ctx: Dict[str, Any]) -> np.ndarray:
        return np.asarray(vertex_ids, dtype=np.float64)

    def scatter_values(self, values: np.ndarray, out_deg_total: np.ndarray) -> np.ndarray:
        return values

    def apply(
        self, old: np.ndarray, agg: np.ndarray, got: np.ndarray, ctx: Dict[str, Any]
    ) -> Tuple[np.ndarray, np.ndarray]:
        new = np.minimum(old, agg)
        # "Only sends updated minimums": a vertex re-scatters only when
        # its label improved this superstep.
        return new, new < old

    def halt(self, step: int, stats: Dict[str, float], ctx: Dict[str, Any]) -> bool:
        if step >= self.max_iters:
            return True
        return step >= 1 and stats.get("active", 0) == 0
