"""The ElGA facade — the library's main entry point.

Wraps a simulated cluster behind the operations a user of the real
system performs: ingest a stream of edge changes, run algorithms
(static, incremental, sync or async), query results with ClientProxies,
and scale the cluster up or down — including during a computation
(Figure 17).

Example
-------
>>> import numpy as np
>>> from repro.core import ElGA, PageRank
>>> elga = ElGA(nodes=2, agents_per_node=2, seed=7)
>>> us = np.array([0, 1, 2, 3]); vs = np.array([1, 2, 3, 0])
>>> _ = elga.ingest_edges(us, vs)
>>> result = elga.run(PageRank(max_iters=5))
>>> abs(sum(result.values.values()) - 1.0) < 1e-6
True
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro.cluster.cluster import ElGACluster, sorted_agents
from repro.cluster.config import ClusterConfig
from repro.core.program import RunSpec, VertexProgram
from repro.core.superstep import RunResult, SyncRunController
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import EdgeBatch, REMOVE


class ElGA:
    """An elastic, dynamic graph-analysis deployment.

    Parameters
    ----------
    nodes, agents_per_node:
        Cluster shape (defaults are laptop-sized; the paper runs 64
        nodes × 32 agents).
    seed:
        Experiment root seed; drives every entity's randomness.
    config:
        A full :class:`~repro.cluster.config.ClusterConfig`, overriding
        the shape arguments.
    keep_reference:
        Maintain a single-process mirror of the graph.  It is never
        used for computation — only for ``global_n`` (which the real
        system tracks through directory statistics) and for test
        validation against ground truth.
    config_overrides:
        Extra :class:`ClusterConfig` fields (hash_name, sketch_width,
        replication_threshold, ...).
    """

    def __init__(
        self,
        nodes: int = 2,
        agents_per_node: int = 2,
        seed: int = 0,
        config: Optional[ClusterConfig] = None,
        keep_reference: bool = True,
        **config_overrides,
    ):
        if config is None:
            config = ClusterConfig(
                nodes=nodes, agents_per_node=agents_per_node, seed=seed, **config_overrides
            )
        self.config = config
        self.cluster = ElGACluster(config)
        self.reference: Optional[DynamicGraph] = DynamicGraph() if keep_reference else None
        self._run_counter = 0
        # Per-program incremental bookkeeping.  ``_batch_log`` records
        # each applied mutation batch (touched vertices, whether it
        # deleted anything); ``_program_meta`` records, per program,
        # how much of the log its last completed run consumed plus the
        # conditions its fixpoint was computed under (|V|, membership).
        # The log prefix every known program has consumed is trimmed.
        self._batch_log: List[dict] = []
        self._batch_base = 0
        self._program_meta: Dict[str, dict] = {}
        self.ingest_reports: List[dict] = []
        self._active_controller: Optional[SyncRunController] = None
        # Recovery-mode bookkeeping for the current sync run: who was a
        # member when it started, and whether a mid-run elastic scale
        # already reshaped membership (which invalidates rollback).
        self._run_members: Set[int] = set()
        self._scaled_mid_run = False
        # High-water mark (spans, events) into the trace consumed by
        # maybe_rebalance.  Round ids reset per run, so TraceSummary
        # rows from successive runs merge; planning from the cumulative
        # trace would mix pre- and post-migration load.  Each planning
        # pass therefore only reads the window recorded since the last.
        self._rebalance_trace_mark = (0, 0)

    # ------------------------------------------------------------------
    # graph mutation
    # ------------------------------------------------------------------

    def ingest_edges(self, us, vs, n_streamers: int = 1, flush: bool = True) -> dict:
        """Insert an edge list (convenience over :meth:`apply_batch`)."""
        return self.apply_batch(EdgeBatch.insertions(us, vs), n_streamers, flush)

    def quiesce(self) -> None:
        """Advance simulated time until every agent is idle.

        After an update batch, agents still owe charged background work
        (sketch maintenance, the post-broadcast migration check over
        resident edges).  That backlog otherwise drains inside the next
        run's measured window, which blurs ingest-side maintenance into
        analysis time; benchmarks that want to time *analysis* call
        this between the batch and the run.
        """
        self.cluster.settle()
        kernel = self.cluster.kernel
        horizon = max(
            (agent.available_at() for agent in sorted_agents(self.cluster.agents)),
            default=kernel.now,
        )
        if horizon > kernel.now:
            kernel.run(until=horizon)
            self.cluster.settle()

    def apply_batch(self, batch: EdgeBatch, n_streamers: int = 1, flush: bool = True) -> dict:
        """Stream one change batch in and wait for acknowledgement.

        With ``flush`` (default), degree deltas are pushed into the
        global sketch and broadcast afterwards, so the next run's
        placement sees current degrees.
        """
        if self.reference is not None:
            self.reference.apply_batch(batch)
        report = self.cluster.ingest(batch, n_streamers=n_streamers)
        # The directory's batch clock is the monotonically increasing
        # consistency marker of §3.3; every applied batch bumps it.
        report["batch_id"] = self.cluster.lead.advance_batch_clock()
        if flush:
            self.cluster.flush_sketches()
        else:
            self.cluster.settle()
        self._batch_log.append(
            {
                "touched": {int(v) for v in batch.touched_vertices},
                "deletions": bool((batch.actions == REMOVE).any()),
            }
        )
        self.ingest_reports.append(report)
        return report

    @property
    def global_n(self) -> int:
        """Number of vertices currently in the graph."""
        if self.reference is not None:
            return self.reference.num_vertices
        seen: Set[int] = set()
        for agent in sorted_agents(self.cluster.agents):
            seen.update(agent.out_store)
            seen.update(agent.in_store)
        return len(seen)

    @property
    def global_m(self) -> int:
        """Number of edges currently in the graph."""
        if self.reference is not None:
            return self.reference.num_edges
        # Each edge is resident twice (out-copy + in-copy).
        return self.cluster.total_resident_edges() // 2

    # ------------------------------------------------------------------
    # incremental strategy resolution
    # ------------------------------------------------------------------

    def _pending_batches(self, name: str) -> List[dict]:
        """Batches applied since ``name``'s last completed run."""
        mark = self._program_meta.get(name, {}).get("watermark", self._batch_base)
        return self._batch_log[max(0, mark - self._batch_base):]

    def _pending_touched(self, name: str) -> Set[int]:
        touched: Set[int] = set()
        for entry in self._pending_batches(name):
            touched |= entry["touched"]
        return touched

    def _resolve_strategy(self, program: VertexProgram, activate) -> str:
        """Pick how an ``incremental=True`` run actually executes.

        * ``"scratch"`` — full recompute: no prior fixpoint exists, or
          pending deletions invalidate the program's monotone reuse
          (and the caller didn't pin an explicit frontier).
        * ``"dense"`` — warm start from the previous fixpoint with a
          conservative activation: the program can reuse values but the
          conditions for exact delta propagation don't hold (membership
          changed, |V| changed under a stable-n program, the frontier
          touches a split vertex, or the program has no delta protocol).
        * ``"delta"`` — converge from the previous fixpoint: agents seed
          the frontier from their dirty mutation rows and propagate only
          residuals (delta-message programs) or repaired labels.
        """
        meta = self._program_meta.get(program.name)
        if meta is None:
            return "scratch"
        pending = self._pending_batches(program.name)
        if (
            activate is None
            and getattr(program, "deletions_invalidate", False)
            and any(entry["deletions"] for entry in pending)
        ):
            return "scratch"
        if not getattr(program, "supports_delta", False):
            return "dense"
        if getattr(program, "requires_stable_n", False) and self.global_n != meta["n"]:
            return "dense"
        if meta["members"] != frozenset(self.cluster.agents):
            # Reshaped (or crash-replaced by a *different* id set)
            # since the fixpoint: per-agent dirty logs and baselines
            # may have moved under the program; play it safe.
            return "dense"
        split = set(self.cluster.lead.state.split_vertices)
        if split and (self._pending_touched(program.name) & split):
            # Split vertices scatter via replica choreography whose
            # local degrees delta seeding cannot reconstruct.
            return "dense"
        return "delta"

    def _record_program_meta(self, name: str) -> None:
        """A run of ``name`` just completed and persisted its fixpoint:
        it consumed every batch applied so far, under the current
        vertex count and membership."""
        self._program_meta[name] = {
            "watermark": self._batch_base + len(self._batch_log),
            "n": self.global_n,
            "members": frozenset(self.cluster.agents),
        }
        cut = min(m["watermark"] for m in self._program_meta.values()) - self._batch_base
        if cut > 0:
            del self._batch_log[:cut]
            self._batch_base += cut

    # ------------------------------------------------------------------
    # running algorithms
    # ------------------------------------------------------------------

    def run(
        self,
        program: VertexProgram,
        mode: str = "sync",
        incremental: bool = False,
        activate: Optional[np.ndarray] = None,
        scale_plan: Optional[Dict[int, int]] = None,
        crash_plan: Optional[Dict[int, int]] = None,
        rebalance_plan: Optional[Dict[int, Dict[int, float]]] = None,
    ) -> RunResult:
        """Execute a vertex program to convergence.

        Parameters
        ----------
        mode:
            ``"sync"`` (BSP, Figure 2 barriers) or ``"async"``
            (monotone programs relaxed on message arrival).
        incremental:
            Continue from the previous run of the same program,
            activating only ``activate`` (defaults to the vertices
            touched by batches applied since the last run) — the
            dynamic algorithm of Definition 2.5.
        scale_plan:
            Mid-run manual scaling: ``{superstep: agent_count}``
            reshapes the cluster after that superstep completes
            (Figure 17's operator action).  Sync mode only.
        crash_plan:
            Injected abrupt failures: ``{superstep: target}`` fires
            shortly after the barrier for that superstep completes.  A
            plain int target crashes that many agents (no drain); a dict
            ``{"agents": n, "lead": bool, "master": bool}`` additionally
            crashes the lead Directory and/or the DirectoryMaster (the
            master is restarted after ``master_restart_delay``).  Agent
            detection and recovery run through the normal
            heartbeat/checkpoint machinery (requires
            ``heartbeat_interval > 0``); a lead crash requires directory
            failover (``dir_lease_interval > 0`` and at least two
            directories).  Sync mode only.
        rebalance_plan:
            Mid-run ring re-weighting: ``{superstep: {agent_id:
            weight}}`` adopts the weight map after that superstep
            completes, through the same apply-only/suspend/resume
            choreography as ``scale_plan`` (and composable with it at
            the same step).  The directory adoption is term-fenced and
            epoch-bumping; misplaced edges re-home over EDGE_MIGRATE
            before the run resumes.  Sync mode only.

        Notes
        -----
        How an incremental run executes is resolved per program (see
        :meth:`_resolve_strategy`): exact delta propagation from the
        previous fixpoint where the program supports it and conditions
        allow, a dense warm start otherwise, and a from-scratch run
        when reuse is invalid — e.g. incremental WCC with deletions is
        undoable territory [31]; as in the paper's experiments, a batch
        containing deletions forces a full recompute.
        """
        strategy = "scratch"
        if incremental:
            strategy = self._resolve_strategy(program, activate)
            if strategy == "scratch":
                incremental = False
                activate = None
            elif strategy == "dense" and activate is None and not getattr(
                program, "supports_delta", False
            ):
                # Legacy warm-start semantics for programs without a
                # delta protocol: activate the touched frontier.
                activate = np.array(
                    sorted(self._pending_touched(program.name)), dtype=np.int64
                )
        self._run_counter += 1
        spec = RunSpec(
            run_id=self._run_counter,
            program=program,
            incremental=incremental,
            global_n=self.global_n,
            mode=mode,
            activate=activate,
            strategy=strategy,
        )
        if mode == "async":
            if crash_plan:
                raise ValueError("crash_plan requires synchronous mode")
            if rebalance_plan:
                raise ValueError("rebalance_plan requires synchronous mode")
            result = self._run_async(spec)
        elif mode != "sync":
            raise ValueError(f"unknown mode {mode!r}")
        else:
            result = self._run_sync(spec, scale_plan, crash_plan, rebalance_plan)
        self._record_program_meta(program.name)
        return result

    def _run_sync(
        self,
        spec: RunSpec,
        scale_plan: Optional[Dict[int, int]],
        crash_plan: Optional[Dict[int, int]] = None,
        rebalance_plan: Optional[Dict[int, Dict[int, float]]] = None,
    ) -> RunResult:
        if crash_plan:
            targets_agents = any(
                (int(e.get("agents", 0)) if isinstance(e, dict) else int(e)) > 0
                for e in crash_plan.values()
            )
            if targets_agents and self.config.heartbeat_interval <= 0:
                raise ValueError(
                    "crash_plan needs failure detection: set heartbeat_interval > 0"
                )
            if any(
                isinstance(e, dict) and e.get("lead") for e in crash_plan.values()
            ) and (
                self.config.dir_lease_interval <= 0 or self.config.n_directories < 2
            ):
                raise ValueError(
                    "a lead-directory crash needs failover: set "
                    "dir_lease_interval > 0 and n_directories >= 2"
                )
        kernel = self.cluster.kernel
        controller = SyncRunController(
            spec,
            kernel,
            scale_plan=scale_plan,
            on_suspended=self._on_run_suspended,
            crash_plan=crash_plan,
            on_crash=self._on_crash_due,
            tracer=self.tracer,
            rebalance_plan=rebalance_plan,
        )
        self._active_controller = controller
        self._run_members = set(self.cluster.agents)
        self._scaled_mid_run = False
        # Installed through the cluster, not pinned on one Directory
        # object: a lead election mid-run re-homes the controller onto
        # the successor.  ``cluster.lead`` is likewise re-read at every
        # use below — never captured in a local.
        self.cluster.install_run_controller(controller, self._on_agent_evicted)
        start = kernel.now
        self.cluster.lead.send_run_start(spec)
        self.cluster.settle()
        self.cluster.uninstall_run_controller()
        self._active_controller = None
        # Restart-mode recovery may have reissued the run under a fresh
        # run_id; prune whatever id actually completed.
        self.cluster.recovery.prune_run(controller.spec.run_id)
        if not controller.done:
            raise RuntimeError(
                "run ended without halting — barrier deadlock or lost messages"
            )
        tracer = self.tracer
        if tracer is not None:
            tracer.complete(
                "engine",
                f"run:{spec.program.name}",
                "run",
                start,
                kernel.now,
                {
                    "run_id": controller.spec.run_id,
                    "mode": "sync",
                    "steps": controller.final_step,
                },
            )
        return RunResult(
            program_name=spec.program.name,
            run_id=controller.spec.run_id,
            mode="sync",
            values=self._collect(spec.program.name),
            steps=controller.final_step,
            sim_seconds=kernel.now - start,
            round_durations=controller.round_durations,
            stats_history=controller.stats_history,
            strategy=spec.strategy,
        )

    def _on_run_suspended(
        self,
        round_id: int,
        step: int,
        target_agents: Optional[int],
        weights: Optional[Dict[int, float]] = None,
    ) -> None:
        """Mid-run elastic scaling and/or re-weighting: reshape, wait
        for quiescence, resume.

        Runs inside the simulator (scheduled from the barrier callback),
        so the whole sequence happens in simulated time, like the
        paper's operator issuing pdsh/SIGINT commands mid-computation.
        Either plan invalidates rollback recovery: checkpoints were
        taken under the pre-reshape partition, and rolling values back
        under the new one would resurrect a residency the migration
        already moved.
        """
        controller = self._active_controller
        self._scaled_mid_run = True
        if weights:
            self.cluster.rebalance(weights, settle=False)
        if target_agents is not None:
            self.cluster.scale_to(target_agents, settle=False)
        self._run_members = set(self.cluster.agents)

        def poll() -> None:
            if controller.done or controller.phase != "apply_only":
                # Recovery restarted (or halt ended) the run while the
                # suspension was draining — e.g. an agent died with
                # migrations in flight and eviction forced a restart.
                # The restarted run owns the barrier now; a late resume
                # from the pre-crash suspension would replay a stale
                # round into it.
                return
            if self.cluster.consistent():
                self.cluster.lead.send_advance(
                    controller.resume_payload(round_id + 1, step)
                )
            else:
                self.cluster.kernel.schedule(1e-3, poll)

        self.cluster.kernel.schedule(1e-3, poll)

    def _on_crash_due(self, entry) -> None:
        """Controller-scheduled fault injection: fire ``entry`` a beat
        after the superstep's ADVANCE goes out, so the failure lands
        mid-superstep with messages in flight.

        ``entry`` is either an int (crash that many agents — the legacy
        plan shape) or a dict ``{"agents": n, "lead": bool,
        "master": bool}`` extending the blast radius to the control
        plane.  A crashed master is restarted after
        ``master_restart_delay`` (the simulated operator's MTTR); a
        crashed lead Directory is *not* — the peers' election replaces
        it."""
        if isinstance(entry, dict):
            agents = int(entry.get("agents", 0))
            lead = bool(entry.get("lead", False))
            master = bool(entry.get("master", False))
        else:
            agents, lead, master = int(entry), False, False

        def crash() -> None:
            if lead:
                self.cluster.crash_directory()
            if master:
                self.cluster.crash_master()
                self.cluster.kernel.schedule(
                    self.config.master_restart_delay, self.cluster.restart_master
                )
            for _ in range(agents):
                if len(self.cluster.agents) > 1:
                    self.cluster.crash_agent()

        self.cluster.kernel.schedule(5e-4, crash)

    def _on_agent_evicted(self, agent_id: int) -> None:
        """Directory-driven recovery, end to end (runs in simulated time).

        Called by the lead the moment it evicts a crashed agent.  The
        sequence:

        1. Decide the recovery mode from the *durable* store: roll the
           whole cluster back to the newest checkpoint step every
           member (including the victim) holds, or — when there is no
           such step, checkpointing is off, or membership already
           changed mid-run — restart the run (WAL-only degradation).
        2. Broadcast RECOVER; every surviving agent rolls back (or
           drops the run) and bumps its data-incarnation fence.
        3. Once all survivors acknowledge (observed via their recovery
           epoch), bring up the replacement: it restores the victim's
           checkpoint, replays the WAL suffix, and joins — the
           membership broadcast then migrates every edge to where the
           new ring says it lives.
        4. When migration quiesces, re-open the barrier: resume at the
           checkpoint step, or re-issue RUN_START.
        """
        controller = self._active_controller
        cluster = self.cluster
        if controller is None or controller.done:
            return
        run_id = controller.spec.run_id
        step = 0
        if (
            self.config.checkpoint_every > 0
            and not self._scaled_mid_run
            and self._run_members - {agent_id} == set(cluster.agents)
        ):
            common: List[int] = []
            for member in sorted(set(cluster.agents) | {agent_id}):
                steps = cluster.recovery.slot(member).checkpoints.steps_for(run_id)
                common.append(max(steps) if steps else 0)
            step = min(common) if common else 0
        mode = "rollback" if step >= 1 else "restart"
        incarnation = cluster.bump_incarnation()
        cluster.recovery_log.append(
            {
                "event": "recover",
                "mode": mode,
                "crashed": agent_id,
                "step": step,
                "incarnation": incarnation,
            }
        )
        kernel = cluster.kernel
        cluster.lead.broadcast_recover(
            {"mode": mode, "run_id": run_id, "step": step, "incarnation": incarnation}
        )

        def await_rollback() -> None:
            rolled = all(
                agent._recover_epoch >= incarnation
                for agent in cluster.agents.values()
            )
            if not rolled:
                kernel.schedule(1e-3, await_rollback)
                return
            cluster.replace_crashed_agent(
                agent_id,
                run_id=run_id if mode == "rollback" else None,
                step=step if mode == "rollback" else None,
            )
            self._run_members = set(cluster.agents)

            def await_consistent() -> None:
                if not cluster.consistent():
                    kernel.schedule(1e-3, await_consistent)
                    return
                if mode == "rollback":
                    cluster.lead.send_advance(
                        controller.resume_payload(controller.next_round(), step)
                    )
                else:
                    # Restart under a *fresh* run_id: any straggling
                    # control traffic from the aborted attempt (same old
                    # run_id, possibly retransmitted much later by the
                    # reliable transport) is then rejected by the
                    # agents' run_id guard instead of corrupting the
                    # new run.
                    cluster.recovery.prune_run(run_id)
                    self._run_counter += 1
                    controller.spec = dc_replace(
                        controller.spec, run_id=self._run_counter
                    )
                    controller.mark_restarted()
                    cluster.lead.send_run_start(controller.spec)

            kernel.schedule(1e-3, await_consistent)

        kernel.schedule(1e-3, await_rollback)

    def _run_async(self, spec: RunSpec) -> RunResult:
        if not spec.program.supports_async:
            raise ValueError(
                f"{spec.program.name} is not monotone; asynchronous execution "
                "is only safe for min/max programs"
            )
        kernel = self.cluster.kernel
        start = kernel.now
        self.cluster.lead.send_run_start(spec)
        self.cluster.settle()  # quiescence = termination for monotone programs
        for agent in sorted_agents(self.cluster.agents):
            agent.finalize_run(persist=True)
        # Async runs have no barrier rounds to piggyback result notices
        # on; tell the serving plane the fixpoint landed so proxy caches
        # drop anything filled mid-relaxation.
        self.cluster.lead.note_results_changed(spec.program.name)
        self.cluster.settle()
        tracer = self.tracer
        if tracer is not None:
            tracer.complete(
                "engine",
                f"run:{spec.program.name}",
                "run",
                start,
                kernel.now,
                {"run_id": spec.run_id, "mode": "async"},
            )
        return RunResult(
            program_name=spec.program.name,
            run_id=spec.run_id,
            mode="async",
            values=self._collect(spec.program.name),
            steps=None,
            sim_seconds=kernel.now - start,
            strategy=spec.strategy,
        )

    def _collect(self, program_name: str) -> Dict[int, float]:
        merged: Dict[int, float] = {}
        for agent in sorted_agents(self.cluster.agents):
            merged.update(agent.local_results(program_name))
        return merged

    # ------------------------------------------------------------------
    # queries and elasticity
    # ------------------------------------------------------------------

    def query(self, vertex: int, program: str) -> Optional[float]:
        """One blocking client query through a ClientProxy."""
        if not self.cluster.clients:
            self.cluster.new_client()
        client = self.cluster.clients[0]
        out: List[Optional[float]] = []
        client.query(vertex, program, out.append)
        self.cluster.settle()
        if not out:
            raise RuntimeError("query lost: no reply arrived")
        return out[0]

    def serving_stats(self) -> Dict[str, float]:
        """Aggregate serving-plane counters across all client proxies."""
        return self.cluster.collect_client_metrics()

    def scale_to(self, n_agents: int) -> dict:
        """Elastically scale between computations; returns move stats."""
        stats_before = self.cluster.network.stats.snapshot()
        start = self.cluster.kernel.now
        self.cluster.scale_to(n_agents)
        from repro.net.message import PacketType

        moved = (
            self.cluster.network.stats.by_type_count[PacketType.EDGE_MIGRATE]
            - stats_before.by_type_count[PacketType.EDGE_MIGRATE]
        )
        return {
            "agents": len(self.cluster.agents),
            "sim_seconds": self.cluster.kernel.now - start,
            "migrate_messages": int(moved),
        }

    def rebalance(self, weights: Dict[int, float]) -> dict:
        """Adopt a ring re-weight plan between runs; returns move stats."""
        from repro.net.message import PacketType

        stats_before = self.cluster.network.stats.snapshot()
        start = self.cluster.kernel.now
        self.cluster.rebalance(weights)
        moved = (
            self.cluster.network.stats.by_type_count[PacketType.EDGE_MIGRATE]
            - stats_before.by_type_count[PacketType.EDGE_MIGRATE]
        )
        return {
            "weights": dict(weights),
            "sim_seconds": self.cluster.kernel.now - start,
            "migrate_messages": int(moved),
        }

    def maybe_rebalance(self, summary=None) -> Optional[dict]:
        """Close the loop: observed load -> plan -> fenced adoption.

        Builds a :class:`~repro.rebalance.RebalancePlanner` from the
        ``rebalance_*`` config knobs and feeds it the per-agent compute
        totals of ``summary``.  With tracing on and no explicit
        summary, the load signal is the trace *window* recorded since
        the previous call — round ids reset per run, so summarising the
        cumulative trace would merge pre- and post-migration rows and
        feed the planner stale load.  Without any trace signal it falls
        back to resident edge counts.  When the planner emits a plan,
        the lead directory adopts it — term-fenced, epoch-bumping — and
        the call blocks (in simulated time) until the resulting
        EDGE_MIGRATE traffic drains.

        Returns the adoption report (plan + move stats), or None when
        balance is already within threshold.  Results are unaffected up
        to the data plane's partition-dependent float grouping: the
        persistent fixpoint moves with the edges.
        """
        from repro.rebalance import RebalancePlanner, normalize_loads

        planner = RebalancePlanner(
            skew_threshold=self.config.rebalance_skew_threshold,
            min_weight=self.config.rebalance_min_weight,
            max_weight=self.config.rebalance_max_weight,
            max_weight_delta=self.config.rebalance_max_weight_delta,
        )
        if summary is None and self.tracer is not None:
            summary = self.trace_summary_window()
        live = set(self.cluster.agents)
        loads: Dict[int, float] = {}
        if summary is not None:
            loads = {
                aid: load
                for aid, load in normalize_loads(
                    summary.per_agent_compute_totals()
                ).items()
                if aid in live
            }
        if len(loads) < len(live):
            # No (or partial) trace signal: fall back to edge residency.
            loads = {aid: float(n) for aid, n in self.cluster.edge_loads().items()}
        plan = planner.plan(loads, self.cluster.current_weights())
        if plan is None:
            return None
        report = self.rebalance(plan.weights)
        report.update(
            skew_before=plan.skew_before,
            skew_predicted=plan.skew_predicted,
            reason=plan.reason,
        )
        return report

    @property
    def n_agents(self) -> int:
        return len(self.cluster.agents)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    @property
    def tracer(self):
        """The fabric's :class:`~repro.obs.trace.Tracer` (None unless
        the engine was built with ``tracing=True``)."""
        return self.cluster.network.tracer

    def trace(self):
        """Immutable snapshot of everything traced so far.

        Raises if tracing is off — a silently empty trace would read as
        "nothing happened".
        """
        tracer = self.tracer
        if tracer is None:
            raise RuntimeError("tracing is disabled; build the engine with tracing=True")
        return tracer.trace()

    def trace_summary(self):
        """Per-superstep compute/wait/comms timeline of the trace."""
        from repro.obs.summary import TraceSummary

        return TraceSummary.from_trace(self.trace())

    def trace_summary_window(self):
        """Summary of the trace recorded since the previous window.

        Each call consumes the spans/events appended since the last
        one (the first consumes everything so far).  Because round ids
        restart at zero for every run, :class:`TraceSummary` rows from
        different runs share keys and merge; windowing is the only way
        to read one run's — or one planning interval's — load in
        isolation.  Used by :meth:`maybe_rebalance` so each planning
        pass sees current load, and by benchmarks to score runs
        individually.
        """
        from repro.obs.summary import TraceSummary
        from repro.obs.trace import Trace

        trace = self.trace()
        spans_mark, events_mark = self._rebalance_trace_mark
        self._rebalance_trace_mark = (len(trace.spans), len(trace.events))
        window = Trace(
            spans=trace.spans[spans_mark:], events=trace.events[events_mark:]
        )
        return TraceSummary.from_trace(window)

    def prometheus_text(self) -> str:
        """Prometheus text exposition of cluster metrics, fabric stats
        and cost-model charges.  Works with tracing on or off (the
        metric sources are always live)."""
        from repro.obs.prom import render_engine_metrics

        return render_engine_metrics(self)

    def placement_counters(self):
        """Cluster-wide placement fast-path counters.

        Sums every participant's (agents, streamers, clients)
        :class:`~repro.bench.counters.PerfCounters` — cache hit/miss
        totals, epoch invalidations, vectorized-batch sizes — into one
        fresh ``PerfCounters`` for the bench runner and tests.
        """
        from repro.bench.counters import aggregate_counters

        participants = list(sorted_agents(self.cluster.agents))
        participants += list(self.cluster.streamers)
        participants += list(self.cluster.clients)
        return aggregate_counters(
            p.perf for p in participants if getattr(p, "perf", None) is not None
        )

    def validate_against_reference(self) -> bool:
        """Check the distributed edge stores against the mirror graph.

        Every reference edge must be resident exactly once as an
        out-copy and once as an in-copy, and nothing extra may exist.
        """
        if self.reference is None:
            raise RuntimeError("engine was built with keep_reference=False")
        out_copies: Set = set()
        in_copies: Set = set()
        for agent in self.cluster.agents.values():
            for u, nbrs in agent.out_store.items():
                for v in nbrs:
                    edge = (u, v)
                    if edge in out_copies:
                        return False  # duplicate residency
                    out_copies.add(edge)
            for v, srcs in agent.in_store.items():
                for u in srcs:
                    edge = (u, v)
                    if edge in in_copies:
                        return False
                    in_copies.add(edge)
        ref_edges = set()
        for u in self.reference.vertices():
            for v in self.reference.out_neighbors(u):
                ref_edges.add((u, v))
        return out_copies == ref_edges and in_copies == ref_edges
