"""The vertex-program interface (§3.2).

ElGA's programming model is *locally persistent* [5, 72]: a vertex holds
state across the dynamic graph's lifetime, is activated by changed state
(a neighbor message, a replica update, or an edge change), and emits
messages along its edges.  Agents execute the model vectorized: each
hook receives numpy arrays covering every vertex the Agent hosts, so a
superstep is a handful of array operations rather than a Python loop per
vertex.

A program defines:

* how vertices initialize (:meth:`VertexProgram.initial_value`);
* the message each active vertex sends along its edges
  (:meth:`VertexProgram.scatter_values`), and in which directions
  (:attr:`VertexProgram.needs_in_and_out`);
* how incoming messages combine (:attr:`VertexProgram.aggregator` — a
  commutative, associative reduction so replicas can pre-aggregate);
* the state update (:meth:`VertexProgram.apply`), returning the new
  values and the next active set; and
* the global halt condition over directory-aggregated statistics
  (:meth:`VertexProgram.halt`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

_AGGREGATORS = {
    "sum": (np.add, 0.0),
    "min": (np.minimum, np.inf),
    "max": (np.maximum, -np.inf),
}


@dataclass
class RunSpec:
    """Everything the RUN_START broadcast carries (one algorithm run).

    Attributes
    ----------
    run_id:
        Unique id, monotone per engine.
    program:
        The (stateless) vertex program to execute.
    incremental:
        If True, vertices keep their persisted values and only vertices
        dirtied since the last run start active (Definition 2.5's
        ``B(G^i, O(G^i), Δ)``); if False, state resets and every vertex
        activates.
    global_n:
        Number of vertices in the current graph (programs like PageRank
        need it for normalization).
    mode:
        ``"sync"`` (BSP supersteps) or ``"async"`` (monotone programs
        processed on arrival, quiescence-terminated).
    """

    run_id: int
    program: "VertexProgram"
    incremental: bool = False
    global_n: int = 0
    mode: str = "sync"
    #: Vertex ids to activate for an incremental run — the endpoints of
    #: the batch's changes (Δ's touched vertices).  Ignored when
    #: ``incremental`` is False.
    activate: Optional[np.ndarray] = None
    #: How the run warms up from persisted state:
    #:
    #: * ``"scratch"`` — cold start, every vertex re-initializes;
    #: * ``"dense"``   — keep persisted values but activate everyone
    #:   (warm start without frontier tracking — the safe fallback when
    #:   the graph reshaped or |V| changed under a delta program);
    #: * ``"delta"``   — keep persisted values and activate only the
    #:   frontier seeded from each agent's dirty mutation rows
    #:   (:meth:`VertexProgram.affected`), converging from the previous
    #:   fixpoint via residual propagation.
    strategy: str = "scratch"

    @property
    def nbytes(self) -> int:
        # Control struct plus the incremental activation list.
        activate = 0 if self.activate is None else 8 * len(self.activate)
        return 64 + activate


class VertexProgram:
    """Base class for vertex-centric algorithms.

    Subclasses override the hooks below; all array arguments are
    per-hosted-vertex and must not be mutated in place.
    """

    name: str = "abstract"
    #: Reduction combining incoming messages ("sum", "min", or "max").
    #: Must be commutative and associative: replicas pre-aggregate their
    #: shard's messages before the primary combines partials.
    aggregator: str = "sum"
    #: Whether messages flow along both edge directions (WCC) or only
    #: out-edges (PageRank, SSSP).
    needs_in_and_out: bool = False
    #: Whether the program supports asynchronous execution.  Only
    #: monotone programs (min/max aggregators whose apply moves values
    #: one way) are safe to run asynchronously.
    supports_async: bool = False

    # -- incremental protocol (delta runs) ----------------------------------

    #: Whether the program can converge from the previous fixpoint with
    #: only a frontier active (strategy ``"delta"``).  Programs that
    #: cannot still benefit from ``"dense"`` warm starts.
    supports_delta: bool = False
    #: If True, active vertices scatter the *change* in their steady
    #: message (``scatter - last_sent``) instead of the absolute value,
    #: and receivers fold the aggregated delta into their state via
    #: :meth:`delta_apply` (residual propagation, e.g. PageRank).
    #: Monotone programs (WCC) leave this False: their absolute messages
    #: re-fold safely.
    delta_messages: bool = False
    #: If True, any pending deletion invalidates the previous fixpoint
    #: and forces a from-scratch run (e.g. min-label WCC cannot undo a
    #: label after the edge that carried it disappears).
    deletions_invalidate: bool = False
    #: If True, a delta run is only valid while |V| is unchanged since
    #: the fixpoint was computed (PageRank's (1-d)/n term bakes n into
    #: every persisted value); otherwise fall back to ``"dense"``.
    requires_stable_n: bool = False

    # -- derived ------------------------------------------------------------

    @property
    def ufunc(self) -> np.ufunc:
        """The numpy ufunc implementing the aggregator."""
        return _AGGREGATORS[self.aggregator][0]

    @property
    def identity(self) -> float:
        """The aggregator's identity element (accumulator initial)."""
        return _AGGREGATORS[self.aggregator][1]

    # -- hooks -----------------------------------------------------------------

    def initial_value(self, vertex_ids: np.ndarray, ctx: Dict[str, Any]) -> np.ndarray:
        """Initial per-vertex value for a from-scratch run."""
        raise NotImplementedError

    def initially_active(self, vertex_ids: np.ndarray, values: np.ndarray, ctx: Dict[str, Any]) -> np.ndarray:
        """Active mask for superstep 0 of a from-scratch run.

        Defaults to everyone; programs with a natural frontier (SSSP's
        source) narrow it.  Incremental runs ignore this — the dirty
        set from applied batches is the initial frontier instead.
        """
        return np.ones(len(vertex_ids), dtype=bool)

    def scatter_values(self, values: np.ndarray, out_deg_total: np.ndarray) -> np.ndarray:
        """Per-vertex message value sent along each (out-)edge.

        ``out_deg_total`` is the vertex's *global* out-degree — for a
        split vertex, the sum over all replicas (synchronized by the
        replica protocol) — which PageRank divides by.
        """
        raise NotImplementedError

    def apply(
        self,
        old: np.ndarray,
        agg: np.ndarray,
        got: np.ndarray,
        ctx: Dict[str, Any],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Combine old values with aggregated messages.

        Parameters
        ----------
        old, agg:
            Current values and aggregated incoming messages (identity
            where ``got`` is False).
        got:
            Which vertices received at least one message this step.

        Returns
        -------
        (new_values, active):
            The updated values and the mask of vertices active next
            superstep (i.e. that will scatter).
        """
        raise NotImplementedError

    def step_stats(
        self, old: np.ndarray, new: np.ndarray, active: np.ndarray
    ) -> Dict[str, float]:
        """Per-agent contribution to the globally-summed statistics."""
        return {"active": float(active.sum())}

    def halt(self, step: int, stats: Dict[str, float], ctx: Dict[str, Any]) -> bool:
        """Global convergence decision, evaluated by the lead directory
        from the summed stats of every agent."""
        raise NotImplementedError

    # -- incremental hooks (strategy "delta") -------------------------------

    def affected(
        self,
        role: str,
        keys: np.ndarray,
        others: np.ndarray,
        actions: np.ndarray,
        ctx: Dict[str, Any],
    ) -> np.ndarray:
        """Frontier seeds from one agent's applied mutation rows.

        Called once per edge role at delta-run start with the agent's
        un-consumed dirty rows: ``keys`` are the locally-keyed endpoints
        (sources for ``role == "out"``, destinations for ``"in"``),
        ``others`` the far endpoints, ``actions`` +1/-1 per row.
        Returns the vertex ids (among ``keys``) that join the initial
        active set.  Default: every touched endpoint.
        """
        return np.unique(keys)

    def delta_seed_values(
        self,
        role: str,
        keys: np.ndarray,
        others: np.ndarray,
        actions: np.ndarray,
        values: np.ndarray,
        out_deg_old: np.ndarray,
        ctx: Dict[str, Any],
    ) -> Optional[np.ndarray]:
        """Per-row structural correction delivered to ``others[i]``.

        For delta-message programs, an edge mutation (u, v, ±1) changes
        v's input by ``±`` u's previously-sent message, which u's owner
        must inject as a round-0 seed (u's own scatter only covers the
        change in its steady value).  ``values`` holds u's persisted
        value per row and ``out_deg_old`` u's out-degree *before* the
        mutations.  Return None (default) or a per-row value array;
        zero-valued rows are skipped.
        """
        return None

    def delta_flush_mask(
        self,
        values: np.ndarray,
        out_deg_total: np.ndarray,
        last_sent: np.ndarray,
        ctx: Dict[str, Any],
    ) -> Optional[np.ndarray]:
        """Vertices owing enough unsent residual to rejoin the frontier.

        Deactivated vertices hold their sub-threshold deltas against
        ``last_sent`` rather than losing them; over a long update stream
        that held mass accumulates.  At the start of each delta run the
        agent asks the program which vertices' accumulated unsent mass
        now matters; returning a bool mask forces them active so the
        debt is flushed.  Return None (default) to skip the check.
        NaN ``last_sent`` entries must compare False.
        """
        return None

    def delta_apply(
        self,
        old: np.ndarray,
        agg: np.ndarray,
        got: np.ndarray,
        ctx: Dict[str, Any],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply for delta rounds: fold the aggregated *delta* into the
        previous value.  Defaults to :meth:`apply` (correct for programs
        whose messages are absolute, e.g. monotone min-label WCC)."""
        return self.apply(old, agg, got, ctx)

    def delta_stats(
        self, old: np.ndarray, new: np.ndarray, active: np.ndarray
    ) -> Dict[str, float]:
        """Per-agent statistics for delta rounds.  Keys prefixed
        ``max_`` merge by maximum at the directory instead of summing
        (order-insensitive, so determinism is preserved)."""
        return self.step_stats(old, new, active)

    def delta_halt(self, step: int, stats: Dict[str, float], ctx: Dict[str, Any]) -> bool:
        """Halt condition for delta runs — typically global frontier
        quiescence (``active == 0``) or the residual dropping under
        ``tol``.  Defaults to :meth:`halt`."""
        return self.halt(step, stats, ctx)
