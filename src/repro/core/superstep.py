"""Superstep sequencing: the run controller and run results.

The lead directory aggregates per-round readiness (Figure 2) and hands
the merged statistics to a :class:`SyncRunController`, which decides
what happens next:

* issue the next normal superstep (apply previous messages, scatter);
* halt, when the program's global convergence condition is met;
* or, when an elastic scale is requested mid-run (Figure 17), issue an
  *apply-only* round that drains all in-flight state into the agents'
  persistent stores, suspend, let the engine reshape the cluster and
  migrate edges, then *resume* from persisted state.

Round vs. step: a *round* is one barrier cycle (every broadcast has a
fresh round id); a *step* is an algorithm superstep (one apply).  They
differ only when scaling injects apply-only/resume rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.program import RunSpec


@dataclass
class RunResult:
    """Outcome of one algorithm run.

    Attributes
    ----------
    values:
        Vertex id -> final value, merged across agents.
    steps:
        Number of apply supersteps executed (None for async runs, which
        have no superstep structure).
    sim_seconds:
        Total simulated wall time of the run.
    round_durations:
        (phase, step, simulated duration) per barrier round; the
        Figure 8–11 per-iteration numbers come from the ``"step"``
        entries.
    stats_history:
        Globally-merged per-round statistics (residuals, active counts).
    """

    program_name: str
    run_id: int
    mode: str
    values: Dict[int, float]
    steps: Optional[int]
    sim_seconds: float
    round_durations: List[Tuple[str, int, float]] = field(default_factory=list)
    stats_history: List[Dict[str, float]] = field(default_factory=list)
    #: How the run executed: "scratch", "dense" (warm start), or
    #: "delta" (residual propagation from the previous fixpoint).
    strategy: str = "scratch"

    def value(self, vertex: int) -> Optional[float]:
        """The result for one vertex (None if the vertex is unknown)."""
        return self.values.get(int(vertex))

    def top_k(self, k: int, largest: bool = True) -> List[Tuple[int, float]]:
        """The k vertices with the largest (or smallest) values.

        Examples
        --------
        >>> r = RunResult("pr", 1, "sync", {1: 0.5, 2: 0.3, 3: 0.9}, 1, 0.0)
        >>> r.top_k(2)
        [(3, 0.9), (1, 0.5)]
        """
        ranked = sorted(self.values.items(), key=lambda kv: kv[1], reverse=largest)
        return ranked[: max(0, int(k))]

    def groups(self) -> Dict[float, List[int]]:
        """Vertices grouped by value (e.g. WCC components).

        Examples
        --------
        >>> r = RunResult("wcc", 1, "sync", {1: 0.0, 2: 0.0, 5: 5.0}, 1, 0.0)
        >>> sorted(r.groups()[0.0])
        [1, 2]
        """
        out: Dict[float, List[int]] = {}
        for v, x in self.values.items():
            out.setdefault(x, []).append(v)
        return out

    def as_array(self, n: int, default: float = np.nan) -> np.ndarray:
        """Dense value array over vertex ids ``0..n-1``."""
        out = np.full(n, default)
        for v, x in self.values.items():
            if 0 <= v < n:
                out[v] = x
        return out

    #: Barrier phases that are normal compute supersteps (as opposed to
    #: scaling's apply_only/resume choreography) — the entries Figure
    #: 8–11 per-iteration numbers are drawn from.
    COMPUTE_PHASES = ("init", "step", "delta_init", "delta_step")

    def per_step_seconds(self) -> List[float]:
        """Simulated duration of each normal compute superstep."""
        return [d for phase, _, d in self.round_durations if phase in self.COMPUTE_PHASES]

    def mean_step_seconds(self) -> float:
        """Mean per-superstep simulated time (per-iteration runtime)."""
        steps = self.per_step_seconds()
        return float(np.mean(steps)) if steps else 0.0


class SyncRunController:
    """Drives one synchronous run from the lead directory's barrier.

    Installed as ``lead.run_controller``; invoked with
    ``(round, step, merged_stats)`` whenever every agent has reported
    ready for a round.  Returns the next SUPERSTEP_ADVANCE payload or
    None to hold the barrier (engine-managed suspension).
    """

    def __init__(
        self,
        spec: RunSpec,
        kernel,
        scale_plan: Optional[Dict[int, int]] = None,
        on_suspended: Optional[Callable[..., None]] = None,
        crash_plan: Optional[Dict[int, int]] = None,
        on_crash: Optional[Callable[[int], None]] = None,
        tracer=None,
        rebalance_plan: Optional[Dict[int, Dict[int, float]]] = None,
    ):
        self.spec = spec
        self.kernel = kernel
        self.scale_plan = dict(scale_plan or {})
        # Mid-run re-weights: {superstep: {agent_id: ring weight}}.
        # Shares the scale plan's apply_only/suspend/resume choreography
        # — the barrier drains in-flight state, the engine adopts the
        # weights (migrating edges), and the run resumes from persisted
        # values.  A step may carry both a scale and a re-weight.
        self.rebalance_plan = dict(rebalance_plan or {})
        self.on_suspended = on_suspended
        self.crash_plan = dict(crash_plan or {})
        self.on_crash = on_crash
        self.tracer = tracer
        # Delta runs get their own phase names so traces, timelines, and
        # the agents' phase dispatch can tell residual rounds apart.
        self._delta = getattr(spec, "strategy", "scratch") == "delta"
        self.phase = "delta_init" if self._delta else "init"
        self.round_started_at = kernel.now
        self.round_durations: List[Tuple[str, int, float]] = []
        self.stats_history: List[Dict[str, float]] = []
        self.done = False
        self.final_step = 0
        self._last_round = 0
        self._ctx = {"global_n": spec.global_n}
        # Idempotency guard for lead failover: a newly-elected lead
        # re-collects READY for the in-flight round and re-drives the
        # barrier, so the same round id can reach this controller twice.
        # The decision (and its side effects: durations, stats history,
        # scale_plan/crash_plan pops) must happen exactly once; replays
        # get the memoised response verbatim.
        self._processed_round = -1
        self._last_response: Optional[dict] = None

    # -- payload builders -------------------------------------------------

    def _payload(self, round_id: int, step: int, phase: str) -> dict:
        self.phase = phase
        self.round_started_at = self.kernel.now
        self._last_round = round_id
        return {
            "run_id": self.spec.run_id,
            "round": round_id,
            "step": step,
            "phase": phase,
        }

    def _halt_payload(self, step: int) -> dict:
        self.done = True
        self.final_step = step
        return {"run_id": self.spec.run_id, "phase": "halt", "step": step, "round": -1}

    # -- barrier callback -----------------------------------------------------

    def __call__(self, round_id: int, step: int, stats: Dict[str, float]) -> Optional[dict]:
        if round_id <= self._processed_round:
            return self._last_response
        response = self._advance(round_id, step, stats)
        self._processed_round = round_id
        self._last_response = response
        return response

    def _advance(self, round_id: int, step: int, stats: Dict[str, float]) -> Optional[dict]:
        duration = self.kernel.now - self.round_started_at
        self.round_durations.append((self.phase, step, duration))
        self.stats_history.append(dict(stats))
        if self.tracer is not None:
            self.tracer.complete(
                "controller",
                f"round:{self.phase}",
                "round",
                self.round_started_at,
                self.kernel.now,
                {"round": round_id, "step": step, "phase": self.phase},
            )
        program = self.spec.program
        halts = program.delta_halt if self._delta else program.halt

        if self.phase == "apply_only":
            # All in-flight state is now persisted; agents are suspended.
            if halts(step, stats, self._ctx):
                return self._halt_payload(step)
            if self.on_suspended is None:
                raise RuntimeError("apply_only completed but no suspension handler")
            self.on_suspended(
                round_id,
                step,
                self.scale_plan.pop(step - 1, None),
                self.rebalance_plan.pop(step - 1, None),
            )
            return None

        # A resume round only re-scatters — no applies ran, so its stats
        # are empty and must not be mistaken for quiescence.
        if self.phase != "resume" and halts(step, stats, self._ctx):
            return self._halt_payload(step)
        if step in self.scale_plan or step in self.rebalance_plan:
            # Drain in-flight state, then the engine reshapes the cluster.
            # A crash due at this step fires too — otherwise the entry
            # was silently swallowed (this branch returned before the
            # crash check ever ran) and "crash mid-reshape" could not be
            # exercised at all.  The victim dies with the apply_only /
            # migration window open; the lead's lease sweep still
            # detects it because detached endpoints are never lease-
            # refreshed, quiet phase or not.
            if self.crash_plan and self.on_crash is not None:
                due = self.crash_plan.pop(step, None)
                if due:
                    self.on_crash(due)
            return self._payload(round_id + 1, step + 1, "apply_only")
        if self.crash_plan and self.on_crash is not None:
            due = self.crash_plan.pop(step, None)
            if due:
                # The ADVANCE for the next step goes out now; fire the
                # crash while that round is in flight (abrupt: nothing
                # drains).
                self.on_crash(due)
        return self._payload(round_id + 1, step + 1, "delta_step" if self._delta else "step")

    def next_round(self) -> int:
        """The first round id not yet used by any issued payload."""
        return self._last_round + 1

    def mark_restarted(self) -> None:
        """Reset phase tracking when recovery restarts the run."""
        self.phase = "delta_init" if self._delta else "init"
        self.round_started_at = self.kernel.now
        # Recovery may legitimately revisit round ids; drop the replay
        # memo so post-restart rounds are decided afresh.
        self._processed_round = -1
        self._last_response = None

    def resume_payload(self, round_id: int, step: int) -> dict:
        """Built by the engine once migration has quiesced.

        Carries the full RunSpec: agents that joined during the
        suspension bootstrap their run state from it (they never saw
        the original RUN_START).
        """
        payload = self._payload(round_id, step, "resume")
        payload["spec"] = self.spec
        return payload
