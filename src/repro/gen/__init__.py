"""Graph generators and the Table 2 dataset registry (§4.4).

The paper evaluates on LAW/SNAP graphs, LDBC Graphalytics synthetics
(Graph500/RMAT, Datagen), and A-BTER scaled-up replicas of smaller
graphs.  The raw datasets are not redistributable and their full scale
is beyond a single interpreter, so this package regenerates each family
synthetically at ~10⁻⁴ linear scale with the same degree-distribution
shape — the property ElGA's sketch-based replication and load balancing
actually respond to.
"""

from repro.gen.bter import bter_scale, degree_histogram, stream_scaled
from repro.gen.datasets import DATASETS, DatasetSpec, load_dataset
from repro.gen.powerlaw import powerlaw_graph
from repro.gen.rmat import rmat_graph

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "bter_scale",
    "degree_histogram",
    "load_dataset",
    "powerlaw_graph",
    "rmat_graph",
    "stream_scaled",
]
