"""A-BTER-style graph scaling (§4.4, Figure 4).

The paper uses A-BTER [74] to scale existing graphs up: compute the
degree and clustering-coefficient distributions of a seed graph, then
generate a random graph ``factor`` times larger sharing those
distributions.  This module implements the same two-phase BTER recipe:

* **Phase 1 (affinity blocks)** — vertices of similar target degree are
  grouped into dense blocks with Erdős–Rényi edges, which is what gives
  BTER graphs their clustering;
* **Phase 2 (Chung–Lu)** — each vertex's residual degree is satisfied by
  weighted random endpoint sampling.

The paper reports keeping the scaled distributions within 2 % error by a
parameter search over ``cavg`` (Appendix Table 1); our ``rho`` parameter
plays that role — the fraction of degree realized inside blocks.

As in the paper, the scaler can stream its output
(:func:`stream_scaled`) so ElGA receives the graph as it is generated.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.graph.stream import EdgeBatch, insertion_stream


def degree_histogram(us: np.ndarray, vs: np.ndarray, n: int) -> np.ndarray:
    """Counts of vertices per total (in+out) degree, index = degree."""
    degrees = np.bincount(np.asarray(us), minlength=n) + np.bincount(np.asarray(vs), minlength=n)
    return np.bincount(degrees)


def clustering_estimate(
    us: np.ndarray, vs: np.ndarray, n: int, samples: int = 2000, seed: int = 0
) -> float:
    """Sampled global clustering coefficient of the undirected form.

    Samples wedges uniformly (center weighted by d·(d−1)) and reports
    the closed fraction — the standard estimator, cheap enough for
    property tests comparing seed vs scaled graphs.
    """
    rng = np.random.default_rng(seed)
    adj: dict = {}
    for u, v in zip(np.asarray(us), np.asarray(vs)):
        u, v = int(u), int(v)
        if u == v:
            continue
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    centers = [v for v, nbrs in adj.items() if len(nbrs) >= 2]
    if not centers:
        return 0.0
    weights = np.array([len(adj[v]) * (len(adj[v]) - 1) for v in centers], dtype=np.float64)
    weights /= weights.sum()
    picks = rng.choice(len(centers), size=samples, p=weights)
    closed = 0
    for idx in picks:
        center = centers[idx]
        nbrs = sorted(adj[center])
        i, j = rng.choice(len(nbrs), size=2, replace=False)
        if nbrs[j] in adj[nbrs[i]]:
            closed += 1
    return closed / samples


def _phase1_blocks(target_deg: np.ndarray, rho: float, rng: np.random.Generator, max_block: int):
    """Affinity-block edges: vertices sorted by degree, blocks of ~d+1."""
    order = np.argsort(target_deg)[::-1]  # densest blocks first
    block_us = []
    block_vs = []
    intra_deg = np.zeros(len(target_deg), dtype=np.float64)
    pos = 0
    n = len(order)
    while pos < n:
        d_here = int(target_deg[order[pos]])
        size = min(max(2, d_here + 1), max_block, n - pos)
        if size < 2 or d_here < 1:
            break
        members = order[pos : pos + size]
        pos += size
        # Expected intra-block degree: rho of the block's smallest target.
        d_min = float(target_deg[members].min())
        p = min(1.0, rho * d_min / (size - 1))
        if p <= 0:
            continue
        n_pairs = size * (size - 1) // 2
        n_edges = rng.binomial(n_pairs, p)
        if n_edges == 0:
            continue
        i = rng.integers(0, size, size=n_edges)
        j = rng.integers(0, size - 1, size=n_edges)
        j = np.where(j >= i, j + 1, j)  # j != i, uniform over pairs
        block_us.append(members[i])
        block_vs.append(members[j])
        np.add.at(intra_deg, members[i], 1.0)
        np.add.at(intra_deg, members[j], 1.0)
    if block_us:
        return np.concatenate(block_us), np.concatenate(block_vs), intra_deg
    return np.empty(0, np.int64), np.empty(0, np.int64), intra_deg


def bter_scale(
    us: np.ndarray,
    vs: np.ndarray,
    n: int,
    factor: float,
    seed: int = 0,
    rho: float = 0.35,
    max_block: int = 64,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Scale a seed graph by ``factor`` preserving its degree shape.

    Parameters
    ----------
    us, vs, n:
        Seed graph edge arrays and vertex count.
    factor:
        Linear scale-up (the paper uses ×1 to ×10000).  Non-integer
        factors sample the degree sequence with replacement.
    rho:
        Fraction of each vertex's degree realized inside affinity
        blocks (clustering knob; the paper's ``cavg`` analogue).
    max_block:
        Cap on affinity-block size, bounding phase-1 cost on hubs.

    Returns
    -------
    (us2, vs2, n2):
        The scaled directed graph.

    Notes
    -----
    Degree-distribution preservation is validated in
    ``tests/gen/test_bter.py`` (Figure 4's premise: same-scale BTER
    replicas behave like the original).
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    rng = np.random.default_rng(seed)
    seed_deg = np.bincount(us, minlength=n) + np.bincount(vs, minlength=n)
    seed_deg = seed_deg[seed_deg > 0]  # only vertices that exist
    n2 = max(2, int(round(len(seed_deg) * factor)))
    target_deg = rng.choice(seed_deg, size=n2, replace=True).astype(np.float64)

    p1_us, p1_vs, intra = _phase1_blocks(target_deg, rho, rng, max_block)

    # Phase 2: Chung–Lu on residual degree.
    residual = np.maximum(target_deg - intra, 0.0)
    total_residual = residual.sum()
    n_cl_edges = int(total_residual // 2)
    if n_cl_edges > 0 and total_residual > 0:
        w = residual / total_residual
        p2_us = rng.choice(n2, size=n_cl_edges, p=w)
        p2_vs = rng.choice(n2, size=n_cl_edges, p=w)
    else:
        p2_us = np.empty(0, np.int64)
        p2_vs = np.empty(0, np.int64)

    all_u = np.concatenate([p1_us, p2_us]).astype(np.int64)
    all_v = np.concatenate([p1_vs, p2_vs]).astype(np.int64)
    # Random orientation (seed graphs are directed; BTER is undirected).
    flip = rng.random(len(all_u)) < 0.5
    all_u[flip], all_v[flip] = all_v[flip], all_u[flip].copy()
    keep = all_u != all_v
    all_u, all_v = all_u[keep], all_v[keep]
    pairs = np.unique(np.stack([all_u, all_v], axis=1), axis=0)
    all_u, all_v = pairs[:, 0], pairs[:, 1]
    # Shuffle ids and stream order, as in the other generators.
    perm = rng.permutation(n2)
    all_u, all_v = perm[all_u], perm[all_v]
    order = rng.permutation(len(all_u))
    return all_u[order], all_v[order], n2


def stream_scaled(
    us: np.ndarray,
    vs: np.ndarray,
    n: int,
    factor: float,
    seed: int = 0,
    chunk: int = 8192,
    rho: float = 0.35,
) -> Iterator[EdgeBatch]:
    """Generate a scaled graph and stream it as insertion batches.

    This is the path the paper added to A-BTER so ElGA "directly
    receives the graph as it is generated" (§4.4).
    """
    us2, vs2, _ = bter_scale(us, vs, n, factor, seed=seed, rho=rho)
    yield from insertion_stream(us2, vs2, chunk=chunk)
