"""The Table 2 dataset registry, downscaled.

Each entry mirrors one row of Table 2 of the paper: name, family,
paper-scale vertex/edge counts, the A-BTER scale-up factor used there
(if any), and the published edge-list size.  ``generate`` produces a
synthetic stand-in at roughly 10⁻⁴ linear scale — capped so the largest
graphs stay around a quarter-million edges — using the family's
generator with a skew exponent matched to the family.

For rows the paper built with A-BTER (e.g. Gowalla ×10000) we generate
the *already-scaled* distribution directly; the A-BTER scaling
methodology itself is exercised and validated by the Figure 4 benchmark
(`benchmarks/bench_fig04_abter_fidelity.py`), which scales LiveJournal
×1/×10/×100 through :func:`repro.gen.bter.bter_scale` exactly as the
paper does.

EXPERIMENTS.md records the paper-scale vs generated-scale mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, NamedTuple, Optional, Tuple

import numpy as np

from repro.gen.powerlaw import powerlaw_graph
from repro.gen.rmat import rmat_graph

# Zipf exponents per graph family: lower = heavier head.  Chosen to
# reflect the families' well-known skew ordering (web crawls and email
# are the most skewed; citation and purchase graphs the flattest).
FAMILY_ALPHA: Dict[str, float] = {
    "social": 2.10,
    "web": 2.05,
    "purchase": 2.50,
    "location": 2.30,
    "citation": 2.70,
    "email": 2.15,
    "datagen-fb": 2.30,
    "datagen-zf": 2.40,
}

# Target cap on generated edges so the full registry loads in seconds.
_MAX_BASE_EDGES = 250_000
_DEFAULT_LINEAR_SCALE = 1e-4


class GraphData(NamedTuple):
    """A generated dataset: edge arrays, vertex-id space, and its spec."""

    us: np.ndarray
    vs: np.ndarray
    n: int
    spec: "DatasetSpec"


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 2.

    Attributes
    ----------
    name:
        Dataset label as it appears in the paper.
    family:
        Generator family key (see :data:`FAMILY_ALPHA`, or ``rmat``).
    paper_n, paper_m:
        Vertex/edge counts at paper scale.
    abter_scale:
        The ×N A-BTER factor from Table 2, or ``None`` for graphs used
        at original scale.
    el_size_gb:
        Published edge-list size in GB (documentation only).
    """

    name: str
    family: str
    paper_n: float
    paper_m: float
    abter_scale: Optional[int] = None
    el_size_gb: float = 0.0

    @property
    def downscale(self) -> float:
        """Linear factor applied to paper sizes for the base generation."""
        return min(_DEFAULT_LINEAR_SCALE, _MAX_BASE_EDGES / self.paper_m)

    @property
    def base_n(self) -> int:
        return max(500, int(round(self.paper_n * self.downscale)))

    @property
    def base_m(self) -> int:
        return max(2_000, int(round(self.paper_m * self.downscale)))

    def generate(self, scale: float = 1.0, seed: int = 0) -> GraphData:
        """Generate the downscaled stand-in.

        Parameters
        ----------
        scale:
            Extra multiplier on the base size (benchmarks use < 1 for
            quick sweeps and > 1 for weak-scaling series).
        seed:
            Generator seed; different seeds give independent trials.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        n = max(64, int(round(self.base_n * scale)))
        m = max(256, int(round(self.base_m * scale)))
        if self.family == "rmat":
            log_n = max(6, int(round(math.log2(n))))
            edge_factor = max(1, int(round(m / (1 << log_n))))
            us, vs, n_out = rmat_graph(log_n, edge_factor=edge_factor, seed=seed)
        else:
            alpha = FAMILY_ALPHA[self.family]
            us, vs, n_out = powerlaw_graph(n, m, alpha=alpha, seed=seed)
        return GraphData(us=us, vs=vs, n=n_out, spec=self)


def _spec(name, family, n, m, abter=None, el=0.0) -> DatasetSpec:
    return DatasetSpec(
        name=name, family=family, paper_n=n, paper_m=m, abter_scale=abter, el_size_gb=el
    )


DATASETS: Dict[str, DatasetSpec] = {
    s.name: s
    for s in [
        _spec("twitter-2010", "social", 42e6, 1.5e9, el=25),
        _spec("friendster", "social", 65e6, 1.8e9, el=31),
        _spec("uk-2007-05", "web", 105e6, 3.7e9, el=63),
        _spec("datagen-9.3-zf", "datagen-zf", 555e6, 1.3e9, el=34),
        _spec("datagen-9.4-fb", "datagen-fb", 29e6, 2.6e9, el=65),
        _spec("email-euall", "email", 1.3e9, 5.6e9, abter=5000, el=105),
        _spec("skitter", "web", 339e6, 6.3e9, abter=200, el=119),
        _spec("livejournal", "social", 484e6, 8.6e9, abter=100, el=161),
        _spec("amazon0601", "purchase", 807e6, 9.8e9, abter=2000, el=183),
        _spec("graph500-30", "rmat", 448e6, 17e9, el=319),
        _spec("gowalla", "location", 2.0e9, 28e9, abter=10000, el=568),
        _spec("patents", "citation", 3.7e9, 33e9, abter=1000, el=673),
        _spec("pokec-x1000", "social", 1.6e9, 44e9, abter=1000, el=898),
        _spec("pokec-x2500", "social", 4.0e9, 112e9, abter=2500, el=2300),
    ]
}
"""All 14 rows of Table 2, keyed by name."""


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> GraphData:
    """Generate a registry dataset by name.

    Examples
    --------
    >>> data = load_dataset("twitter-2010", scale=0.05, seed=1)
    >>> data.spec.family
    'social'
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}") from None
    return spec.generate(scale=scale, seed=seed)
