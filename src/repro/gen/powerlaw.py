"""Skewed (power-law) directed graph generation.

The paper's design goals start from "graphs with hundreds of billions of
edges and skewed degree distributions" (Goal 1).  This module produces
the skew: a directed Chung–Lu-style model where endpoint probabilities
follow a Zipf law with exponent ``alpha``.  Smaller ``alpha`` means a
heavier head — web crawls are heavier (≈1.8) than citation networks
(≈2.8).  The dataset registry picks ``alpha`` per family.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Endpoint probabilities giving a degree distribution ~ d^(−alpha).

    For a degree-distribution exponent γ the endpoint (rank) weights
    must decay as r^(−1/(γ−1)); using γ itself as the rank exponent
    would concentrate nearly all mass on the first vertex.  The rank
    exponent is clipped below 1 so the head stays integrable.
    """
    if n < 1:
        raise ValueError(f"need at least one vertex, got {n}")
    if alpha <= 1.0:
        raise ValueError(f"degree exponent must exceed 1, got {alpha}")
    beta = min(1.0 / (alpha - 1.0), 0.95)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-beta)
    return weights / weights.sum()


def powerlaw_graph(
    n: int,
    m: int,
    alpha: float = 2.0,
    seed: int = 0,
    dedup: bool = True,
    shuffle_ids: bool = True,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Directed Chung–Lu graph with Zipf(alpha) endpoint weights.

    Parameters
    ----------
    n, m:
        Vertex and (pre-dedup) edge counts.
    alpha:
        Zipf exponent; lower = more skewed.
    dedup:
        Drop self-loops and duplicate directed edges.
    shuffle_ids:
        Relabel vertices with a random permutation so vertex id carries
        no degree information — real graph ids don't arrive
        degree-sorted, and ElGA's hashing must not be able to exploit
        ordering.

    Returns
    -------
    (us, vs, n)

    Examples
    --------
    >>> us, vs, n = powerlaw_graph(500, 3000, alpha=2.0, seed=3)
    >>> int(max(np.bincount(us, minlength=n).max(), 1)) > 3000 // 500
    True
    """
    if m < 1:
        raise ValueError(f"need at least one edge, got m={m}")
    rng = np.random.default_rng(seed)
    weights = zipf_weights(n, alpha)
    if not dedup:
        us = rng.choice(n, size=m, p=weights)
        vs = rng.choice(n, size=m, p=weights)
    else:
        # Hub collisions make some duplicates unavoidable; resample in
        # rounds until the unique-edge target is met (or the graph
        # saturates and further rounds stop helping).
        us = np.empty(0, dtype=np.int64)
        vs = np.empty(0, dtype=np.int64)
        for _ in range(8):
            need = m - len(us)
            if need <= 0:
                break
            cand_u = rng.choice(n, size=int(need * 1.3) + 16, p=weights)
            cand_v = rng.choice(n, size=len(cand_u), p=weights)
            keep = cand_u != cand_v
            us = np.concatenate([us, cand_u[keep]])
            vs = np.concatenate([vs, cand_v[keep]])
            pairs = np.unique(np.stack([us, vs], axis=1), axis=0)
            us, vs = pairs[:, 0], pairs[:, 1]
        if len(us) > m:
            pick = rng.choice(len(us), size=m, replace=False)
            us, vs = us[pick], vs[pick]
    if shuffle_ids:
        perm = rng.permutation(n)
        us, vs = perm[us], perm[vs]
    order = rng.permutation(len(us))
    return us[order].astype(np.int64), vs[order].astype(np.int64), n
