"""Recursive-matrix (R-MAT) graph generation.

Graph500 graphs [18, 67 in the paper] are R-MAT graphs with partition
probabilities (a, b, c, d) = (0.57, 0.19, 0.19, 0.05): each edge picks a
quadrant of the adjacency matrix recursively per bit level, producing a
heavy-tailed, community-free structure.  The generation is vectorized
over all edges at once — one pass per bit level.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

GRAPH500_PARAMS = (0.57, 0.19, 0.19, 0.05)
"""Quadrant probabilities used by the Graph500 benchmark."""


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    params: Tuple[float, float, float, float] = GRAPH500_PARAMS,
    seed: int = 0,
    noise: float = 0.1,
    dedup: bool = True,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count (Graph500 "scale").
    edge_factor:
        Edges per vertex before dedup (Graph500 uses 16).
    params:
        Quadrant probabilities (a, b, c, d); must sum to 1.
    noise:
        Per-level multiplicative jitter on ``a`` (SSCA/Graph500-style
        smoothing that avoids exact power-law staircases).
    dedup:
        Drop duplicate edges and self-loops.

    Returns
    -------
    (us, vs, n):
        Edge arrays and the vertex count ``2**scale``.

    Examples
    --------
    >>> us, vs, n = rmat_graph(8, edge_factor=8, seed=1)
    >>> n
    256
    >>> bool((us < n).all() and (vs < n).all())
    True
    """
    a, b, c, d = params
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError(f"R-MAT params must sum to 1, got {a + b + c + d}")
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    us = np.zeros(m, dtype=np.int64)
    vs = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        # Jitter the quadrant probabilities per level, renormalized.
        if noise > 0:
            jitter = 1.0 + noise * (rng.random() * 2 - 1)
            aa, bb, cc, dd = a * jitter, b, c, d
            total = aa + bb + cc + dd
            aa, bb, cc, dd = aa / total, bb / total, cc / total, dd / total
        else:
            aa, bb, cc, dd = a, b, c, d
        r = rng.random(m)
        # Quadrants: a = top-left, b = top-right (v bit), c = bottom-left
        # (u bit), d = bottom-right (both bits).
        u_bit = r >= aa + bb
        v_bit = (r >= aa) & (r < aa + bb) | (r >= aa + bb + cc)
        us |= u_bit.astype(np.int64) << level
        vs |= v_bit.astype(np.int64) << level
    if dedup:
        keep = us != vs
        us, vs = us[keep], vs[keep]
        pairs = np.unique(np.stack([us, vs], axis=1), axis=0)
        us, vs = pairs[:, 0], pairs[:, 1]
        # Restore deterministic but non-sorted stream order: a sorted
        # edge list would give the streaming path an unrealistically
        # easy cache/routing pattern.
        order = rng.permutation(len(us))
        us, vs = us[order], vs[order]
    return us, vs, n
