"""Graph storage and dynamic-stream model (§2.1).

A dynamic graph is an infinite turnstile stream of edge changes
(Definition 2.3); at any stream position the current graph is the result
of applying every change so far to the empty graph.  This package holds
the in-memory dynamic representation ElGA Agents use (a hash map of
adjacency sets — the paper's "flat hash map with vectors"), the static
CSR form and kernels the baselines use, and batch/stream utilities.
"""

from repro.graph.csr import CSR, build_csr, compact_ids, pagerank_csr, symmetrize, wcc_labels
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import (
    INSERT,
    REMOVE,
    EdgeBatch,
    delete_reinsert_batches,
    insertion_stream,
)

__all__ = [
    "CSR",
    "DynamicGraph",
    "build_csr",
    "compact_ids",
    "symmetrize",
    "EdgeBatch",
    "INSERT",
    "REMOVE",
    "delete_reinsert_batches",
    "insertion_stream",
    "pagerank_csr",
    "wcc_labels",
]
