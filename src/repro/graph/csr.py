"""Compressed sparse row form and vectorized static kernels.

Blogel and GAPbs hold the graph in CSR (§4.7, §4.8): fast to scan, but
rebuilding it on every change makes it unsuited to dynamic graphs.  The
baselines in :mod:`repro.baselines` run on this representation, and the
same kernels serve as ground truth when validating ElGA's distributed
results (the paper checks agreement to 1e-8, §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class CSR:
    """Compressed sparse row adjacency.

    Attributes
    ----------
    indptr:
        int64 array of length ``n + 1``; row ``u``'s neighbors are
        ``indices[indptr[u]:indptr[u+1]]``.
    indices:
        int64 destination ids, sorted within each row.
    n:
        Number of vertices (ids are 0..n-1).
    """

    indptr: np.ndarray
    indices: np.ndarray
    n: int

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self.indices)

    def degrees(self) -> np.ndarray:
        """Row lengths (out-degrees for an out-CSR)."""
        return np.diff(self.indptr)

    def neighbors(self, u: int) -> np.ndarray:
        """Neighbor ids of one vertex."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def row_sources(self) -> np.ndarray:
        """Expand back to a per-edge source array (inverse of build)."""
        return np.repeat(np.arange(self.n, dtype=np.int64), self.degrees())


def build_csr(us: np.ndarray, vs: np.ndarray, n: Optional[int] = None) -> CSR:
    """Build a CSR from parallel edge arrays.

    Examples
    --------
    >>> csr = build_csr(np.array([0, 0, 1]), np.array([1, 2, 2]))
    >>> csr.neighbors(0).tolist()
    [1, 2]
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if len(us) != len(vs):
        raise ValueError(f"ragged edge arrays: {len(us)} vs {len(vs)}")
    if n is None:
        n = int(max(us.max(initial=-1), vs.max(initial=-1))) + 1
    if len(us) and (us.min() < 0 or vs.min() < 0):
        raise ValueError("vertex ids must be non-negative")
    if len(us) and max(us.max(), vs.max()) >= n:
        raise ValueError("vertex id out of range for given n")
    counts = np.bincount(us, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.lexsort((vs, us))
    return CSR(indptr=indptr, indices=vs[order], n=int(n))


def pagerank_csr(
    us: np.ndarray,
    vs: np.ndarray,
    n: int,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 100,
) -> Tuple[np.ndarray, int]:
    """Pregel-style PageRank on edge arrays (scatter-based).

    Each iteration a vertex sums its in-neighbors' messages, scales by
    the damping factor, and sends ``rank / out_degree`` along out-edges
    — exactly the vertex program of §4.3, so the distributed engines and
    this reference agree superstep for superstep.  Dangling mass is not
    redistributed (Pregel semantics, matching Blogel's shipped kernel).

    Returns ``(ranks, iterations)``; converged when the L1 change drops
    below ``tol``.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if n <= 0:
        raise ValueError(f"need at least one vertex, got n={n}")
    out_deg = np.bincount(us, minlength=n).astype(np.float64)
    safe_deg = np.where(out_deg > 0, out_deg, 1.0)
    ranks = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    iters = 0
    for iters in range(1, max_iters + 1):
        contrib = ranks / safe_deg
        incoming = np.zeros(n)
        np.add.at(incoming, vs, contrib[us])
        new_ranks = base + damping * incoming
        delta = float(np.abs(new_ranks - ranks).sum())
        ranks = new_ranks
        if delta < tol:
            break
    return ranks, iters


def wcc_labels(
    us: np.ndarray,
    vs: np.ndarray,
    n: int,
    init_labels: Optional[np.ndarray] = None,
    active: Optional[np.ndarray] = None,
    max_iters: int = 10_000,
) -> Tuple[np.ndarray, int]:
    """Weakly connected components by min-label propagation.

    Static case: every vertex starts with its own id (§4.3).  The
    incremental case passes ``init_labels`` (retained prior components)
    and ``active`` (the vertices touched by the batch); only messages
    reachable from active vertices propagate, matching ElGA's
    incremental algorithm, so iteration counts are comparable with
    Figure 15b.

    Returns ``(labels, iterations)``; two vertices are weakly connected
    iff their labels are equal.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    labels = np.arange(n, dtype=np.int64) if init_labels is None else init_labels.astype(np.int64).copy()
    if len(labels) != n:
        raise ValueError(f"init_labels has {len(labels)} entries for n={n}")
    if active is None:
        active_mask = np.ones(n, dtype=bool)
    else:
        active_mask = np.zeros(n, dtype=bool)
        active_mask[np.asarray(active, dtype=np.int64)] = True
    iters = 0
    while active_mask.any() and iters < max_iters:
        iters += 1
        # Only active vertices send their label, to both edge directions
        # (WCC treats the graph as undirected, §4.3).
        new_labels = labels.copy()
        send_fwd = active_mask[us]
        send_bwd = active_mask[vs]
        np.minimum.at(new_labels, vs[send_fwd], labels[us[send_fwd]])
        np.minimum.at(new_labels, us[send_bwd], labels[vs[send_bwd]])
        active_mask = new_labels < labels
        labels = new_labels
    return labels, iters


def compact_ids(us: np.ndarray, vs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Relabel vertex ids to a dense 0..k-1 range.

    Graph systems fed an edge list only ever see vertices that appear in
    it; ids absent from the list (artifacts of generators or sparse id
    spaces) do not exist.  Reference kernels must therefore run on the
    compacted id space to agree with the distributed engines — e.g.
    PageRank's (1−d)/n term depends on the *present* vertex count.

    Returns ``(us', vs', ids)`` where ``ids[i]`` is the original id of
    compact vertex ``i``.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    ids = np.unique(np.concatenate([us, vs]))
    return np.searchsorted(ids, us), np.searchsorted(ids, vs), ids


def symmetrize(us: np.ndarray, vs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Undirected form: each edge plus its reverse, deduplicated.

    The paper had to symmetrize inputs to fix a Blogel WCC bug (§4.7);
    the baselines use this helper for the same purpose.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    all_u = np.concatenate([us, vs])
    all_v = np.concatenate([vs, us])
    pairs = np.stack([all_u, all_v], axis=1)
    pairs = np.unique(pairs, axis=0)
    return pairs[:, 0], pairs[:, 1]
