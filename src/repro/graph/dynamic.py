"""In-memory dynamic graph storage.

ElGA stores its dynamic graph "as a flat hash map with vectors" and
keeps both in- and out-edges (§4).  The Python equivalent is a dict of
adjacency sets per direction: O(1) expected insert/delete/lookup, at the
cost of being slower to scan than a CSR — the same trade-off the paper
discusses when comparing against Blogel's static CSR (§4.7).

Simple (non-multi) directed graphs: inserting an existing edge or
deleting a missing one is a no-op that reports ``False``, so the edge
multiset is always consistent with the applied stream prefix.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.graph.stream import INSERT, EdgeBatch


class DynamicGraph:
    """A directed graph under turnstile edge updates.

    Examples
    --------
    >>> g = DynamicGraph()
    >>> g.insert_edge(1, 2)
    True
    >>> g.insert_edge(1, 2)   # duplicate
    False
    >>> g.num_edges
    1
    >>> g.remove_edge(1, 2)
    True
    >>> g.num_edges
    0
    """

    def __init__(self):
        self._out: Dict[int, Set[int]] = {}
        self._in: Dict[int, Set[int]] = {}
        self._num_edges = 0

    # -- mutation ---------------------------------------------------------

    def insert_edge(self, u: int, v: int) -> bool:
        """Insert directed edge (u, v); False if already present."""
        out_u = self._out.get(u)
        if out_u is None:
            out_u = self._out[u] = set()
            self._in.setdefault(u, set())
        if v in out_u:
            return False
        out_u.add(v)
        in_v = self._in.get(v)
        if in_v is None:
            in_v = self._in[v] = set()
            self._out.setdefault(v, set())
        in_v.add(u)
        self._num_edges += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove directed edge (u, v); False if absent."""
        out_u = self._out.get(u)
        if out_u is None or v not in out_u:
            return False
        out_u.remove(v)
        self._in[v].remove(u)
        self._num_edges -= 1
        self._prune(u)
        self._prune(v)
        return True

    def _prune(self, vertex: int) -> None:
        """Drop a vertex whose adjacency became empty in both directions."""
        if not self._out.get(vertex) and not self._in.get(vertex):
            self._out.pop(vertex, None)
            self._in.pop(vertex, None)

    def apply_batch(self, batch: EdgeBatch) -> int:
        """Apply a change batch in stream order; returns #effective changes."""
        applied = 0
        for action, u, v in zip(batch.actions, batch.us, batch.vs):
            if action == INSERT:
                applied += self.insert_edge(int(u), int(v))
            else:
                applied += self.remove_edge(int(u), int(v))
        return applied

    def clear(self) -> None:
        """Reset to the empty graph G^0."""
        self._out.clear()
        self._in.clear()
        self._num_edges = 0

    # -- queries ------------------------------------------------------------

    def has_edge(self, u: int, v: int) -> bool:
        out_u = self._out.get(u)
        return out_u is not None and v in out_u

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_vertices(self) -> int:
        return len(self._out)

    def vertices(self) -> Iterator[int]:
        """All vertices with at least one incident edge."""
        return iter(self._out)

    def out_neighbors(self, u: int) -> Set[int]:
        return self._out.get(u, set())

    def in_neighbors(self, v: int) -> Set[int]:
        return self._in.get(v, set())

    def out_degree(self, u: int) -> int:
        return len(self._out.get(u, ()))

    def in_degree(self, v: int) -> int:
        return len(self._in.get(v, ()))

    def degree(self, v: int) -> int:
        """Total degree (in + out), the quantity the sketch estimates."""
        return self.out_degree(v) + self.in_degree(v)

    # -- bulk export -----------------------------------------------------------

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sources, destinations) arrays in deterministic sorted order."""
        m = self._num_edges
        us = np.empty(m, dtype=np.int64)
        vs = np.empty(m, dtype=np.int64)
        pos = 0
        for u in sorted(self._out):
            nbrs = self._out[u]
            if not nbrs:
                continue
            dsts = sorted(nbrs)
            n = len(dsts)
            us[pos : pos + n] = u
            vs[pos : pos + n] = dsts
            pos += n
        return us, vs

    def degree_dict(self) -> Dict[int, int]:
        """Exact total degree per vertex (ground truth for sketch tests)."""
        return {v: self.degree(v) for v in self._out}

    def __eq__(self, other) -> bool:
        if not isinstance(other, DynamicGraph):
            return NotImplemented
        return self._out == other._out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicGraph(n={self.num_vertices}, m={self.num_edges})"
