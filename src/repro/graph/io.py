"""Edge-list input/output.

The paper's cluster reads edge lists from a distributed filesystem
(Ceph) and the artifact ships scripts that feed them to ElGA.  This
module is the library equivalent: plain-text edge lists (the format
SNAP/LAW datasets use), a compact ``.npz`` binary form, and a chunked
reader that streams a file into :class:`~repro.graph.stream.EdgeBatch`
batches the way a Streamer consumes them.
"""

from __future__ import annotations

import os
from typing import Iterator, Tuple

import numpy as np

from repro.graph.stream import EdgeBatch


def write_edge_list(path: str, us: np.ndarray, vs: np.ndarray, comment: str = "") -> None:
    """Write a whitespace-separated edge list (SNAP-style).

    Lines beginning with ``#`` are comments; each data line is
    ``src dst``.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if len(us) != len(vs):
        raise ValueError(f"ragged edge arrays: {len(us)} vs {len(vs)}")
    with open(path, "w", encoding="utf-8") as fh:
        if comment:
            for line in comment.splitlines():
                fh.write(f"# {line}\n")
        fh.write(f"# edges: {len(us)}\n")
        np.savetxt(fh, np.stack([us, vs], axis=1), fmt="%d")


def read_edge_list(path: str) -> Tuple[np.ndarray, np.ndarray]:
    """Read a whitespace-separated edge list, skipping ``#`` comments.

    Examples
    --------
    >>> import tempfile, os
    >>> f = tempfile.NamedTemporaryFile(mode="w", suffix=".el", delete=False)
    >>> _ = f.write("# demo\\n0 1\\n1 2\\n")
    >>> f.close()
    >>> us, vs = read_edge_list(f.name)
    >>> us.tolist(), vs.tolist()
    ([0, 1], [1, 2])
    >>> os.unlink(f.name)
    """
    import warnings

    with warnings.catch_warnings():
        # An all-comments file is a legitimate empty graph, not a
        # user-facing warning condition.
        warnings.simplefilter("ignore", UserWarning)
        data = np.loadtxt(path, dtype=np.int64, comments="#", ndmin=2)
    if data.size == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    if data.shape[1] < 2:
        raise ValueError(f"{path}: expected 'src dst' per line, got {data.shape[1]} columns")
    return data[:, 0].copy(), data[:, 1].copy()


def save_npz(path: str, us: np.ndarray, vs: np.ndarray, n: int) -> None:
    """Save a graph compactly (compressed int64 arrays + vertex count)."""
    np.savez_compressed(
        path,
        us=np.asarray(us, dtype=np.int64),
        vs=np.asarray(vs, dtype=np.int64),
        n=np.int64(n),
    )


def load_npz(path: str) -> Tuple[np.ndarray, np.ndarray, int]:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(path) as data:
        return data["us"].copy(), data["vs"].copy(), int(data["n"])


def stream_edge_list(path: str, chunk: int = 8192) -> Iterator[EdgeBatch]:
    """Stream a text edge list as insertion batches without loading it
    whole — the shape a Streamer ingests.

    Examples
    --------
    >>> import tempfile, os
    >>> f = tempfile.NamedTemporaryFile(mode="w", suffix=".el", delete=False)
    >>> _ = f.write("0 1\\n1 2\\n2 0\\n")
    >>> f.close()
    >>> total = sum(len(b) for b in stream_edge_list(f.name, chunk=2))
    >>> total
    3
    >>> os.unlink(f.name)
    """
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    us_buf: list = []
    vs_buf: list = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}: malformed edge line {line!r}")
            us_buf.append(int(parts[0]))
            vs_buf.append(int(parts[1]))
            if len(us_buf) >= chunk:
                yield EdgeBatch.insertions(us_buf, vs_buf)
                us_buf, vs_buf = [], []
    if us_buf:
        yield EdgeBatch.insertions(us_buf, vs_buf)
