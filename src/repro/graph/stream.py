"""Turnstile edge-change streams and batches (Definitions 2.3–2.4).

A change is ``(action, u, v)`` where the action inserts or removes the
directed edge ``(u, v)``.  A batch Δ_{i,j} is a contiguous segment of the
stream.  Batches are stored as parallel numpy arrays so Streamers and
Agents can route and apply them vectorized.

The paper's datasets have no real deletion timestamps, so §4.4 models
dynamism by deleting a random sample of edges and re-inserting it as a
batch; :func:`delete_reinsert_batches` implements exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

INSERT = np.int8(1)
"""Action code for edge insertion."""

REMOVE = np.int8(-1)
"""Action code for edge removal."""


@dataclass
class EdgeBatch:
    """A batch of edge changes as parallel arrays.

    Attributes
    ----------
    actions:
        int8 array of :data:`INSERT` / :data:`REMOVE` codes.
    us, vs:
        int64 source and destination vertex ids.
    """

    actions: np.ndarray
    us: np.ndarray
    vs: np.ndarray

    def __post_init__(self) -> None:
        self.actions = np.asarray(self.actions, dtype=np.int8)
        self.us = np.asarray(self.us, dtype=np.int64)
        self.vs = np.asarray(self.vs, dtype=np.int64)
        if not (len(self.actions) == len(self.us) == len(self.vs)):
            raise ValueError(
                f"ragged batch: {len(self.actions)} actions, "
                f"{len(self.us)} sources, {len(self.vs)} destinations"
            )

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[Tuple[int, int, int]]:
        for a, u, v in zip(self.actions, self.us, self.vs):
            yield int(a), int(u), int(v)

    @staticmethod
    def insertions(us, vs) -> "EdgeBatch":
        """A batch inserting the given edges."""
        us = np.asarray(us, dtype=np.int64)
        return EdgeBatch(np.full(len(us), INSERT, dtype=np.int8), us, np.asarray(vs, dtype=np.int64))

    @staticmethod
    def deletions(us, vs) -> "EdgeBatch":
        """A batch removing the given edges."""
        us = np.asarray(us, dtype=np.int64)
        return EdgeBatch(np.full(len(us), REMOVE, dtype=np.int8), us, np.asarray(vs, dtype=np.int64))

    @staticmethod
    def concat(batches: Sequence["EdgeBatch"]) -> "EdgeBatch":
        """Concatenate batches in stream order."""
        if not batches:
            return EdgeBatch(np.empty(0, np.int8), np.empty(0, np.int64), np.empty(0, np.int64))
        return EdgeBatch(
            np.concatenate([b.actions for b in batches]),
            np.concatenate([b.us for b in batches]),
            np.concatenate([b.vs for b in batches]),
        )

    def split(self, parts: int) -> List["EdgeBatch"]:
        """Split into ``parts`` near-equal contiguous sub-batches."""
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        bounds = np.linspace(0, len(self), parts + 1).astype(np.int64)
        return [
            EdgeBatch(self.actions[a:b], self.us[a:b], self.vs[a:b])
            for a, b in zip(bounds[:-1], bounds[1:])
        ]

    def inverted(self) -> "EdgeBatch":
        """The batch that undoes this one, in reverse order."""
        return EdgeBatch(-self.actions[::-1], self.us[::-1], self.vs[::-1])

    @property
    def touched_vertices(self) -> np.ndarray:
        """Unique vertex ids appearing in this batch (sorted)."""
        return np.unique(np.concatenate([self.us, self.vs]))


def insertion_stream(us, vs, chunk: int = 8192) -> Iterator[EdgeBatch]:
    """Yield an edge list as a stream of insertion batches.

    This is how generators feed the cluster: the paper extended A-BTER
    to stream edges so ElGA "directly receives the graph as it is
    generated" (§4.4).
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    for start in range(0, len(us), chunk):
        yield EdgeBatch.insertions(us[start : start + chunk], vs[start : start + chunk])


def delete_reinsert_batches(
    us,
    vs,
    sample_size: int,
    rng: np.random.Generator,
    n_batches: int = 1,
) -> List[Tuple[EdgeBatch, EdgeBatch]]:
    """§4.4's dynamic-change model: sample edges, delete, re-insert.

    Returns ``n_batches`` pairs of (deletion batch, insertion batch); the
    samples are drawn without replacement within a pair so applying both
    restores the original graph exactly.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if sample_size > len(us):
        raise ValueError(f"sample of {sample_size} from only {len(us)} edges")
    out: List[Tuple[EdgeBatch, EdgeBatch]] = []
    for _ in range(n_batches):
        pick = rng.choice(len(us), size=sample_size, replace=False)
        out.append((EdgeBatch.deletions(us[pick], vs[pick]), EdgeBatch.insertions(us[pick], vs[pick])))
    return out
