"""Hash functions and consistent hashing.

Consistent hashing over a 64-bit ring is ElGA's backbone (§2.3, §3.4.1):
every participant maps edges to Agents with it, and it is what makes the
system elastic — when an Agent joins or leaves, only the keys adjacent to
it on the ring move.  The hash function itself matters a great deal
(Figure 5); Thomas Wang's 64-bit mix is the paper's winner and the
default here.
"""

from repro.hashing.hashes import (
    HASH_FUNCTIONS,
    abseil64,
    as_u64_keys,
    crc64,
    identity64,
    mult64,
    wang64,
)
from repro.hashing.ring import ConsistentHashRing

__all__ = [
    "HASH_FUNCTIONS",
    "ConsistentHashRing",
    "abseil64",
    "as_u64_keys",
    "crc64",
    "identity64",
    "mult64",
    "wang64",
]
