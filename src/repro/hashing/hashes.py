"""64-bit integer hash functions (Figure 5).

ElGA hashes 64-bit vertex IDs on every edge access, so the hash must be
fast and high quality (uniform).  The paper compares Thomas Wang's
64-bit integer hash (the winner, used everywhere else in this repo),
the multiplicative hash from Steele et al.'s splittable PRNG work, a
non-deterministic Abseil-style hash, and CRC64; cryptographic hashes are
deliberately avoided as too slow.

All functions are vectorized over ``numpy.uint64`` arrays and also accept
Python ints, returning the same shape they were given.  Overflow wraps
modulo 2^64, matching C semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

U64 = np.uint64
_MASK64 = (1 << 64) - 1

HashInput = Union[int, np.ndarray]


def _as_u64(x: HashInput) -> np.ndarray:
    arr = np.asarray(x)
    if arr.dtype != np.uint64:
        arr = arr.astype(np.int64, copy=False).view(np.uint64) if arr.dtype.kind == "i" else arr.astype(np.uint64)
    return arr


def as_u64_keys(x: HashInput) -> np.ndarray:
    """Canonical ``uint64`` reinterpretation of vertex ids for hashing.

    Signed integers are first widened to ``int64`` and then *bit-viewed*
    as ``uint64`` (two's complement), so a negative or narrow-dtype
    vertex id hashes to the same value no matter which code path (or
    which endpoint of an edge) produced it.  Every placement-level hash
    input must go through this one helper.

    Examples
    --------
    >>> int(as_u64_keys(np.array([-1], dtype=np.int32))[0]) == 2**64 - 1
    True
    >>> int(as_u64_keys(np.array([-1], dtype=np.int64))[0]) == 2**64 - 1
    True
    """
    return _as_u64(np.atleast_1d(np.asarray(x)))


def _restore(result: np.ndarray, original: HashInput) -> HashInput:
    if np.ndim(original) == 0 and not isinstance(original, np.ndarray):
        return int(result)
    return result


def wang64(x: HashInput) -> HashInput:
    """Thomas Wang's 64-bit integer hash — the paper's best performer.

    Examples
    --------
    >>> wang64(0) != 0
    True
    >>> import numpy as np
    >>> out = wang64(np.arange(4, dtype=np.uint64))
    >>> out.dtype
    dtype('uint64')
    """
    key = _as_u64(x)
    if key.ndim == 1 and key.flags.c_contiguous:
        from repro import kernels

        fast = kernels.wang64_u64(key)
        if fast is not None:
            return _restore(fast, x)
    key = key.copy()
    with np.errstate(over="ignore"):
        key = (~key) + (key << U64(21))
        key ^= key >> U64(24)
        key = (key + (key << U64(3))) + (key << U64(8))  # key * 265
        key ^= key >> U64(14)
        key = (key + (key << U64(2))) + (key << U64(4))  # key * 21
        key ^= key >> U64(28)
        key = key + (key << U64(31))
    return _restore(key, x)


def mult64(x: HashInput) -> HashInput:
    """Multiplicative (Fibonacci) hash from Steele, Lea & Flood's
    splittable PRNG — "Mult" in Figure 5.

    A single odd-constant multiply: very fast, but low bits mix poorly,
    which shows up as worse edge-distribution quality in the figure.
    """
    key = _as_u64(x)
    with np.errstate(over="ignore"):
        key = key * U64(0x9E3779B97F4A7C15)
    return _restore(key, x)


_ABSEIL_SALT = U64(0x8C32E1D6F9A45B27)


def abseil64(x: HashInput, salt: int = None) -> HashInput:
    """Abseil-style salted mix ("Abseil" in Figure 5).

    Abseil's hash is process-nondeterministic; here the salt defaults to
    a fixed constant so experiments stay reproducible, but callers can
    supply their own to model the nondeterminism.
    """
    key = _as_u64(x)
    s = _ABSEIL_SALT if salt is None else U64(salt & _MASK64)
    with np.errstate(over="ignore"):
        key = (key ^ s) * U64(0x9DDFEA08EB382D69)
        key ^= key >> U64(44)
        key = key * U64(0x9DDFEA08EB382D69)
        key ^= key >> U64(41)
    return _restore(key, x)


def _build_crc64_table() -> np.ndarray:
    """256-entry table for the ECMA-182 polynomial (MSB-first)."""
    poly = 0x42F0E1EBA9EA3693
    table = np.empty(256, dtype=np.uint64)
    for byte in range(256):
        crc = byte << 56
        for _ in range(8):
            if crc & (1 << 63):
                crc = ((crc << 1) ^ poly) & _MASK64
            else:
                crc = (crc << 1) & _MASK64
        table[byte] = crc
    return table


_CRC64_TABLE = _build_crc64_table()


def crc64(x: HashInput) -> HashInput:
    """CRC64 (ECMA-182), processing the key's 8 bytes MSB first.

    CRCs are designed for error detection, not avalanche, and the figure
    shows their distribution quality trails Wang's hash.
    """
    key = _as_u64(x)
    crc = np.zeros_like(key, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for shift in range(56, -8, -8):
            byte = (key >> U64(shift)) & U64(0xFF)
            idx = ((crc >> U64(56)) ^ byte).astype(np.int64)
            crc = _CRC64_TABLE[idx] ^ (crc << U64(8))
    return _restore(crc, x)


def identity64(x: HashInput) -> HashInput:
    """The identity "hash" — a deliberately terrible control.

    Sequential vertex IDs land on adjacent ring positions, collapsing
    the load balance; useful in tests and ablations to show the system's
    sensitivity to hash quality.
    """
    key = _as_u64(x)
    return _restore(key.copy(), x)


HASH_FUNCTIONS: Dict[str, Callable[[HashInput], HashInput]] = {
    "wang": wang64,
    "mult": mult64,
    "abseil": abseil64,
    "crc64": crc64,
    "identity": identity64,
}
"""Registry keyed by the names used in Figure 5 (plus ``identity``)."""
