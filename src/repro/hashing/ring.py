"""Consistent hashing over a 64-bit ring with virtual agents (§3.4.1–2).

Each member (Agent) contributes ``virtual_factor`` positions to the ring
(100 by default — the paper's experimentally chosen value, Figure 6).  A
key is owned by the member whose position is the *next highest* on the
ring, wrapping around.  Lookups are a binary search over the sorted
position vector: O(log(P · virtual_factor)).

The property that makes ElGA elastic: when a member joins or leaves,
only keys in the ring arcs adjacent to its virtual positions change
owner — everything else stays put (tested property-based in
``tests/hashing/test_ring_properties.py``).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.hashing.hashes import wang64

U64 = np.uint64


class ConsistentHashRing:
    """A 64-bit consistent-hash ring with virtual nodes.

    Parameters
    ----------
    members:
        Initial member ids (non-negative ints, e.g. Agent ids).
    virtual_factor:
        Virtual positions per member (paper default: 100).
    hash_fn:
        64-bit hash used both for member positions and key lookups.
    seed:
        Mixed into member position derivation so independent rings can
        be decorrelated if desired; all participants in one cluster must
        share the same seed (it is part of the directory broadcast).

    Examples
    --------
    >>> ring = ConsistentHashRing([0, 1, 2], virtual_factor=50)
    >>> owner = ring.lookup(12345)
    >>> owner in {0, 1, 2}
    True
    >>> ring.remove(owner)
    >>> ring.lookup(12345) in ring.members()
    True
    """

    def __init__(
        self,
        members: Iterable[int] = (),
        virtual_factor: int = 100,
        hash_fn: Callable = wang64,
        seed: int = 0,
        weights: Optional[dict] = None,
    ):
        if virtual_factor < 1:
            raise ValueError(f"virtual_factor must be >= 1, got {virtual_factor}")
        self.virtual_factor = int(virtual_factor)
        self.hash_fn = hash_fn
        self.seed = int(seed)
        self._members: dict = {}  # member id -> positions array
        self._weights: dict = {}
        self._positions = np.empty(0, dtype=np.uint64)
        self._owners = np.empty(0, dtype=np.int64)
        self._dirty = False
        weights = weights or {}
        for m in members:
            self._insert(int(m), weight=float(weights.get(int(m), 1.0)))
        self._rebuild()

    # -- membership --------------------------------------------------------

    def members(self) -> List[int]:
        """Sorted list of current member ids."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member_id: int) -> bool:
        return int(member_id) in self._members

    def add(self, member_id: int, weight: float = 1.0) -> None:
        """Add a member; O(virtual_factor · log) rebuild on next lookup.

        ``weight`` scales the member's virtual-position count — the
        §3.4.2 future-work extension for heterogeneous systems: a
        member with weight 2.0 contributes twice the virtual agents and
        therefore claims roughly twice the keys.

        Re-adding an existing member is idempotent: its old virtual
        positions are replaced (remove-then-insert), never duplicated.
        The rebalance planner leans on this to re-weight a live member
        in place.
        """
        member_id = int(member_id)
        if member_id in self._members:
            del self._members[member_id]
            self._weights.pop(member_id, None)
        self._insert(member_id, weight=float(weight))
        self._dirty = True

    def remove(self, member_id: int) -> None:
        """Remove a member; raises KeyError if absent."""
        del self._members[int(member_id)]
        self._weights.pop(int(member_id), None)
        self._dirty = True

    def weight_of(self, member_id: int) -> float:
        """The member's capacity weight (1.0 unless set at add time)."""
        return self._weights.get(int(member_id), 1.0)

    def _insert(self, member_id: int, weight: float = 1.0) -> None:
        if member_id in self._members:
            raise ValueError(f"member {member_id} already on the ring")
        if member_id < 0:
            raise ValueError(f"member ids must be non-negative, got {member_id}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        # Position = hash(member id combined with virtual index and seed).
        # The combine constant spreads sequential member ids before hashing
        # so even weak hash functions see distinct inputs.
        count = max(1, int(round(self.virtual_factor * weight)))
        self._weights[member_id] = weight
        vidx = np.arange(count, dtype=np.uint64)
        with np.errstate(over="ignore"):
            raw = (
                U64(member_id) * U64(0x100000001B3)
                + vidx * U64(0x9E3779B97F4A7C15)
                + U64(self.seed & 0xFFFFFFFFFFFFFFFF)
            )
        self._members[member_id] = np.asarray(self.hash_fn(raw), dtype=np.uint64)

    def _rebuild(self) -> None:
        if not self._members:
            self._positions = np.empty(0, dtype=np.uint64)
            self._owners = np.empty(0, dtype=np.int64)
            self._member_ids_arr = np.empty(0, dtype=np.int64)
            self._succ_comp = np.empty(0, dtype=np.int64)
            self._succ_slots = np.empty(0, dtype=np.int64)
            self._succ_seg_start = np.zeros(1, dtype=np.int64)
            self._succ_first_slot = np.empty(0, dtype=np.int64)
            self._dirty = False
            return
        ids = np.array(sorted(self._members), dtype=np.int64)
        pos_list = [self._members[int(i)] for i in ids]
        positions = np.concatenate(pos_list)
        owners = np.repeat(ids, [len(p) for p in pos_list])
        # Sort by (position, owner) so position collisions resolve
        # identically on every participant.
        order = np.lexsort((owners, positions))
        self._positions = positions[order]
        self._owners = owners[order]
        # Per-member slot index, grouped, for the batched successor
        # lookup: slots sorted by (member index, slot index) plus the
        # composite key member_index * n_slots + slot that makes "first
        # slot >= s owned by member j" a single searchsorted.
        n_slots = len(self._positions)
        owner_idx = np.searchsorted(ids, self._owners)
        grp = np.argsort(owner_idx, kind="stable")
        self._member_ids_arr = ids
        self._succ_slots = grp.astype(np.int64)
        self._succ_comp = owner_idx[grp].astype(np.int64) * n_slots + grp
        self._succ_seg_start = np.searchsorted(
            owner_idx[grp], np.arange(len(ids) + 1)
        ).astype(np.int64)
        self._succ_first_slot = self._succ_slots[self._succ_seg_start[:-1]]
        self._dirty = False

    def _ensure_built(self) -> None:
        if self._dirty:
            self._rebuild()

    # -- lookups -------------------------------------------------------------

    def lookup_hash(self, key_hashes) -> np.ndarray:
        """Owners for already-hashed keys (vectorized).

        The owner is the member at the next-highest ring position,
        wrapping past the top of the 64-bit space to position 0.
        """
        self._ensure_built()
        if len(self._members) == 0:
            raise LookupError("ring has no members")
        hashes = np.atleast_1d(np.asarray(key_hashes, dtype=np.uint64))
        idx = np.searchsorted(self._positions, hashes, side="left")
        idx[idx == len(self._positions)] = 0
        return self._owners[idx]

    def lookup(self, keys) -> "int | np.ndarray":
        """Owners for raw keys: hash then :meth:`lookup_hash`."""
        scalar = np.ndim(keys) == 0
        hashes = self.hash_fn(np.atleast_1d(np.asarray(keys, dtype=np.uint64)))
        owners = self.lookup_hash(hashes)
        return int(owners[0]) if scalar else owners

    def successors_hash(self, key_hash: int, k: int) -> List[int]:
        """The next ``k`` *distinct* members clockwise from ``key_hash``.

        This is the replica set for a split high-degree vertex: the
        paper selects "between the next k-highest Agents in the vector".
        If the ring has fewer than ``k`` members, all members are
        returned (a vertex cannot be split wider than the cluster).
        """
        self._ensure_built()
        if len(self._members) == 0:
            raise LookupError("ring has no members")
        k = min(int(k), len(self._members))
        start = int(np.searchsorted(self._positions, U64(key_hash), side="left"))
        n = len(self._positions)
        found: List[int] = []
        seen = set()
        for step in range(n):
            owner = int(self._owners[(start + step) % n])
            if owner not in seen:
                seen.add(owner)
                found.append(owner)
                if len(found) == k:
                    break
        return found

    def successors(self, key: int, k: int) -> List[int]:
        """Replica set for a raw key (hash applied first)."""
        return self.successors_hash(int(self.hash_fn(int(key))), k)

    def successors_hash_batch(self, key_hashes, ks) -> np.ndarray:
        """Replica sets for many hashed keys at once, fully vectorized.

        Returns an ``(n, k_max)`` int64 matrix whose row ``i`` holds the
        next ``ks[i]`` distinct members clockwise from ``key_hashes[i]``
        (identical to :meth:`successors_hash`), right-padded with ``-1``.
        ``ks`` may be a scalar or a per-key array; values are capped at
        the member count.

        The trick that removes the per-key ring walk: the ``j``-th
        successor of a start slot ``s`` is the member with the ``j``-th
        smallest *first slot at or after* ``s`` (wrapping).  With slots
        pre-grouped by member, each first-slot query is one searchsorted
        on a composite key, and the ordering is one argsort per key —
        all O(n · P log) array work, no Python loop.
        """
        self._ensure_built()
        if len(self._members) == 0:
            raise LookupError("ring has no members")
        hashes = np.atleast_1d(np.asarray(key_hashes, dtype=np.uint64))
        n_members = len(self._member_ids_arr)
        ks_arr = np.minimum(
            np.broadcast_to(np.asarray(ks, dtype=np.int64), hashes.shape), n_members
        )
        if hashes.size == 0:
            return np.empty((0, 0), dtype=np.int64)
        if np.any(ks_arr < 1):
            raise ValueError("replica counts must be >= 1")
        n_slots = len(self._positions)
        starts = np.searchsorted(self._positions, hashes, side="left")
        ustarts, inverse = np.unique(starts, return_inverse=True)
        # First slot >= start owned by each member (wrapping adds
        # n_slots, which keeps wrapped members ordered by their first
        # slot from the ring's origin, after all non-wrapped ones —
        # exactly the scalar walk's visit order).
        qkeys = (
            np.arange(n_members, dtype=np.int64)[None, :] * n_slots
            + ustarts[:, None]
        )
        pos = np.searchsorted(self._succ_comp, qkeys.ravel()).reshape(qkeys.shape)
        valid = pos < self._succ_seg_start[1:][None, :]
        pos_c = np.minimum(pos, n_slots - 1)
        first = np.where(
            valid,
            self._succ_slots[pos_c],
            self._succ_first_slot[None, :] + n_slots,
        )
        order = np.argsort(first, axis=1, kind="stable")
        k_max = int(ks_arr.max())
        succ = self._member_ids_arr[order[:, :k_max]][inverse]
        pad = np.arange(k_max, dtype=np.int64)[None, :] >= ks_arr[:, None]
        succ[pad] = -1
        return succ

    # -- introspection ---------------------------------------------------------

    def position_vector(self) -> Tuple[np.ndarray, np.ndarray]:
        """(positions, owners) arrays — the broadcastable ring state."""
        self._ensure_built()
        return self._positions.copy(), self._owners.copy()

    def arc_fractions(self) -> dict:
        """Fraction of the ring owned by each member.

        With a perfect hash and many virtual nodes this approaches
        1/|members| per member; Figure 6 is the empirical version of
        this measure over real edge placements.
        """
        self._ensure_built()
        if len(self._positions) == 0:
            return {}
        pos = self._positions.astype(np.float64)
        # Arc before position i is owned by owner i (next-highest rule).
        prev = np.roll(pos, 1)
        arcs = pos - prev
        arcs[0] = pos[0] + (2.0**64 - prev[0])
        total = 2.0**64
        out: dict = {}
        for owner, arc in zip(self._owners, arcs):
            out[int(owner)] = out.get(int(owner), 0.0) + arc / total
        return out
