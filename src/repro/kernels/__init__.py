"""Opt-in accelerated kernels for the three hottest array paths.

The data plane bottoms out in three kernels: the placement hash
(``wang64``), the canonical pair combine (``combine_pairs``), and the
receive-side PageRank fold/apply.  This package provides a C backend
for them (compiled at first use with the system compiler — see
:mod:`repro.kernels.csrc`) plus the pure-numpy reference
(:mod:`repro.kernels.reference`) that *defines* correct behaviour.

Acceleration is strictly opt-in and strictly bit-identical:

* ``REPRO_KERNELS=1`` in the environment (or :func:`set_enabled`)
  turns the C backend on; anything else leaves the reference path in
  production.
* If the toolchain is missing, enabling degrades gracefully to the
  reference path — ``available()`` reports what actually happened.
* Parity is enforced by the hypothesis suite in
  ``tests/kernels`` (marker: ``kernels``): for every dtype and shard
  split, C results must equal the reference bit for bit.

Dispatch helpers only engage the C backend above a small batch size
(``MIN_HASH``/``MIN_PAIRS``): below it, ctypes call overhead exceeds
the win and numpy is already fine.  Both paths are bit-identical, so
the threshold is purely a performance knob.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from repro.kernels import csrc, reference

__all__ = [
    "available",
    "enabled",
    "set_enabled",
    "backend",
    "wang64_u64",
    "combine_pairs",
    "fold_pairs",
    "pagerank_apply",
    "c_wang64_u64",
    "c_combine_pairs",
    "c_fold_pairs",
    "c_pagerank_apply",
    "MIN_HASH",
    "MIN_PAIRS",
]

#: Minimum batch sizes before the dispatchers bother with the C call.
MIN_HASH = 512
MIN_PAIRS = 192

_OPCODES = {np.add: 0, np.minimum: 1, np.maximum: 2}

_enabled = os.environ.get("REPRO_KERNELS", "").strip().lower() in (
    "1",
    "on",
    "c",
    "auto",
    "true",
)


def available() -> bool:
    """Whether the C backend compiled and loaded successfully."""
    return csrc.load() is not None


def enabled() -> bool:
    """Whether dispatchers currently try the C backend."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Enable/disable acceleration; returns the *effective* state
    (enabling without a compiler stays off — graceful fallback)."""
    global _enabled
    _enabled = bool(flag) and available()
    return _enabled


def backend() -> str:
    """The backend production calls currently resolve to."""
    return "c" if (_enabled and available()) else "numpy"


def _lib():
    return csrc.load()


# ----------------------------------------------------------------------
# direct C entry points (raise if the backend is unavailable) — used by
# the parity suite and microbenches to compare backends explicitly
# ----------------------------------------------------------------------


def c_wang64_u64(key: np.ndarray) -> np.ndarray:
    lib = _lib()
    if lib is None:
        raise RuntimeError(f"C kernel backend unavailable: {csrc.build_error()}")
    key = np.ascontiguousarray(key, dtype=np.uint64)
    out = np.empty_like(key)
    lib.repro_wang64(key, out, key.size)
    return out


def c_combine_pairs(
    dst: np.ndarray, val: np.ndarray, ufunc: np.ufunc, identity: float
) -> Tuple[np.ndarray, np.ndarray]:
    lib = _lib()
    if lib is None:
        raise RuntimeError(f"C kernel backend unavailable: {csrc.build_error()}")
    op = _OPCODES[ufunc]
    if len(dst) == 0:
        return dst, val
    d = np.ascontiguousarray(dst, dtype=np.int64)
    v = np.ascontiguousarray(val, dtype=np.float64)
    out_dst = np.empty(len(d), dtype=np.int64)
    out_val = np.empty(len(d), dtype=np.float64)
    m = lib.repro_combine_pairs(d, v, len(d), op, float(identity), out_dst, out_val)
    if m < 0:  # pragma: no cover - allocation failure
        raise MemoryError("combine_pairs C kernel allocation failed")
    unique = out_dst[:m]
    if unique.dtype != dst.dtype:
        unique = unique.astype(dst.dtype)
    return unique, out_val[:m]


def c_fold_pairs(
    accum: np.ndarray,
    got: np.ndarray,
    ids: np.ndarray,
    dst: np.ndarray,
    val: np.ndarray,
    ufunc: np.ufunc,
) -> None:
    lib = _lib()
    if lib is None:
        raise RuntimeError(f"C kernel backend unavailable: {csrc.build_error()}")
    op = _OPCODES[ufunc]
    if len(dst) == 0:
        return
    d = np.ascontiguousarray(dst, dtype=np.int64)
    v = np.ascontiguousarray(val, dtype=np.float64)
    ids_c = np.ascontiguousarray(ids, dtype=np.int64)
    if accum.dtype != np.float64 or not accum.flags.c_contiguous:
        raise TypeError("fold_pairs needs a contiguous float64 accumulator")
    got_u8 = got.view(np.uint8)
    rc = lib.repro_fold_pairs(d, v, len(d), ids_c, len(ids_c), op, accum, got_u8)
    if rc == -2:
        raise KeyError("fold_pairs: destination not hosted in ids table")
    if rc != 0:  # pragma: no cover - allocation failure
        raise MemoryError("fold_pairs C kernel allocation failed")


def c_pagerank_apply(agg: np.ndarray, base: float, damping: float) -> np.ndarray:
    lib = _lib()
    if lib is None:
        raise RuntimeError(f"C kernel backend unavailable: {csrc.build_error()}")
    a = np.ascontiguousarray(agg, dtype=np.float64)
    out = np.empty_like(a)
    lib.repro_pr_apply(a, out, a.size, float(base), float(damping))
    return out


# ----------------------------------------------------------------------
# dispatchers — what production code calls
# ----------------------------------------------------------------------


def wang64_u64(key: np.ndarray) -> Optional[np.ndarray]:
    """Accelerated Wang mix over uint64 keys, or None to signal the
    caller to use its own numpy path (tiny batch / backend off)."""
    if _enabled and key.size >= MIN_HASH and available():
        return c_wang64_u64(key)
    return None


def combine_pairs(
    dst: np.ndarray, val: np.ndarray, ufunc: np.ufunc, identity: float
) -> Tuple[np.ndarray, np.ndarray]:
    if (
        _enabled
        and len(dst) >= MIN_PAIRS
        and ufunc in _OPCODES
        and available()
    ):
        return c_combine_pairs(dst, val, ufunc, identity)
    return reference.combine_pairs(dst, val, ufunc, identity)


def fold_pairs(
    accum: np.ndarray,
    got: np.ndarray,
    ids: np.ndarray,
    dst: np.ndarray,
    val: np.ndarray,
    ufunc: np.ufunc,
) -> None:
    if (
        _enabled
        and len(dst) >= MIN_PAIRS
        and ufunc in _OPCODES
        and accum.dtype == np.float64
        and accum.flags.c_contiguous
        and got.dtype == np.bool_
        and got.flags.c_contiguous
        and available()
    ):
        c_fold_pairs(accum, got, ids, dst, val, ufunc)
        return
    reference.fold_pairs(accum, got, ids, dst, val, ufunc)


def pagerank_apply(agg: np.ndarray, base: float, damping: float) -> np.ndarray:
    if _enabled and agg.size >= MIN_PAIRS and available():
        return c_pagerank_apply(agg, base, damping)
    return reference.pagerank_apply(agg, base, damping)
