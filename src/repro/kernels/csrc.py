"""Runtime-compiled C backend for the hot kernels.

The container ships no numba/cython, so acceleration is a single C
translation unit compiled on first use with the system ``cc`` into a
shared library loaded via ``ctypes``.  Compilation is best-effort: any
failure (no compiler, read-only tmp, exotic platform) leaves the
backend unavailable and every caller falls back to the numpy reference
path — behaviour, not just results, must be identical either way.

Determinism contract (see DESIGN.md §6j): every C kernel reproduces the
numpy reference *bit for bit* on finite inputs.

* Integer kernels (``wang64``) are exact by construction — the same
  64-bit wrapping ops in the same order.
* Float folds replicate numpy's evaluation order: pairs are sorted by
  ``np.lexsort((val, dst))``-equivalent order (stable LSD radix on the
  IEEE-754 total-order key), then folded strictly left to right per
  destination, which is exactly what ``ufunc.at`` does after a lexsort.
  min/max use numpy's own element formula
  ``acc = (acc < v || isnan(acc)) ? acc : v`` so NaN propagation and
  ±0.0 selection match ``np.minimum``/``np.maximum``.
* ``-ffp-contract=off`` forbids FMA contraction so ``a + b * c``
  rounds twice, exactly as numpy's separate multiply and add do.

The one documented divergence: a batch holding *both* -0.0 and +0.0
for the same destination can fold them in either order (they compare
equal, and the radix key is a total order while lexsort is stable).
The sums are equal; only min/max could surface the sign bit.  No
shipped vertex program emits -0.0.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from typing import Optional

import numpy as np

C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

/* ---- Thomas Wang 64-bit mix (bit-identical to the numpy path) ---- */

static uint64_t wang_mix(uint64_t key) {
    key = (~key) + (key << 21);
    key ^= key >> 24;
    key = (key + (key << 3)) + (key << 8);
    key ^= key >> 14;
    key = (key + (key << 2)) + (key << 4);
    key ^= key >> 28;
    key = key + (key << 31);
    return key;
}

void repro_wang64(const uint64_t* in, uint64_t* out, int64_t n) {
    for (int64_t i = 0; i < n; i++) out[i] = wang_mix(in[i]);
}

/* ---- pair sort: np.lexsort((val, dst)) order ---- */

/* Monotone uint64 image of an IEEE-754 double (total order). */
static uint64_t dkey(double x) {
    uint64_t b;
    memcpy(&b, &x, 8);
    return (b & 0x8000000000000000ULL) ? ~b : (b ^ 0x8000000000000000ULL);
}

/* Inverse of dkey: recover the double from its total-order image. */
static double dkey_inv(uint64_t k) {
    uint64_t b = (k & 0x8000000000000000ULL) ? (k ^ 0x8000000000000000ULL) : ~k;
    double x;
    memcpy(&x, &b, 8);
    return x;
}

static uint64_t ikey(int64_t x) {
    return ((uint64_t)x) ^ 0x8000000000000000ULL;
}

/* Stable LSD radix of (dst, vkey) pairs by the biased dst key, moving
 * both arrays together (no index indirection — sequential reads,
 * bucketed writes).  All eight byte histograms are built in ONE scan,
 * and scatter passes run only for bytes that actually vary — vertex
 * ids use few low bytes, and the sign bias makes high bytes constant,
 * so this is typically 2-3 passes, not 8. */
static void radix_pairs_by_dst(int64_t** d, uint64_t** v, int64_t** td,
                               uint64_t** tv, int64_t n) {
    int64_t count[8][256];
    memset(count, 0, sizeof(count));
    const int64_t* ds0 = *d;
    for (int64_t i = 0; i < n; i++) {
        uint64_t k = ikey(ds0[i]);
        count[0][k & 0xFF]++;
        count[1][(k >> 8) & 0xFF]++;
        count[2][(k >> 16) & 0xFF]++;
        count[3][(k >> 24) & 0xFF]++;
        count[4][(k >> 32) & 0xFF]++;
        count[5][(k >> 40) & 0xFF]++;
        count[6][(k >> 48) & 0xFF]++;
        count[7][(k >> 56) & 0xFF]++;
    }
    for (int p = 0; p < 8; p++) {
        int single = 0;
        for (int j = 0; j < 256; j++)
            if (count[p][j] == n) { single = 1; break; }
        if (single) continue; /* constant byte: order unchanged */
        int64_t offs[256];
        int64_t run = 0;
        for (int j = 0; j < 256; j++) {
            offs[j] = run;
            run += count[p][j];
        }
        const int64_t* ds = *d;
        const uint64_t* vs = *v;
        int64_t* od = *td;
        uint64_t* ov = *tv;
        int shift = p * 8;
        for (int64_t i = 0; i < n; i++) {
            uint64_t b = (ikey(ds[i]) >> shift) & 0xFF;
            od[offs[b]] = ds[i];
            ov[offs[b]] = vs[i];
            offs[b]++;
        }
        *td = (int64_t*)ds;
        *tv = (uint64_t*)vs;
        *d = od;
        *v = ov;
    }
}

/* Sort one dst-group's value keys ascending: insertion sort for small
 * runs; above that, byte-wise LSD radix with single-scan histograms
 * and constant-byte skipping. */
static void sort_keys(uint64_t* k, int64_t n, uint64_t* tmp) {
    if (n < 2) return;
    if (n <= 32) {
        for (int64_t i = 1; i < n; i++) {
            uint64_t x = k[i];
            int64_t j = i - 1;
            while (j >= 0 && k[j] > x) {
                k[j + 1] = k[j];
                j--;
            }
            k[j + 1] = x;
        }
        return;
    }
    int64_t count[8][256];
    memset(count, 0, sizeof(count));
    for (int64_t i = 0; i < n; i++) {
        uint64_t x = k[i];
        count[0][x & 0xFF]++;
        count[1][(x >> 8) & 0xFF]++;
        count[2][(x >> 16) & 0xFF]++;
        count[3][(x >> 24) & 0xFF]++;
        count[4][(x >> 32) & 0xFF]++;
        count[5][(x >> 40) & 0xFF]++;
        count[6][(x >> 48) & 0xFF]++;
        count[7][(x >> 56) & 0xFF]++;
    }
    uint64_t* a = k;
    uint64_t* b = tmp;
    for (int p = 0; p < 8; p++) {
        int single = 0;
        for (int j = 0; j < 256; j++)
            if (count[p][j] == n) { single = 1; break; }
        if (single) continue;
        int64_t offs[256];
        int64_t run = 0;
        for (int j = 0; j < 256; j++) {
            offs[j] = run;
            run += count[p][j];
        }
        int shift = p * 8;
        for (int64_t i = 0; i < n; i++)
            b[offs[(a[i] >> shift) & 0xFF]++] = a[i];
        uint64_t* t = a; a = b; b = t;
    }
    if (a != k) memcpy(k, a, sizeof(uint64_t) * n);
}

/* Sort (dst, val) pairs into (dst asc, val asc) order — the exact
 * order np.lexsort((val, dst)) produces for finite floats (entries
 * comparing equal are interchangeable; see the -0.0 note above).
 * Strategy: map values to their monotone uint64 keys once, LSD radix
 * on dst bytes moving the (dst, vkey) pairs (constant bytes skipped),
 * sort vkeys independently per dst group, decode back to doubles.
 * Returns sorted arrays through *out_d / *out_v plus two scratch
 * buffers; the caller frees all four. */
static int sort_pairs(const int64_t* dst, const double* val, int64_t n,
                      int64_t** out_d, double** out_v,
                      int64_t** scratch_d, double** scratch_v) {
    int64_t* d = (int64_t*)malloc(sizeof(int64_t) * n);
    uint64_t* v = (uint64_t*)malloc(sizeof(uint64_t) * n);
    int64_t* td = (int64_t*)malloc(sizeof(int64_t) * n);
    uint64_t* tv = (uint64_t*)malloc(sizeof(uint64_t) * n);
    if (!d || !v || !td || !tv) {
        free(d); free(v); free(td); free(tv);
        return -1;
    }
    memcpy(d, dst, sizeof(int64_t) * n);
    for (int64_t i = 0; i < n; i++) v[i] = dkey(val[i]);
    radix_pairs_by_dst(&d, &v, &td, &tv, n);
    int64_t start = 0;
    for (int64_t i = 1; i <= n; i++) {
        if (i == n || d[i] != d[start]) {
            sort_keys(v + start, i - start, tv);
            start = i;
        }
    }
    double* vd = (double*)v; /* decode in place: same 8-byte slots */
    for (int64_t i = 0; i < n; i++) vd[i] = dkey_inv(v[i]);
    *out_d = d;
    *out_v = vd;
    *scratch_d = td;
    *scratch_v = (double*)tv;
    return 0;
}

/* op: 0 = add, 1 = minimum, 2 = maximum — numpy's element formulas. */
static double op_apply(int op, double acc, double v) {
    if (op == 0) return acc + v;
    if (op == 1) return (acc < v || isnan(acc)) ? acc : v;
    return (acc > v || isnan(acc)) ? acc : v;
}

/* combine_pairs: fold a (dst, val) multiset to one partial per dst in
 * (dst, val)-sorted order.  Returns the number of unique dsts, or -1
 * on allocation failure. */
int64_t repro_combine_pairs(const int64_t* dst, const double* val, int64_t n,
                            int op, double identity,
                            int64_t* out_dst, double* out_val) {
    if (n == 0) return 0;
    int64_t *d, *sd;
    double *v, *sv;
    if (sort_pairs(dst, val, n, &d, &v, &sd, &sv) != 0) return -1;
    int64_t m = -1;
    int64_t prev = 0;
    for (int64_t i = 0; i < n; i++) {
        if (m < 0 || d[i] != prev) {
            m++;
            out_dst[m] = d[i];
            out_val[m] = identity;
            prev = d[i];
        }
        out_val[m] = op_apply(op, out_val[m], v[i]);
    }
    free(d); free(v); free(sd); free(sv);
    return m + 1;
}

/* fold_pairs: the receive-side fold — sort (dst, val), locate each dst
 * in the sorted id table, fold into accum and mark got.  Returns 0,
 * -1 on allocation failure, -2 if a dst is not in ids. */
int repro_fold_pairs(const int64_t* dst, const double* val, int64_t n,
                     const int64_t* ids, int64_t n_ids,
                     int op, double* accum, uint8_t* got) {
    if (n == 0) return 0;
    int64_t *d, *sd;
    double *v, *sv;
    if (sort_pairs(dst, val, n, &d, &v, &sd, &sv) != 0) return -1;
    int64_t pos = -1;
    int64_t prev = 0;
    for (int64_t i = 0; i < n; i++) {
        if (pos < 0 || d[i] != prev) {
            int64_t key = d[i];
            int64_t lo = 0, hi = n_ids;
            while (lo < hi) {
                int64_t mid = (lo + hi) >> 1;
                if (ids[mid] < key) lo = mid + 1; else hi = mid;
            }
            if (lo >= n_ids || ids[lo] != key) {
                free(d); free(v); free(sd); free(sv);
                return -2;
            }
            pos = lo;
            prev = key;
        }
        accum[pos] = op_apply(op, accum[pos], v[i]);
        got[pos] = 1;
    }
    free(d); free(v); free(sd); free(sv);
    return 0;
}

/* PageRank apply: out[i] = base + damping * agg[i].  Contraction is
 * off, so the multiply and add round separately, like numpy. */
void repro_pr_apply(const double* agg, double* out, int64_t n,
                    double base, double damping) {
    for (int64_t i = 0; i < n; i++) out[i] = base + damping * agg[i];
}
"""

#: Compile command; -ffp-contract=off keeps float folds bit-identical
#: to numpy (no FMA), and no -march flags keeps codegen portable.
_CFLAGS = ["-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-strict-aliasing"]

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_build_failed = False
_build_error: Optional[str] = None


def _compiler() -> Optional[str]:
    for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if not cc:
            continue
        from shutil import which

        if which(cc):
            return cc
    return None


def _build() -> Optional[ctypes.CDLL]:
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler on PATH")
    digest = hashlib.sha256(C_SOURCE.encode()).hexdigest()[:16]
    libdir = os.path.join(tempfile.gettempdir(), "repro-kernels")
    os.makedirs(libdir, exist_ok=True)
    libpath = os.path.join(libdir, f"repro_kernels_{digest}.so")
    if not os.path.exists(libpath):
        src = os.path.join(libdir, f"repro_kernels_{digest}.c")
        with open(src, "w") as fh:
            fh.write(C_SOURCE)
        tmp = libpath + f".tmp{os.getpid()}"
        subprocess.run(
            [cc, *_CFLAGS, "-o", tmp, src],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp, libpath)  # atomic: concurrent builders race safely
    lib = ctypes.CDLL(libpath)
    i64, u64p, i64p, f64p, u8p = (
        ctypes.c_int64,
        np.ctypeslib.ndpointer(np.uint64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(np.uint8, flags="C_CONTIGUOUS"),
    )
    lib.repro_wang64.argtypes = [u64p, u64p, i64]
    lib.repro_wang64.restype = None
    lib.repro_combine_pairs.argtypes = [
        i64p, f64p, i64, ctypes.c_int, ctypes.c_double, i64p, f64p,
    ]
    lib.repro_combine_pairs.restype = ctypes.c_int64
    lib.repro_fold_pairs.argtypes = [
        i64p, f64p, i64, i64p, i64, ctypes.c_int, f64p, u8p,
    ]
    lib.repro_fold_pairs.restype = ctypes.c_int
    lib.repro_pr_apply.argtypes = [f64p, f64p, i64, ctypes.c_double, ctypes.c_double]
    lib.repro_pr_apply.restype = None
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The compiled library, building it on first call (None if the
    toolchain is unavailable — callers must fall back gracefully)."""
    global _lib, _build_failed, _build_error
    if _lib is not None or _build_failed:
        return _lib
    with _lock:
        if _lib is not None or _build_failed:
            return _lib
        try:
            _lib = _build()
        except Exception as exc:  # any failure means "no acceleration"
            _build_failed = True
            _build_error = f"{type(exc).__name__}: {exc}"
    return _lib


def build_error() -> Optional[str]:
    """Why the backend is unavailable (None if fine or not yet tried)."""
    return _build_error
