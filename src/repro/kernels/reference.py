"""Pure-numpy reference implementations — the determinism oracle.

These are the *definitions* of what the C backend must reproduce bit
for bit.  They are also the production path whenever acceleration is
off or unavailable, so they must match the historical agent/dataplane
code exactly (same lexsort, same ``ufunc.at`` fold, same dtypes).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

U64 = np.uint64


def wang64_u64(key: np.ndarray) -> np.ndarray:
    """Thomas Wang's 64-bit mix over a uint64 array (pure numpy).

    Identical, op for op, to :func:`repro.hashing.hashes.wang64`'s
    core; kept here (on pre-converted uint64 input) so kernel parity
    tests and microbenches can compare backends without the dtype
    plumbing around the public hash entry point.
    """
    key = key.copy()
    with np.errstate(over="ignore"):
        key = (~key) + (key << U64(21))
        key ^= key >> U64(24)
        key = (key + (key << U64(3))) + (key << U64(8))
        key ^= key >> U64(14)
        key = (key + (key << U64(2))) + (key << U64(4))
        key ^= key >> U64(28)
        key = key + (key << U64(31))
    return key


def combine_pairs(
    dst: np.ndarray, val: np.ndarray, ufunc: np.ufunc, identity: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Canonical (dst, val)-ordered fold to one partial per dst."""
    if len(dst) == 0:
        return dst, val
    order = np.lexsort((val, dst))
    d = dst[order]
    v = val[order]
    boundaries = np.empty(len(d), dtype=bool)
    boundaries[0] = True
    np.not_equal(d[1:], d[:-1], out=boundaries[1:])
    unique_dst = d[boundaries]
    group = np.cumsum(boundaries) - 1
    acc = np.full(len(unique_dst), identity, dtype=np.float64)
    ufunc.at(acc, group, v)
    return unique_dst, acc


def fold_pairs(
    accum: np.ndarray,
    got: np.ndarray,
    ids: np.ndarray,
    dst: np.ndarray,
    val: np.ndarray,
    ufunc: np.ufunc,
) -> None:
    """Receive-side fold of a (dst, val) multiset into ``accum``.

    Sorts pairs canonically, locates each destination in the sorted
    ``ids`` table, folds in place, and marks ``got``.  Raises KeyError
    for destinations not present in ``ids``.
    """
    if len(dst) == 0:
        return
    order = np.lexsort((val, dst))
    d = dst[order]
    pos = np.searchsorted(ids, d)
    if len(d) and (
        pos.max(initial=0) >= len(ids)
        or not np.array_equal(ids[np.minimum(pos, len(ids) - 1)], d)
    ):
        raise KeyError("fold_pairs: destination not hosted in ids table")
    ufunc.at(accum, pos, val[order])
    got[pos] = True


def pagerank_apply(agg: np.ndarray, base: float, damping: float) -> np.ndarray:
    """The PageRank apply formula, elementwise: ``base + damping*agg``."""
    return base + damping * agg
