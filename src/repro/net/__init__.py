"""Simulated message-passing layer.

This package stands in for ZeroMQ (§3.5 of the paper).  It reproduces the
communication *semantics* ElGA relies on — REQ/REP blocking requests,
non-blocking PUSH, PUB/SUB with single-byte type filtering, per-entity
serial processing, out-of-order tolerance — while charging simulated time
through a calibrated latency/bandwidth model
(:class:`~repro.net.latency.TransportModel`) instead of real sockets.

The paper measured MPI sends at ~1 µs, raw TCP at ~4 µs, and ZeroMQ at
over 20 µs on its cluster; those constants are the model's presets, so the
relative transport overheads that shape Figures 11–12 carry over.
"""

from repro.net.faults import (
    CONTROL_PTYPES,
    DATA_PTYPES,
    CrashEvent,
    FaultPlan,
    FaultRule,
    PartitionWindow,
)
from repro.net.latency import TransportModel
from repro.net.message import Message, PacketType, payload_nbytes
from repro.net.network import Network, NetworkStats
from repro.net.sockets import PubSubSocket, PushSocket, ReqRepSocket

__all__ = [
    "CONTROL_PTYPES",
    "DATA_PTYPES",
    "CrashEvent",
    "FaultPlan",
    "FaultRule",
    "Message",
    "PartitionWindow",
    "Network",
    "NetworkStats",
    "PacketType",
    "PubSubSocket",
    "PushSocket",
    "ReqRepSocket",
    "TransportModel",
    "payload_nbytes",
]
