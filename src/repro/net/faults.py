"""Deterministic fault injection for the simulated fabric.

ElGA's §3 robustness claims — tolerance of out-of-order, duplicated,
and lost messages, and of agents joining/leaving mid-computation — are
only claims until the fabric actually misbehaves.  A :class:`FaultPlan`
is a seeded, policy-driven description of that misbehavior: the
:class:`~repro.net.network.Network` consults it on every transmission
and the plan decides, per message, whether to drop it, duplicate it,
reorder it (an extra delay past later traffic), or spike its latency.

Every decision is drawn from one private
:func:`~repro.sim.random.entity_rng` stream, and the simulator visits
messages in a deterministic order, so a chaos run is exactly replayable
from ``(experiment seed, plan seed)`` — a failing fault matrix entry in
CI reproduces locally from the logged seeds alone.

Three policy axes compose:

* :class:`FaultRule` — probabilistic drop/duplicate/reorder/delay for
  messages matching a ``PacketType`` set and/or a (src, dst) link,
  active inside a simulated-time window;
* :class:`PartitionWindow` — a clean network partition: traffic crossing
  the group boundary is dropped for the window's duration;
* :class:`CrashEvent` — scheduled agent departures, interpreted by the
  harness as a mid-run ``scale_plan`` (the paper's SIGINT leave).

Examples
--------
>>> from repro.net.message import Message, PacketType
>>> plan = FaultPlan(seed=1, rules=[FaultRule(drop_p=1.0)])
>>> plan.decide(Message(PacketType.VERTEX_MSG, src=0, dst=1), now=0.0)
[]
>>> plan.injected["drops"]
1
>>> keep = FaultPlan(seed=1)  # no rules: every message passes untouched
>>> keep.decide(Message(PacketType.VERTEX_MSG, src=0, dst=1), now=0.0)
[0.0]
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.net.message import Message, PacketType
from repro.sim.random import entity_rng

#: Data-plane packet types (algorithm values, edge changes, migration).
DATA_PTYPES: FrozenSet[PacketType] = frozenset(
    {
        PacketType.VERTEX_MSG,
        PacketType.VERTEX_MSG_ACK,
        PacketType.EDGE_UPDATE,
        PacketType.EDGE_UPDATE_ACK,
        PacketType.EDGE_MIGRATE,
        PacketType.EDGE_MIGRATE_ACK,
        PacketType.REPLICA_SYNC,
        PacketType.REPLICA_VALUE,
    }
)

#: Control-plane packet types (membership, sketch, barrier protocol).
CONTROL_PTYPES: FrozenSet[PacketType] = frozenset(
    {
        PacketType.DIRECTORY_UPDATE,
        PacketType.DIRECTORY_SYNC,
        PacketType.AGENT_JOIN,
        PacketType.AGENT_LEAVE,
        PacketType.SKETCH_DELTA,
        PacketType.SUBSCRIBE,
        PacketType.SPLIT_REPORT,
        PacketType.AGENT_READY,
        PacketType.READY_REBROADCAST,
        PacketType.SUPERSTEP_ADVANCE,
        PacketType.RUN_START,
        PacketType.DIR_LEASE,
        PacketType.DIR_LEASE_ACK,
        PacketType.DIRECTORY_REGISTER,
    }
)


def _validate_probability(name: str, p: float) -> None:
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"{name} must be a probability in [0, 1], got {p!r}")


@dataclass(frozen=True)
class FaultRule:
    """One probabilistic misbehavior policy.

    A rule matches a message when *all* its filters accept it: the
    packet type is in ``ptypes`` (``None`` = every type), the link
    endpoints match ``src``/``dst`` (``None`` = any), and the current
    simulated time lies in ``[start_s, end_s)``.

    Attributes
    ----------
    drop_p, dup_p, reorder_p, delay_p:
        Per-message probabilities of dropping, duplicating (one extra
        copy), reordering, and latency-spiking.
    reorder_window_s:
        A reordered copy is held back by a uniform extra delay in
        ``(0, reorder_window_s]`` — enough to land behind messages sent
        after it, violating the fabric's usual per-pair FIFO order.
    delay_spike_s:
        Extra latency added on a delay spike (tail-latency events).
    """

    name: str = "rule"
    ptypes: Optional[FrozenSet[PacketType]] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    drop_p: float = 0.0
    dup_p: float = 0.0
    reorder_p: float = 0.0
    delay_p: float = 0.0
    reorder_window_s: float = 1e-3
    delay_spike_s: float = 5e-3
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        for attr in ("drop_p", "dup_p", "reorder_p", "delay_p"):
            _validate_probability(f"{self.name}.{attr}", getattr(self, attr))
        if self.reorder_window_s < 0 or self.delay_spike_s < 0:
            raise ValueError(f"{self.name}: delays must be non-negative")
        if self.end_s < self.start_s:
            raise ValueError(f"{self.name}: end_s precedes start_s")

    def matches(self, message: Message, now: float) -> bool:
        if not (self.start_s <= now < self.end_s):
            return False
        if self.ptypes is not None and message.ptype not in self.ptypes:
            return False
        if self.src is not None and message.src != self.src:
            return False
        if self.dst is not None and message.dst != self.dst:
            return False
        return True


@dataclass(frozen=True)
class PartitionWindow:
    """A clean partition: for ``[start_s, end_s)`` every message that
    crosses the boundary between ``group`` and the rest of the fabric is
    dropped (in both directions).  Addresses inside the group still talk
    to each other, as do addresses outside it."""

    group: FrozenSet[int]
    start_s: float
    end_s: float

    def separates(self, src: int, dst: int, now: float) -> bool:
        if not (self.start_s <= now < self.end_s):
            return False
        return (src in self.group) != (dst in self.group)


@dataclass(frozen=True)
class CrashEvent:
    """A scheduled participant departure, keyed by superstep.

    Two flavors:

    * **graceful** (default): the paper's SIGINT leave (§3.4.3).  The
      chaos harness translates these into the engine's mid-run
      ``scale_plan``, so ``agents_removed`` agents drain and leave
      after superstep ``after_step`` completes.
    * **abrupt** (``abrupt=True``): a process death.  The harness turns
      these into a ``crash_plan`` — shortly after superstep
      ``after_step`` completes, the victim is detached from the fabric
      mid-superstep with no drain; the directory's lease-based failure
      detector must notice, evict it, and drive checkpoint/WAL
      recovery (see ``cluster/recovery.py``).

    ``target`` extends the blast radius beyond the data plane:

    * ``"agent"`` (default) — kill ``agents_removed`` Agents;
    * ``"directory"`` — kill the *lead* Directory (the peers' term
      election replaces it; requires ``dir_lease_interval > 0``);
    * ``"master"`` — kill the DirectoryMaster (the harness restarts it
      after ``master_restart_delay``).

    Control-plane entities have no graceful drain, so non-agent
    targets must be ``abrupt``.
    """

    after_step: int
    agents_removed: int = 1
    abrupt: bool = False
    target: str = "agent"

    def __post_init__(self) -> None:
        if self.after_step < 1:
            raise ValueError(
                f"CrashEvent.after_step must be >= 1 (steps are 1-based), "
                f"got {self.after_step}"
            )
        if self.agents_removed < 1:
            raise ValueError(
                f"CrashEvent.agents_removed must be >= 1, got {self.agents_removed}"
            )
        if self.target not in ("agent", "directory", "master"):
            raise ValueError(
                f"CrashEvent.target must be 'agent', 'directory', or "
                f"'master', got {self.target!r}"
            )
        if self.target != "agent" and not self.abrupt:
            raise ValueError(
                f"a {self.target} crash has no graceful drain; set abrupt=True"
            )


class FaultPlan:
    """A seeded, replayable misbehavior policy for one chaos run.

    Parameters
    ----------
    seed:
        Chaos seed; decisions come from an independent
        :func:`~repro.sim.random.entity_rng` substream, so the plan
        never perturbs the randomness of the entities under test.
    rules:
        :class:`FaultRule` policies; the **first** matching rule decides
        each message (order the specific before the general).
    partitions:
        :class:`PartitionWindow` list, checked before any rule.
    crashes:
        :class:`CrashEvent` list for the harness's ``scale_plan``.
    """

    def __init__(
        self,
        seed: int = 0,
        rules: Sequence[FaultRule] = (),
        partitions: Sequence[PartitionWindow] = (),
        crashes: Sequence[CrashEvent] = (),
    ):
        self.seed = int(seed)
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.partitions: Tuple[PartitionWindow, ...] = tuple(partitions)
        self.crashes: Tuple[CrashEvent, ...] = tuple(sorted(crashes, key=lambda c: c.after_step))
        self.rng = entity_rng(self.seed, "fault-plan")
        self.injected: Dict[str, int] = {
            "drops": 0,
            "partition_drops": 0,
            "dups": 0,
            "reorders": 0,
            "delay_spikes": 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
            f"partitions={len(self.partitions)}, crashes={len(self.crashes)})"
        )

    # -- the Network-facing decision API -----------------------------------

    def decide(self, message: Message, now: float) -> List[float]:
        """Decide one transmission's fate.

        Returns the extra transport delay for each copy to deliver:
        ``[]`` means the message is dropped, ``[0.0]`` is a normal
        delivery, two entries mean a duplicate.  RNG draws happen only
        for matched messages, so adding a narrow rule never shifts the
        stream consumed by an unrelated one... as long as rule *order*
        is stable, which frozen tuples guarantee.
        """
        for window in self.partitions:
            if window.separates(message.src, message.dst, now):
                self.injected["partition_drops"] += 1
                return []
        rule = self._match(message, now)
        if rule is None:
            return [0.0]
        if rule.drop_p and self.rng.random() < rule.drop_p:
            self.injected["drops"] += 1
            return []
        copies = 1
        if rule.dup_p and self.rng.random() < rule.dup_p:
            self.injected["dups"] += 1
            copies = 2
        delays: List[float] = []
        for _ in range(copies):
            extra = 0.0
            if rule.reorder_p and self.rng.random() < rule.reorder_p:
                self.injected["reorders"] += 1
                extra += float(self.rng.random()) * rule.reorder_window_s
            if rule.delay_p and self.rng.random() < rule.delay_p:
                self.injected["delay_spikes"] += 1
                extra += rule.delay_spike_s
            delays.append(extra)
        return delays

    def _match(self, message: Message, now: float) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.matches(message, now):
                return rule
        return None

    # -- harness integration -----------------------------------------------

    def scale_plan(self, current_agents: int) -> Dict[int, int]:
        """Translate *graceful* crash events into the engine's mid-run
        scale plan.

        Returns ``{superstep: target agent count}``, compounding
        removals across events (two crashes of one agent each leave
        ``current_agents - 2`` at the second event's step).  Abrupt
        crashes are not drains and are excluded; they come from
        :meth:`crash_plan` instead.
        """
        plan: Dict[int, int] = {}
        target = int(current_agents)
        for crash in self.crashes:
            if crash.abrupt:
                continue
            target -= crash.agents_removed
            if target < 1:
                raise ValueError("crash schedule removes every agent")
            plan[crash.after_step] = target
        return plan

    def crash_plan(self) -> Dict[int, object]:
        """Translate *abrupt* crash events into the engine's crash plan.

        Shortly after each listed superstep's barrier completes, the
        victims are killed mid-superstep (detached from the fabric, no
        drain).  A step whose events only target agents maps to a plain
        int victim count (the pre-control-plane shape every existing
        harness understands); a step that also kills the lead Directory
        or the DirectoryMaster maps to
        ``{"agents": n, "lead": bool, "master": bool}``.
        """
        plan: Dict[int, dict] = {}
        for crash in self.crashes:
            if not crash.abrupt:
                continue
            entry = plan.setdefault(
                crash.after_step, {"agents": 0, "lead": False, "master": False}
            )
            if crash.target == "agent":
                entry["agents"] += crash.agents_removed
            elif crash.target == "directory":
                entry["lead"] = True
            else:
                entry["master"] = True
        return {
            step: entry["agents"] if not (entry["lead"] or entry["master"]) else entry
            for step, entry in plan.items()
        }

    # -- convenience constructors ------------------------------------------

    @classmethod
    def data_plane_chaos(
        cls,
        seed: int = 0,
        drop_p: float = 0.05,
        dup_p: float = 0.05,
        reorder_p: float = 0.10,
        delay_p: float = 0.02,
        crashes: Sequence[CrashEvent] = (),
        ptypes: Iterable[PacketType] = DATA_PTYPES,
    ) -> "FaultPlan":
        """The acceptance scenario: lossy, duplicating, reordering data
        plane (vertex messages, edge updates, migration, replica sync)
        with a perfect control plane."""
        rule = FaultRule(
            name="data-plane",
            ptypes=frozenset(ptypes),
            drop_p=drop_p,
            dup_p=dup_p,
            reorder_p=reorder_p,
            delay_p=delay_p,
        )
        return cls(seed=seed, rules=[rule], crashes=crashes)

    @classmethod
    def control_plane_chaos(
        cls,
        seed: int = 0,
        drop_p: float = 0.05,
        dup_p: float = 0.05,
        reorder_p: float = 0.10,
        delay_p: float = 0.02,
        crashes: Sequence[CrashEvent] = (),
    ) -> "FaultPlan":
        """Chaos on the directory/barrier protocol only (JOIN/LEAVE,
        sketch deltas, READY, ADVANCE, RUN_START, broadcasts)."""
        rule = FaultRule(
            name="control-plane",
            ptypes=CONTROL_PTYPES,
            drop_p=drop_p,
            dup_p=dup_p,
            reorder_p=reorder_p,
            delay_p=delay_p,
        )
        return cls(seed=seed, rules=[rule], crashes=crashes)

    @classmethod
    def full_chaos(
        cls,
        seed: int = 0,
        drop_p: float = 0.05,
        dup_p: float = 0.05,
        reorder_p: float = 0.10,
        delay_p: float = 0.02,
        crashes: Sequence[CrashEvent] = (),
        partitions: Sequence[PartitionWindow] = (),
    ) -> "FaultPlan":
        """Chaos on every message, transport acks included."""
        rule = FaultRule(
            name="everything",
            drop_p=drop_p,
            dup_p=dup_p,
            reorder_p=reorder_p,
            delay_p=delay_p,
        )
        return cls(seed=seed, rules=[rule], partitions=partitions, crashes=crashes)
