"""Transport latency and bandwidth models.

§3.5 of the paper benchmarks the cluster's transports: an MPI send at
about 1 µs, a raw TCP send at 4 µs, and a send through ZeroMQ at over
20 µs (Mellanox ConnectX-5, 100 Gbps Arista switch).  These measurements
are the presets here.  A message's simulated delivery delay is

    delay = base_latency + size_bytes / bandwidth

with a cheaper intra-node path (ZeroMQ's ``ipc://`` transport) when both
endpoints share a physical node.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransportModel:
    """Latency/bandwidth parameters for one transport.

    Attributes
    ----------
    name:
        Transport label (appears in benchmark output).
    latency_s:
        Per-message one-way latency between nodes, in seconds.
    bandwidth_Bps:
        Link bandwidth in bytes/second (100 Gbps default).
    intra_node_latency_s:
        Per-message latency when endpoints share a node.
    intra_node_bandwidth_Bps:
        Memory-bus bandwidth for the intra-node path.
    """

    name: str
    latency_s: float
    bandwidth_Bps: float = 100e9 / 8
    intra_node_latency_s: float = 0.3e-6
    intra_node_bandwidth_Bps: float = 50e9

    def delay(self, size_bytes: int, same_node: bool = False) -> float:
        """One-way delivery delay in seconds for a message of this size."""
        if size_bytes < 0:
            raise ValueError(f"negative message size: {size_bytes}")
        if same_node:
            return self.intra_node_latency_s + size_bytes / self.intra_node_bandwidth_Bps
        return self.latency_s + size_bytes / self.bandwidth_Bps

    # -- presets matching the paper's §3.5 measurements --------------------

    @staticmethod
    def mpi() -> "TransportModel":
        """MPI send: ~1 µs on the paper's cluster (used by Blogel)."""
        return TransportModel(name="mpi", latency_s=1e-6)

    @staticmethod
    def raw_tcp() -> "TransportModel":
        """Raw TCP send: ~4 µs on the paper's cluster."""
        return TransportModel(name="tcp", latency_s=4e-6)

    @staticmethod
    def zeromq() -> "TransportModel":
        """ZeroMQ send: >20 µs on the paper's cluster (used by ElGA)."""
        return TransportModel(name="zmq", latency_s=20e-6)

    @staticmethod
    def spark_rpc() -> "TransportModel":
        """Java/Netty RPC path used by the GraphX baseline model."""
        return TransportModel(name="spark", latency_s=80e-6)
