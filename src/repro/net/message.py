"""Messages and packet types.

ElGA's wire protocol puts a single packet-type byte first in every
message so ZeroMQ subscription filtering is cheap (§3.5).  We keep the
same convention: every :class:`Message` carries a :class:`PacketType`
tag, and PUB/SUB subscriptions filter on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np


class PacketType(enum.IntEnum):
    """Single-byte message type tags (first byte on the wire)."""

    # Directory system
    DIRECTORY_QUERY = 1       # bootstrap: ask the DirectoryMaster for a Directory
    DIRECTORY_ASSIGN = 2      # DirectoryMaster -> participant: your Directory
    DIRECTORY_UPDATE = 3      # broadcast: agent list + sketch + batch id
    DIRECTORY_SYNC = 4        # directory <-> directory internal broadcast
    AGENT_JOIN = 5            # agent -> directory: joining the system
    AGENT_LEAVE = 6           # agent -> directory: leaving the system
    SKETCH_DELTA = 7          # agent -> directory: CountMinSketch updates
    SUBSCRIBE = 8             # participant -> directory: pub/sub registration
    SPLIT_REPORT = 9          # agent -> directory: vertex crossed split threshold

    # Superstep / barrier protocol (Figure 2)
    AGENT_READY = 10          # agent -> directory: all internal vertices inactive
    READY_REBROADCAST = 11    # directory -> directory: ready set exchange
    SUPERSTEP_ADVANCE = 12    # directory -> agents: advance to next superstep
    RUN_START = 13            # directory -> agents: begin an algorithm run

    # Data plane
    VERTEX_MSG = 20           # algorithm values flowing along edges
    VERTEX_MSG_ACK = 21       # explicit acknowledgement (second PUSH back)
    EDGE_UPDATE = 22          # streamer -> agent: edge insertion/deletion
    EDGE_UPDATE_ACK = 23
    EDGE_MIGRATE = 24         # agent -> agent: edges moving after rebalance
    EDGE_MIGRATE_ACK = 25
    REPLICA_SYNC = 26         # replica -> primary: partial aggregates
    REPLICA_VALUE = 27        # primary -> replicas: applied vertex values

    # Client path
    CLIENT_QUERY = 30         # client proxy -> agent: read one vertex result
    CLIENT_REPLY = 31
    RESULT_NOTICE = 32        # directory -> client proxies: result version bump

    # Generic REQ/REP plumbing
    REQUEST = 40
    REPLY = 41
    DELIVERY_ACK = 42         # transport-level receipt (reliable fabric mode)

    # Metrics / autoscaling
    METRIC_REPORT = 50        # agent -> directory: metric sample
    SCALE_COMMAND = 51        # autoscaler -> cluster: target agent count
    REBALANCE_PLAN = 52       # planner -> directory: ring re-weight adoption

    # Failure detection / crash recovery
    HEARTBEAT = 60            # agent -> directory: liveness lease refresh
    AGENT_SUSPECT = 61        # lead directory -> master: lease expired
    EVICT_CONFIRM = 62        # master -> lead directory: eviction verdict
    RECOVER = 63              # lead directory -> agents: roll back / restart

    # Control-plane fault tolerance (directory replication / failover)
    DIR_LEASE = 64            # lead directory -> peers: term-numbered lease renewal
    DIR_LEASE_ACK = 65        # peer -> lead directory: lease acknowledgement
    DIRECTORY_REGISTER = 66   # directory -> master: periodic (re-)registration


_SCALAR_BYTES = 8


def payload_nbytes(payload: Any) -> int:
    """Estimate the serialized size of a payload in bytes.

    ElGA's protocols are direct memory copies of packed structs, so the
    estimate charges 8 bytes per scalar (the paper uses 64-bit vertex
    IDs), actual buffer sizes for numpy arrays, and recurses through
    containers.  ``None`` is free (flag-only packets).
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bool, int, float, np.integer, np.floating)):
        return _SCALAR_BYTES
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, dict):
        # Field names ("step", "dst", …) are struct layout, not wire
        # data: a packed struct ships only its values.  Charging keys
        # would also make the struct-of-arrays data-plane packets pay
        # O(fields) string costs per packet instead of O(arrays).
        return sum(payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(v) for v in payload)
    if hasattr(payload, "nbytes"):
        return int(payload.nbytes)
    # Opaque object: charge a fixed struct-sized footprint.
    return 64


@dataclass
class Message:
    """One message on the simulated fabric.

    Attributes
    ----------
    ptype:
        Single-byte packet type, used for dispatch and PUB/SUB filters.
    src, dst:
        Network addresses.  ``dst`` is filled in by the sending socket.
    payload:
        Arbitrary Python/numpy payload.
    size_bytes:
        Serialized size; computed from the payload unless given
        explicitly (protocol headers add one type byte).
    request_id:
        Correlation id for REQ/REP exchanges.
    seq:
        Per-link transport sequence number, assigned by the fabric when
        reliable delivery is enabled; ``None`` on fire-and-forget sends.
    term:
        Control-plane term the message was sent under (directory-origin
        traffic only).  Receivers fence stale-term control packets the
        same way incarnation numbers fence stale data traffic; ``None``
        means "not term-fenced" (data plane, client requests, legacy).
    """

    ptype: PacketType
    payload: Any = None
    src: int = -1
    dst: int = -1
    size_bytes: int = -1
    request_id: Optional[int] = None
    seq: Optional[int] = None
    term: Optional[int] = None
    send_time: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            self.size_bytes = 1 + payload_nbytes(self.payload)

    def reply(self, ptype: PacketType, payload: Any = None) -> "Message":
        """Build a response message correlated with this request."""
        return Message(ptype=ptype, payload=payload, request_id=self.request_id)
