"""The simulated network fabric.

The fabric connects :class:`~repro.sim.entity.Entity` instances: it
assigns addresses, delivers messages through the transport model, and
accounts for every message and byte so benchmarks can report traffic
(e.g. Figure 16's "percent of edges moved" is measured from
``EDGE_MIGRATE`` traffic).

Delivery semantics mirror ZeroMQ as ElGA uses it:

* sends are non-blocking — the sender keeps computing while the message
  is in flight (ZeroMQ runs on separate I/O threads, §3.5);
* a message departs only once its single-threaded sender is free
  (``Entity.charge`` models serial compute);
* messages between the same pair of entities stay ordered, but there is
  no global order — ElGA is explicitly tolerant of out-of-order arrival.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.net.latency import TransportModel
from repro.net.message import Message, PacketType

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.entity import Entity
    from repro.sim.kernel import SimKernel


@dataclass
class NetworkStats:
    """Aggregate traffic counters for one fabric."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_dropped: int = 0
    by_type_count: Dict[PacketType, int] = field(default_factory=lambda: defaultdict(int))
    by_type_bytes: Dict[PacketType, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        self.by_type_count[message.ptype] += 1
        self.by_type_bytes[message.ptype] += message.size_bytes

    def snapshot(self) -> "NetworkStats":
        """A deep copy usable for interval deltas."""
        copy = NetworkStats(
            messages_sent=self.messages_sent,
            bytes_sent=self.bytes_sent,
            messages_dropped=self.messages_dropped,
        )
        copy.by_type_count = defaultdict(int, self.by_type_count)
        copy.by_type_bytes = defaultdict(int, self.by_type_bytes)
        return copy


class Network:
    """Message fabric over a :class:`~repro.sim.kernel.SimKernel`.

    Parameters
    ----------
    kernel:
        The event loop messages are scheduled on.
    transport:
        Latency/bandwidth model (defaults to the paper's ZeroMQ numbers).
    """

    def __init__(self, kernel: "SimKernel", transport: Optional[TransportModel] = None):
        self.kernel = kernel
        self.transport = transport if transport is not None else TransportModel.zeromq()
        self.stats = NetworkStats()
        self._entities: Dict[int, "Entity"] = {}
        self._next_address = 0
        self._taps: List[Callable[[Message], None]] = []

    # -- membership --------------------------------------------------------

    def attach(self, entity: "Entity") -> int:
        """Register an entity and return its unique address."""
        address = self._next_address
        self._next_address += 1
        self._entities[address] = entity
        return address

    def detach(self, address: int) -> None:
        """Remove an entity; later messages to it are counted as dropped."""
        self._entities.pop(address, None)

    def entity_at(self, address: int) -> Optional["Entity"]:
        """The entity registered at ``address``, or None if detached."""
        return self._entities.get(address)

    def is_attached(self, address: int) -> bool:
        return address in self._entities

    @property
    def attached_count(self) -> int:
        return len(self._entities)

    # -- test/diagnostic hooks ----------------------------------------------

    def add_tap(self, tap: Callable[[Message], None]) -> None:
        """Register a callback observing every sent message (for tests)."""
        self._taps.append(tap)

    # -- sending -------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Send a message; delivery is scheduled through the transport.

        The departure time respects the sender's busy horizon (a
        single-threaded entity cannot emit a response before finishing
        the compute charged for producing it).
        """
        if message.dst < 0:
            raise ValueError("message has no destination")
        message.send_time = self.kernel.now
        self.stats.record(message)
        for tap in self._taps:
            tap(message)

        sender = self._entities.get(message.src)
        departure = sender.available_at() if sender is not None else self.kernel.now
        same_node = self._same_node(message.src, message.dst)
        arrival = departure + self.transport.delay(message.size_bytes, same_node=same_node)
        self.kernel.schedule_at(arrival, self._deliver, message)

    def _same_node(self, src: int, dst: int) -> bool:
        a = self._entities.get(src)
        b = self._entities.get(dst)
        if a is None or b is None:
            return False
        return getattr(a, "node", 0) == getattr(b, "node", 0)

    def _deliver(self, message: Message) -> None:
        entity = self._entities.get(message.dst)
        if entity is None:
            self.stats.messages_dropped += 1
            return
        entity.handle_message(message)
