"""The simulated network fabric.

The fabric connects :class:`~repro.sim.entity.Entity` instances: it
assigns addresses, delivers messages through the transport model, and
accounts for every message and byte so benchmarks can report traffic
(e.g. Figure 16's "percent of edges moved" is measured from
``EDGE_MIGRATE`` traffic).

Delivery semantics mirror ZeroMQ as ElGA uses it:

* sends are non-blocking — the sender keeps computing while the message
  is in flight (ZeroMQ runs on separate I/O threads, §3.5);
* a message departs only once its single-threaded sender is free
  (``Entity.charge`` models serial compute);
* messages between the same pair of entities stay ordered, but there is
  no global order — ElGA is explicitly tolerant of out-of-order arrival.

Two opt-in layers extend the perfect fabric for chaos testing (see
DESIGN.md, "Delivery semantics and the fault model"):

* an installed :class:`~repro.net.faults.FaultPlan` is consulted on
  every transmission and may drop, duplicate, reorder, or delay it;
* **reliable mode** gives every protocol message a per-link sequence
  number and a retransmit timer.  Receivers acknowledge each sequenced
  message with a transport-level ``DELIVERY_ACK`` and suppress
  duplicates (idempotent ack: re-acked, never re-dispatched), so the
  protocol layer observes exactly-once delivery even while the plan
  misbehaves underneath.  Retransmission to a detached address is
  abandoned — addresses are never reused, so a departed entity can
  never be confused with a successor.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.net.latency import TransportModel
from repro.net.message import Message, PacketType

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.faults import FaultPlan
    from repro.sim.entity import Entity
    from repro.sim.kernel import EventHandle, SimKernel


@dataclass
class NetworkStats:
    """Aggregate traffic counters for one fabric.

    ``messages_dropped`` totals every drop cause; ``dropped_by_type``
    and the per-cause counters break it down (detached destination,
    chaos rule, partition window).  Retransmissions count only in the
    retry counters — ``messages_sent``/``by_type_count`` stay original
    sends, so traffic-derived figures (e.g. Figure 16) are unaffected
    by reliability being switched on.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_dropped: int = 0
    by_type_count: Dict[PacketType, int] = field(default_factory=lambda: defaultdict(int))
    by_type_bytes: Dict[PacketType, int] = field(default_factory=lambda: defaultdict(int))
    dropped_by_type: Dict[PacketType, int] = field(default_factory=lambda: defaultdict(int))
    drops_detached: int = 0
    drops_chaos: int = 0
    drops_partition: int = 0
    messages_duplicated: int = 0
    messages_retried: int = 0
    retries_by_type: Dict[PacketType, int] = field(default_factory=lambda: defaultdict(int))
    retries_abandoned: int = 0
    duplicates_suppressed: int = 0
    acks_sent: int = 0
    # Crash-recovery observability, recorded by the directory's failure
    # detector (the fabric is the shared observability plane): lease
    # checks that found an agent overdue, and leases that expired all
    # the way to a confirmed eviction.
    heartbeats_missed: int = 0
    lease_expirations: int = 0
    # Control-plane fault tolerance: lead-directory elections completed
    # and term-fenced control packets dropped by receivers as stale.
    lead_elections: int = 0
    stale_term_drops: int = 0
    # Load-adaptive repartitioning: ring re-weight plans the lead
    # directory actually adopted (no-op plans are not counted).
    rebalance_adoptions: int = 0
    # Data-plane fast path observability: total packets a cumulative
    # VERTEX_MSG_ACK acknowledged (its ``count`` field), and how many
    # of those acks covered more than one packet.
    data_ack_credits: int = 0
    data_acks_batched: int = 0

    def record(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        self.by_type_count[message.ptype] += 1
        self.by_type_bytes[message.ptype] += message.size_bytes
        if message.ptype == PacketType.VERTEX_MSG_ACK and isinstance(message.payload, dict):
            count = int(message.payload.get("count", 1))
            self.data_ack_credits += count
            if count > 1:
                self.data_acks_batched += 1

    def record_drop(self, message: Message, cause: str) -> None:
        """Count one dropped delivery under its cause and packet type."""
        self.messages_dropped += 1
        self.dropped_by_type[message.ptype] += 1
        if cause == "detached":
            self.drops_detached += 1
        elif cause == "chaos":
            self.drops_chaos += 1
        elif cause == "partition":
            self.drops_partition += 1
        else:  # pragma: no cover - guards future call sites
            raise ValueError(f"unknown drop cause {cause!r}")

    def snapshot(self) -> "NetworkStats":
        """A deep copy usable for interval deltas."""
        copy = NetworkStats(
            messages_sent=self.messages_sent,
            bytes_sent=self.bytes_sent,
            messages_dropped=self.messages_dropped,
            drops_detached=self.drops_detached,
            drops_chaos=self.drops_chaos,
            drops_partition=self.drops_partition,
            messages_duplicated=self.messages_duplicated,
            messages_retried=self.messages_retried,
            retries_abandoned=self.retries_abandoned,
            duplicates_suppressed=self.duplicates_suppressed,
            acks_sent=self.acks_sent,
            heartbeats_missed=self.heartbeats_missed,
            lease_expirations=self.lease_expirations,
            lead_elections=self.lead_elections,
            stale_term_drops=self.stale_term_drops,
            rebalance_adoptions=self.rebalance_adoptions,
            data_ack_credits=self.data_ack_credits,
            data_acks_batched=self.data_acks_batched,
        )
        copy.by_type_count = defaultdict(int, self.by_type_count)
        copy.by_type_bytes = defaultdict(int, self.by_type_bytes)
        copy.dropped_by_type = defaultdict(int, self.dropped_by_type)
        copy.retries_by_type = defaultdict(int, self.retries_by_type)
        return copy


class _Pending:
    """One unacknowledged reliable send (retransmit bookkeeping)."""

    __slots__ = ("message", "attempt", "handle")

    def __init__(self, message: Message, handle: "EventHandle"):
        self.message = message
        self.attempt = 0
        self.handle = handle


class _DedupWindow:
    """Per-link receiver dedup state.

    Sequence numbers are per (src, dst) link and start at 1, so arrivals
    are near-contiguous: ``high_water`` is the largest seq below which
    everything was delivered, and ``ahead`` holds the (few) seqs that
    arrived out of order, keeping memory O(reorder window) per link.
    """

    __slots__ = ("high_water", "ahead")

    def __init__(self) -> None:
        self.high_water = 0
        self.ahead: set = set()

    def accept(self, seq: int) -> bool:
        """True if ``seq`` is new (first delivery), False on a duplicate."""
        if seq <= self.high_water or seq in self.ahead:
            return False
        self.ahead.add(seq)
        while self.high_water + 1 in self.ahead:
            self.high_water += 1
            self.ahead.remove(self.high_water)
        return True


class Network:
    """Message fabric over a :class:`~repro.sim.kernel.SimKernel`.

    Parameters
    ----------
    kernel:
        The event loop messages are scheduled on.
    transport:
        Latency/bandwidth model (defaults to the paper's ZeroMQ numbers).
    reliable:
        Enable sequenced, acknowledged, retransmitted delivery.  Off by
        default: the perfect fabric needs none of it, and benchmarks'
        traffic accounting stays byte-identical to the classic mode.
    retry_timeout, retry_backoff, retry_timeout_cap:
        Initial retransmit timeout (seconds), exponential backoff
        factor, and the timeout ceiling.
    max_retries:
        Retransmissions per message before the fabric gives up.  Giving
        up on an *attached* destination raises (silent loss would
        corrupt protocol accounting); give-up on a detached one is the
        normal fate of messages racing a graceful departure.
    """

    def __init__(
        self,
        kernel: "SimKernel",
        transport: Optional[TransportModel] = None,
        reliable: bool = False,
        retry_timeout: float = 5e-3,
        retry_backoff: float = 2.0,
        retry_timeout_cap: float = 0.1,
        max_retries: int = 30,
    ):
        self.kernel = kernel
        self.transport = transport if transport is not None else TransportModel.zeromq()
        self.stats = NetworkStats()
        self.reliable = bool(reliable)
        self.retry_timeout = float(retry_timeout)
        self.retry_backoff = float(retry_backoff)
        self.retry_timeout_cap = float(retry_timeout_cap)
        self.max_retries = int(max_retries)
        self.faults: Optional["FaultPlan"] = None
        self._entities: Dict[int, "Entity"] = {}
        self._next_address = 0
        self._taps: List[Callable[[Message], None]] = []
        # Observability plane: when a Tracer is attached every send /
        # delivery / drop / retransmit becomes a causality event.  None
        # (the default) keeps the hot paths at a single attribute check.
        self.tracer = None
        # Address -> entity name, kept past detach so trace events for
        # messages racing a departure still resolve to a name.
        self._names: Dict[int, str] = {}
        # Reliable-mode state: per-link sequence counters, in-flight
        # sends keyed by (src, dst, seq) — seqs are only unique per
        # link, so the key must carry both endpoints — and per-link
        # receiver dedup.
        self._next_seq: Dict[Tuple[int, int], int] = defaultdict(int)
        self._pending: Dict[Tuple[int, int, int], _Pending] = {}
        self._dedup: Dict[Tuple[int, int], _DedupWindow] = {}

    # -- membership --------------------------------------------------------

    def attach(self, entity: "Entity") -> int:
        """Register an entity and return its unique address."""
        address = self._next_address
        self._next_address += 1
        self._entities[address] = entity
        self._names[address] = getattr(entity, "name", f"addr-{address}")
        return address

    def name_of(self, address: int) -> str:
        """The entity name once attached at ``address`` (survives detach)."""
        return self._names.get(address, f"addr-{address}")

    def detach(self, address: int) -> None:
        """Remove an entity; later messages to it are counted as dropped."""
        self._entities.pop(address, None)

    def detach_abrupt(self, address: int) -> None:
        """Crash semantics: remove an entity *and* its transport state.

        A dead process cannot retransmit, so every unacknowledged
        reliable send it originated is abandoned immediately (copies
        already on the wire still arrive — the receiver-side guards
        must tolerate them).  Sends *to* the address are handled by the
        normal detached-destination abandon path as their timers fire.
        """
        self.detach(address)
        dead = [key for key in self._pending if key[0] == address]
        for key in dead:
            entry = self._pending.pop(key)
            entry.handle.cancel()
            self.stats.retries_abandoned += 1

    def entity_at(self, address: int) -> Optional["Entity"]:
        """The entity registered at ``address``, or None if detached."""
        return self._entities.get(address)

    def is_attached(self, address: int) -> bool:
        return address in self._entities

    @property
    def attached_count(self) -> int:
        return len(self._entities)

    # -- test/diagnostic hooks ----------------------------------------------

    def add_tap(self, tap: Callable[[Message], None]) -> None:
        """Register a callback observing every sent message (for tests).

        Taps see each *send* once; retransmissions and chaos-injected
        duplicate copies are transport artifacts and are not re-tapped.
        """
        self._taps.append(tap)

    def install_faults(self, plan: "FaultPlan", reliable: bool = True) -> None:
        """Put a :class:`~repro.net.faults.FaultPlan` under the fabric.

        By default this also switches on reliable delivery — a plan that
        drops messages against a fire-and-forget fabric deadlocks the
        protocols above, which is a finding about the test setup, not
        the system.  Pass ``reliable=False`` to study exactly that.
        """
        self.faults = plan
        if reliable:
            self.reliable = True

    # -- sending -------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Send a message; delivery is scheduled through the transport.

        The departure time respects the sender's busy horizon (a
        single-threaded entity cannot emit a response before finishing
        the compute charged for producing it).
        """
        if message.dst < 0:
            raise ValueError("message has no destination")
        message.send_time = self.kernel.now
        self.stats.record(message)
        for tap in self._taps:
            tap(message)
        tracer = self.tracer
        if tracer is not None and message.ptype != PacketType.DELIVERY_ACK:
            tracer.message_event(
                "send",
                message,
                self.name_of(message.src),
                self.name_of(message.src),
                self.name_of(message.dst),
            )
        if (
            self.reliable
            and message.ptype != PacketType.DELIVERY_ACK
            and message.seq is None
        ):
            link = (message.src, message.dst)
            self._next_seq[link] += 1
            message.seq = self._next_seq[link]
            key = (message.src, message.dst, message.seq)
            handle = self.kernel.schedule(self.retry_timeout, self._retransmit, key)
            self._pending[key] = _Pending(message, handle)
        self._transmit(message)

    def _transmit(self, message: Message) -> None:
        """Schedule one physical transmission (initial send or retry),
        subject to the installed fault plan."""
        extra_delays = [0.0]
        if self.faults is not None:
            extra_delays = self.faults.decide(message, self.kernel.now)
            if not extra_delays:
                cause = "partition" if self._partitioned(message) else "chaos"
                self.stats.record_drop(message, cause)
                tracer = self.tracer
                if tracer is not None:
                    tracer.message_event(
                        "drop",
                        message,
                        self.name_of(message.dst),
                        self.name_of(message.src),
                        self.name_of(message.dst),
                        cause=cause,
                    )
                return
            if len(extra_delays) > 1:
                self.stats.messages_duplicated += len(extra_delays) - 1
        sender = self._entities.get(message.src)
        departure = sender.available_at() if sender is not None else self.kernel.now
        same_node = self._same_node(message.src, message.dst)
        base_delay = self.transport.delay(message.size_bytes, same_node=same_node)
        for extra in extra_delays:
            self.kernel.schedule_at(departure + base_delay + extra, self._deliver, message)

    def _partitioned(self, message: Message) -> bool:
        return any(
            w.separates(message.src, message.dst, self.kernel.now)
            for w in self.faults.partitions
        )

    def _same_node(self, src: int, dst: int) -> bool:
        a = self._entities.get(src)
        b = self._entities.get(dst)
        if a is None or b is None:
            return False
        return getattr(a, "node", 0) == getattr(b, "node", 0)

    # -- delivery ------------------------------------------------------------

    def _deliver(self, message: Message) -> None:
        if message.ptype == PacketType.DELIVERY_ACK:
            # Transport acks terminate at the fabric: clear the pending
            # entry even if the original sender has since detached.
            self._on_delivery_ack(message)
            return
        entity = self._entities.get(message.dst)
        tracer = self.tracer
        if entity is None:
            self.stats.record_drop(message, "detached")
            if tracer is not None:
                tracer.message_event(
                    "drop",
                    message,
                    self.name_of(message.dst),
                    self.name_of(message.src),
                    self.name_of(message.dst),
                    cause="detached",
                )
            return
        if message.seq is not None:
            # Idempotent ack: every arrival is (re-)acknowledged — the
            # previous ack may itself have been lost — but only the
            # first is dispatched to the entity.
            self._send_ack(message)
            if not self._dedup.setdefault(
                (message.dst, message.src), _DedupWindow()
            ).accept(message.seq):
                self.stats.duplicates_suppressed += 1
                perf = getattr(entity, "perf", None)
                if perf is not None:
                    perf.add("transport_dups_suppressed")
                if tracer is not None:
                    tracer.message_event(
                        "dup_suppressed",
                        message,
                        entity.name,
                        self.name_of(message.src),
                        entity.name,
                    )
                return
        if tracer is not None:
            tracer.message_event(
                "deliver", message, entity.name, self.name_of(message.src), entity.name
            )
        entity.handle_message(message)

    # -- reliable-delivery plumbing -----------------------------------------

    def _send_ack(self, message: Message) -> None:
        ack = Message(
            ptype=PacketType.DELIVERY_ACK,
            payload=message.seq,
            src=message.dst,
            dst=message.src,
        )
        self.stats.acks_sent += 1
        self.send(ack)

    def _on_delivery_ack(self, ack: Message) -> None:
        # The ack travels receiver -> sender, so the acknowledged link
        # is (ack.dst, ack.src) from the original sender's view.
        entry = self._pending.pop((ack.dst, ack.src, int(ack.payload)), None)
        if entry is not None:
            entry.handle.cancel()

    def _retransmit(self, key: Tuple[int, int, int]) -> None:
        entry = self._pending.get(key)
        if entry is None:  # acked after the timer was queued
            return
        message = entry.message
        if not self.is_attached(message.dst):
            # The destination left for good (addresses are never
            # reused); the message died with it.  The delivery attempts
            # themselves already counted as detached drops.  A sender
            # that still cares gets the payload bounced back (e.g. an
            # EDGE_MIGRATE hop re-routes the edges to the new owner —
            # otherwise its ack ledger deadlocks and the edges are
            # lost with the leaver).
            del self._pending[key]
            self.stats.retries_abandoned += 1
            sender = self._entities.get(message.src)
            handler = getattr(sender, "on_reliable_abandoned", None)
            if handler is not None:
                self.kernel.schedule(0.0, lambda: handler(message))
            return
        if entry.attempt >= self.max_retries:
            from repro.sim.kernel import SimulationError

            raise SimulationError(
                f"reliable delivery failed: {message.ptype.name} "
                f"{message.src}->{message.dst} seq={message.seq} gave up "
                f"after {entry.attempt} retries"
            )
        entry.attempt += 1
        self.stats.messages_retried += 1
        self.stats.retries_by_type[message.ptype] += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.message_event(
                "retransmit",
                message,
                self.name_of(message.src),
                self.name_of(message.src),
                self.name_of(message.dst),
            )
        sender = self._entities.get(message.src)
        perf = getattr(sender, "perf", None)
        if perf is not None:
            perf.add("transport_retries")
        timeout = min(
            self.retry_timeout * self.retry_backoff**entry.attempt,
            self.retry_timeout_cap,
        )
        entry.handle = self.kernel.schedule(timeout, self._retransmit, key)
        self._transmit(message)

    @property
    def pending_reliable(self) -> int:
        """In-flight reliable sends awaiting a transport ack (tests)."""
        return len(self._pending)
