"""ZeroMQ-style socket patterns over the simulated fabric (§3.5).

ElGA uses three patterns, by latency class:

* **REQ/REP** for low-latency blocking exchanges (client queries,
  directory bootstrap): :class:`ReqRepSocket` enforces the
  one-outstanding-request-per-socket discipline of a ZeroMQ REQ socket
  and correlates replies by request id.
* **PUSH** for medium-latency non-blocking sends (graph updates, vertex
  messages): :class:`PushSocket`; when an explicit acknowledgement is
  required a second PUSH travels back, which protocol code implements by
  replying with the ``*_ACK`` packet type.
* **PUB/SUB** for high-latency broadcast (directory updates, barriers):
  :class:`PubSubSocket` filters on the single packet-type byte, exactly
  like ElGA's one-byte subscription prefixes.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Set

from repro.net.message import Message, PacketType

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network
    from repro.sim.entity import Entity

_request_ids = itertools.count(1)


class SocketError(RuntimeError):
    """Raised on socket-pattern violations (e.g. two outstanding REQs)."""


class PushSocket:
    """Non-blocking unidirectional sends (ZeroMQ PUSH).

    The sender continues executing while the message is in flight; there
    is no implicit acknowledgement.
    """

    def __init__(self, owner: "Entity"):
        self.owner = owner
        self.network: "Network" = owner.network

    def push(
        self,
        dst: int,
        ptype: PacketType,
        payload=None,
        size_bytes: int = -1,
        term: Optional[int] = None,
    ) -> None:
        """Send one message to ``dst`` without blocking."""
        message = Message(ptype=ptype, payload=payload, size_bytes=size_bytes, term=term)
        message.src = self.owner.address
        message.dst = dst
        self.network.send(message)


class ReqRepSocket:
    """Blocking request/response (ZeroMQ REQ side).

    A REQ socket may have only one request outstanding; issuing a second
    before the reply arrives raises :class:`SocketError`, matching
    ZeroMQ's strict send/recv alternation.  The response is delivered to
    the callback passed to :meth:`request`.
    """

    def __init__(self, owner: "Entity"):
        self.owner = owner
        self.network: "Network" = owner.network
        self._pending_id: Optional[int] = None
        self._callback: Optional[Callable[[Message], None]] = None

    @property
    def busy(self) -> bool:
        """Whether a request is outstanding."""
        return self._pending_id is not None

    def request(
        self,
        dst: int,
        ptype: PacketType,
        payload=None,
        on_reply: Optional[Callable[[Message], None]] = None,
    ) -> int:
        """Issue a request; ``on_reply`` fires when the reply arrives."""
        if self._pending_id is not None:
            raise SocketError("REQ socket already has an outstanding request")
        request_id = next(_request_ids)
        self._pending_id = request_id
        self._callback = on_reply
        message = Message(ptype=ptype, payload=payload, request_id=request_id)
        message.src = self.owner.address
        message.dst = dst
        self.network.send(message)
        return request_id

    def cancel(self) -> None:
        """Abandon the outstanding request (timeout path).

        The reply, if it ever arrives, will no longer match
        ``_pending_id`` and is dropped by :meth:`handle_reply` — the
        caller is free to issue a fresh request immediately.
        """
        self._pending_id = None
        self._callback = None

    def handle_reply(self, message: Message) -> bool:
        """Route an incoming reply to the pending callback.

        Returns ``True`` if the message matched the outstanding request.
        Stale replies (e.g. from a directory that left) are ignored and
        return ``False`` — ElGA must tolerate these.
        """
        if message.request_id is None or message.request_id != self._pending_id:
            return False
        self._pending_id = None
        callback, self._callback = self._callback, None
        if callback is not None:
            callback(message)
        return True

    @staticmethod
    def reply_to(network: "Network", request: Message, ptype: PacketType, payload=None) -> None:
        """REP side: answer ``request`` with a correlated reply."""
        response = request.reply(ptype, payload)
        response.src = request.dst
        response.dst = request.src
        network.send(response)


class PubSubSocket:
    """Broadcast with single-byte type filtering (ZeroMQ PUB/SUB).

    Subscribers register for specific :class:`PacketType` values; the
    publisher duplicates each publication to every matching subscriber,
    as ZeroMQ does internally.
    """

    def __init__(self, owner: "Entity"):
        self.owner = owner
        self.network: "Network" = owner.network
        self._subscribers: Dict[PacketType, Set[int]] = defaultdict(set)

    def subscribe(self, subscriber: int, ptypes: Iterable[PacketType]) -> None:
        """Register ``subscriber`` for the given packet types."""
        for ptype in ptypes:
            self._subscribers[PacketType(ptype)].add(subscriber)

    def unsubscribe(self, subscriber: int, ptypes: Optional[Iterable[PacketType]] = None) -> None:
        """Drop a subscriber from some (or all) packet types."""
        if ptypes is None:
            ptypes = list(self._subscribers)
        for ptype in ptypes:
            self._subscribers[PacketType(ptype)].discard(subscriber)

    def subscribers_of(self, ptype: PacketType) -> List[int]:
        """Current subscribers for one packet type (sorted, for determinism)."""
        return sorted(self._subscribers[ptype])

    def publish(
        self,
        ptype: PacketType,
        payload=None,
        size_bytes: int = -1,
        term: Optional[int] = None,
    ) -> int:
        """Send to every subscriber of ``ptype``; returns the fan-out."""
        targets = self.subscribers_of(ptype)
        for dst in targets:
            message = Message(ptype=ptype, payload=payload, size_bytes=size_bytes, term=term)
            message.src = self.owner.address
            message.dst = dst
            self.network.send(message)
        return len(targets)
