"""Observability: structured tracing, timelines, exposition, trace diff.

Four pieces (DESIGN.md §6f):

* :mod:`repro.obs.trace` — the :class:`~repro.obs.trace.Tracer`:
  zero-cost-when-disabled span/event recording on the simulated clock;
* :mod:`repro.obs.export` — JSONL dump and Chrome ``trace_event``
  export (Perfetto-viewable), with schema validation;
* :mod:`repro.obs.summary` — :class:`~repro.obs.summary.TraceSummary`
  per-superstep compute/wait/comms timelines;
* :mod:`repro.obs.prom` — Prometheus text exposition of cluster
  metrics, fabric stats, and cost-model charges;
* :mod:`repro.obs.diff` — first-divergent-message alignment of two
  traces (faulted vs. fault-free chaos runs).
"""

from repro.obs.diff import Divergence, diff_traces
from repro.obs.export import (
    read_jsonl,
    to_chrome_trace,
    to_jsonl_records,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.prom import (
    MetricFamily,
    engine_families,
    render,
    render_engine_metrics,
)
from repro.obs.summary import StepRow, TraceSummary
from repro.obs.trace import (
    DATA_PACKET_TYPES,
    Event,
    Span,
    Trace,
    Tracer,
    payload_digest,
)

__all__ = [
    "DATA_PACKET_TYPES",
    "Divergence",
    "Event",
    "MetricFamily",
    "Span",
    "StepRow",
    "Trace",
    "TraceSummary",
    "Tracer",
    "diff_traces",
    "engine_families",
    "payload_digest",
    "read_jsonl",
    "render",
    "render_engine_metrics",
    "to_chrome_trace",
    "to_jsonl_records",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
