"""Trace diffing: find the first divergent message between two runs.

The chaos harness's correctness claim is bit-equality of final values;
when that fails, this module turns "the dicts differ" into "diverged at
superstep 7: agent-3 received a different REPLICA_VALUE from agent-1".

Alignment works on **logical** data-plane messages: the ``send`` events
of :data:`~repro.obs.trace.DATA_PACKET_TYPES` packets, keyed by
``(round, step, src, dst, type, digest)``.  Transport artifacts —
retransmits, duplicate copies, drops, transport acks — never produce
``send`` events, and the payload digest canonicalizes away delivery
bookkeeping (the incarnation fence), so a faulted run that recovered
perfectly aligns with a fault-free one even though the wire saw very
different traffic.

If every data-plane message matches, the control-plane barrier sequence
(``barrier_complete`` events) is compared next, and ``None`` means the
traces agree at both levels.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.trace import Trace, Tracer

#: Logical-message identity within one round group.
_MsgKey = Tuple[str, str, str, str]  # (src, dst, type, digest)
#: Round group identity (ingest-phase traffic has no round/step).
_GroupKey = Tuple[int, int]


@dataclass
class Divergence:
    """The first point where two traces disagree."""

    kind: str                     # "message" | "payload" | "barrier" | "structure"
    step: Optional[int]
    round: Optional[int]
    detail: str
    left: Optional[dict] = field(default=None)
    right: Optional[dict] = field(default=None)

    def describe(self) -> str:
        where = []
        if self.step is not None and self.step >= 0:
            where.append(f"superstep {self.step}")
        if self.round is not None and self.round >= 0:
            where.append(f"round {self.round}")
        prefix = f"diverged at {', '.join(where)}: " if where else "diverged: "
        return prefix + self.detail


def _as_trace(trace: Union[Trace, Tracer]) -> Trace:
    return trace.trace() if isinstance(trace, Tracer) else trace


def _logical_messages(trace: Trace) -> Dict[_GroupKey, Counter]:
    """Data-plane sends grouped by (round, step) as key multisets."""
    groups: Dict[_GroupKey, Counter] = {}
    for event in trace.events:
        if event.cat != "message" or event.name != "send":
            continue
        args = event.args
        if "digest" not in args:
            continue  # not a data-plane send
        group = (int(args.get("round", -1)), int(args.get("step", -1)))
        key: _MsgKey = (
            str(args.get("src")),
            str(args.get("dst")),
            str(args.get("type")),
            str(args.get("digest")),
        )
        groups.setdefault(group, Counter())[key] += 1
    return groups


def _barrier_sequence(trace: Trace) -> List[Tuple[int, int]]:
    return [
        (int(e.args.get("round", -1)), int(e.args.get("step", -1)))
        for e in trace.events
        if e.name == "barrier_complete"
    ]


def _first_message_divergence(
    group: _GroupKey, left: Counter, right: Counter
) -> Divergence:
    round_id, step = group
    # Pair up (src, dst, type) message slots: a digest mismatch on the
    # same slot is a payload divergence (more precise than "missing +
    # extra"); an unpaired slot is a missing/extra message.
    left_only = left - right
    right_only = right - left

    def by_slot(counter: Counter) -> Dict[Tuple[str, str, str], List[str]]:
        slots: Dict[Tuple[str, str, str], List[str]] = {}
        for (src, dst, ptype, digest), n in sorted(counter.items()):
            slots.setdefault((src, dst, ptype), []).extend([digest] * n)
        return slots

    l_slots, r_slots = by_slot(left_only), by_slot(right_only)
    for slot in sorted(set(l_slots) & set(r_slots)):
        src, dst, ptype = slot
        return Divergence(
            kind="payload",
            step=step,
            round=round_id,
            detail=(
                f"{dst} received a different {ptype} from {src} "
                f"(digest {l_slots[slot][0]} vs {r_slots[slot][0]})"
            ),
            left={"src": src, "dst": dst, "type": ptype, "digest": l_slots[slot][0]},
            right={"src": src, "dst": dst, "type": ptype, "digest": r_slots[slot][0]},
        )
    for side, slots, other in (("left", l_slots, "right"), ("right", r_slots, "left")):
        for slot in sorted(slots):
            src, dst, ptype = slot
            return Divergence(
                kind="message",
                step=step,
                round=round_id,
                detail=(
                    f"{ptype} from {src} to {dst} present only in the "
                    f"{side} trace ({len(slots[slot])}x)"
                ),
                left={"src": src, "dst": dst, "type": ptype} if side == "left" else None,
                right={"src": src, "dst": dst, "type": ptype} if side == "right" else None,
            )
    raise AssertionError("groups differ but no divergent slot found")  # pragma: no cover


def diff_traces(
    left: Union[Trace, Tracer], right: Union[Trace, Tracer]
) -> Optional[Divergence]:
    """The first divergent logical message (or barrier) between traces.

    Returns ``None`` when the traces agree: identical data-plane message
    multisets per round and identical barrier sequences.  Groups are
    compared in (round, step) order so the report names the *earliest*
    divergence, which is where the causality chain starts.
    """
    left, right = _as_trace(left), _as_trace(right)
    l_groups, r_groups = _logical_messages(left), _logical_messages(right)
    for group in sorted(set(l_groups) | set(r_groups)):
        l_msgs = l_groups.get(group, Counter())
        r_msgs = r_groups.get(group, Counter())
        if l_msgs != r_msgs:
            return _first_message_divergence(group, l_msgs, r_msgs)
    l_barriers, r_barriers = _barrier_sequence(left), _barrier_sequence(right)
    for i, (lb, rb) in enumerate(zip(l_barriers, r_barriers)):
        if lb != rb:
            return Divergence(
                kind="barrier",
                step=lb[1],
                round=lb[0],
                detail=(
                    f"barrier sequence diverged at position {i}: "
                    f"left completed round {lb[0]} step {lb[1]}, "
                    f"right completed round {rb[0]} step {rb[1]}"
                ),
            )
    if len(l_barriers) != len(r_barriers):
        longer = "left" if len(l_barriers) > len(r_barriers) else "right"
        return Divergence(
            kind="structure",
            step=None,
            round=None,
            detail=(
                f"{longer} trace completed more barriers "
                f"({len(l_barriers)} vs {len(r_barriers)})"
            ),
        )
    return None
