"""Trace exporters: JSONL dump and Chrome ``trace_event`` format.

The Chrome format (one ``pid`` per entity, complete ``"X"`` events for
spans, instant ``"i"`` events, ``process_name`` metadata) opens directly
in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
Simulated seconds map to trace microseconds, so a 3 ms superstep reads
as 3 ms on the timeline.

JSONL is the round-trippable archival format: one record per line,
``{"kind": "span"|"event", ...}``; :func:`read_jsonl` reconstructs a
:class:`~repro.obs.trace.Trace` for offline summarizing or diffing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

import numpy as np

from repro.obs.trace import Event, Span, Trace, Tracer

_TraceLike = Union[Trace, Tracer]


def _as_trace(trace: _TraceLike) -> Trace:
    return trace.trace() if isinstance(trace, Tracer) else trace


def _jsonify(value: Any) -> Any:
    """Coerce numpy scalars/arrays and sets into JSON-safe values."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonify(v) for v in value)
    return value


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def to_jsonl_records(trace: _TraceLike) -> List[Dict[str, Any]]:
    """The trace as a list of plain-dict records (one per line)."""
    trace = _as_trace(trace)
    records: List[Dict[str, Any]] = []
    for s in trace.spans:
        records.append(
            {
                "kind": "span",
                "entity": s.entity,
                "name": s.name,
                "cat": s.cat,
                "start": s.start,
                "end": s.end,
                "args": _jsonify(s.args),
            }
        )
    for e in trace.events:
        records.append(
            {
                "kind": "event",
                "entity": e.entity,
                "name": e.name,
                "cat": e.cat,
                "time": e.time,
                "args": _jsonify(e.args),
            }
        )
    return records


def write_jsonl(trace: _TraceLike, path: str) -> int:
    """Dump the trace as JSON Lines; returns the record count."""
    records = to_jsonl_records(trace)
    with open(path, "w") as f:
        for record in records:
            f.write(json.dumps(record))
            f.write("\n")
    return len(records)


def read_jsonl(path: str) -> Trace:
    """Reconstruct a :class:`Trace` from a JSONL dump."""
    trace = Trace()
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "span":
                trace.spans.append(
                    Span(
                        entity=record["entity"],
                        name=record["name"],
                        cat=record["cat"],
                        start=float(record["start"]),
                        end=float(record["end"]),
                        args=record.get("args", {}),
                    )
                )
            elif record.get("kind") == "event":
                trace.events.append(
                    Event(
                        entity=record["entity"],
                        name=record["name"],
                        cat=record["cat"],
                        time=float(record["time"]),
                        args=record.get("args", {}),
                    )
                )
            else:
                raise ValueError(f"unknown trace record kind: {record.get('kind')!r}")
    return trace


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

_SECONDS_TO_US = 1e6


def to_chrome_trace(trace: _TraceLike) -> Dict[str, Any]:
    """The trace in Chrome ``trace_event`` JSON object format.

    One ``pid`` per entity (named via ``process_name`` metadata), spans
    as complete ``"X"`` events, instants as ``"i"`` with process scope.
    """
    trace = _as_trace(trace)
    pids = {name: i + 1 for i, name in enumerate(trace.entities())}
    events: List[Dict[str, Any]] = []
    for name, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    for s in trace.spans:
        events.append(
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "pid": pids[s.entity],
                "tid": 0,
                "ts": s.start * _SECONDS_TO_US,
                "dur": max(0.0, s.duration) * _SECONDS_TO_US,
                "args": _jsonify(s.args),
            }
        )
    for e in trace.events:
        events.append(
            {
                "name": e.name,
                "cat": e.cat,
                "ph": "i",
                "pid": pids[e.entity],
                "tid": 0,
                "ts": e.time * _SECONDS_TO_US,
                "s": "p",
                "args": _jsonify(e.args),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: _TraceLike, path: str) -> Dict[str, Any]:
    """Write the Chrome-format trace to ``path``; returns the object."""
    obj = to_chrome_trace(trace)
    validate_chrome_trace(obj)
    with open(path, "w") as f:
        json.dump(obj, f)
    return obj


def validate_chrome_trace(obj: Any) -> None:
    """Check ``obj`` against the trace_event JSON schema; raise ValueError.

    Validates the subset of the spec the exporter emits — the structure
    Perfetto actually requires to load the file: a ``traceEvents`` list
    whose entries carry ``name``/``ph``/``pid``, numeric non-negative
    timestamps on timed phases, a duration on complete events, and
    JSON-serializable args throughout.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace must be a JSON object, got {type(obj).__name__}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace object must carry a 'traceEvents' list")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where} is not an object")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(f"{where} needs a non-empty string 'name'")
        ph = ev.get("ph")
        if ph not in ("X", "i", "I", "M", "B", "E", "C"):
            raise ValueError(f"{where} has unknown phase {ph!r}")
        if not isinstance(ev.get("pid"), int):
            raise ValueError(f"{where} needs an integer 'pid'")
        if ph in ("X", "i", "I", "B", "E", "C"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"{where} needs a non-negative numeric 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where} complete event needs non-negative 'dur'")
        if "args" in ev and not isinstance(ev["args"], dict):
            raise ValueError(f"{where} 'args' must be an object")
    try:
        json.dumps(obj)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"trace is not JSON-serializable: {exc}") from exc
