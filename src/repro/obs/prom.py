"""Prometheus text exposition for cluster metrics.

Renders the in-protocol metric view (§3.4.3's ``METRIC_REPORT`` path via
``combine_metrics``), the fabric's :class:`NetworkStats`, and cost-model
charges (per-entity charged simulated seconds) as labeled counter/gauge
lines in the Prometheus text format — ``# HELP`` / ``# TYPE`` headers,
``metric{label="value"} number`` samples.

No HTTP server is simulated: the exposition *text* is the contract (a
real deployment would serve it from ``/metrics``), and it is what the
CLI's ``python -m repro metrics`` prints.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


@dataclass
class MetricFamily:
    """One exposition family: a name, type, help, and labeled samples."""

    name: str
    kind: str  # "counter" | "gauge"
    help: str
    samples: List[Tuple[Dict[str, str], float]] = field(default_factory=list)

    def add(self, labels: Dict[str, str], value: float) -> "MetricFamily":
        self.samples.append((labels, float(value)))
        return self


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render(families: List[MetricFamily]) -> str:
    """Render families as Prometheus exposition text."""
    lines: List[str] = []
    for fam in families:
        if not _NAME_RE.match(fam.name):
            raise ValueError(f"invalid metric name {fam.name!r}")
        if fam.kind not in ("counter", "gauge"):
            raise ValueError(f"invalid metric type {fam.kind!r} for {fam.name}")
        lines.append(f"# HELP {fam.name} {fam.help}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for labels, value in fam.samples:
            for key in labels:
                if not _LABEL_RE.match(key):
                    raise ValueError(f"invalid label name {key!r} on {fam.name}")
            if labels:
                body = ",".join(
                    f'{k}="{_escape_label_value(str(v))}"'
                    for k, v in sorted(labels.items())
                )
                lines.append(f"{fam.name}{{{body}}} {_format_value(value)}")
            else:
                lines.append(f"{fam.name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


# ---------------------------------------------------------------------------
# family builders
# ---------------------------------------------------------------------------


def agent_metric_families(per_agent: Dict[int, dict]) -> List[MetricFamily]:
    """Families from per-agent metric snapshots (one family per counter,
    one labeled sample per agent), matching ``combine_metrics`` totals
    by construction (Prometheus sums label values)."""
    keys = sorted({key for snap in per_agent.values() for key in snap})
    families = []
    for key in keys:
        fam = MetricFamily(
            name=f"elga_{key}_total",
            kind="counter",
            help=f"Agent counter {key} (METRIC_REPORT snapshot).",
        )
        for agent_id in sorted(per_agent):
            fam.add({"agent": str(agent_id)}, per_agent[agent_id].get(key, 0))
        families.append(fam)
    return families


def network_families(stats) -> List[MetricFamily]:
    """Families from one fabric's :class:`NetworkStats`."""
    families = [
        MetricFamily(
            "elga_net_messages_total", "counter", "Messages sent on the fabric."
        ).add({}, stats.messages_sent),
        MetricFamily(
            "elga_net_bytes_total", "counter", "Bytes sent on the fabric."
        ).add({}, stats.bytes_sent),
    ]
    by_type = MetricFamily(
        "elga_net_messages_by_type_total", "counter", "Messages sent per packet type."
    )
    by_type_bytes = MetricFamily(
        "elga_net_bytes_by_type_total", "counter", "Bytes sent per packet type."
    )
    for ptype in sorted(stats.by_type_count, key=int):
        by_type.add({"type": ptype.name}, stats.by_type_count[ptype])
        by_type_bytes.add({"type": ptype.name}, stats.by_type_bytes[ptype])
    families += [by_type, by_type_bytes]
    drops = MetricFamily(
        "elga_net_dropped_total", "counter", "Deliveries dropped, by cause."
    )
    drops.add({"cause": "detached"}, stats.drops_detached)
    drops.add({"cause": "chaos"}, stats.drops_chaos)
    drops.add({"cause": "partition"}, stats.drops_partition)
    families.append(drops)
    scalars = [
        ("elga_net_retries_total", "Reliable-transport retransmissions.",
         stats.messages_retried),
        ("elga_net_retries_abandoned_total",
         "Reliable sends abandoned (detached destination).",
         stats.retries_abandoned),
        ("elga_net_duplicates_suppressed_total",
         "Duplicate deliveries suppressed by receiver dedup.",
         stats.duplicates_suppressed),
        ("elga_net_acks_total", "Transport DELIVERY_ACKs sent.", stats.acks_sent),
        ("elga_net_heartbeats_missed_total",
         "Heartbeats found overdue by the failure detector.",
         stats.heartbeats_missed),
        ("elga_net_lease_expirations_total",
         "Liveness leases that expired into suspicion.",
         stats.lease_expirations),
        ("elga_net_lead_elections_total",
         "Lead-directory elections (control-plane failovers).",
         stats.lead_elections),
        ("elga_net_stale_term_drops_total",
         "Control packets dropped for carrying a superseded term.",
         stats.stale_term_drops),
    ]
    for name, help_text, value in scalars:
        families.append(MetricFamily(name, "counter", help_text).add({}, value))
    return families


def charge_families(entities) -> List[MetricFamily]:
    """Cost-model charges: simulated seconds billed per entity."""
    fam = MetricFamily(
        "elga_charged_seconds_total",
        "counter",
        "Simulated compute seconds charged through the cost model.",
    )
    for entity in entities:
        charged = getattr(entity, "charged_seconds", None)
        if charged:
            fam.add({"entity": entity.name}, charged)
    return [fam]


def serving_families(clients) -> List[MetricFamily]:
    """Serving-plane families: one per proxy counter, labeled by client.

    Counter names come from :meth:`ClientProxy.serving_metrics`
    (``client_*`` and ``serving_cache_*`` keys); ``client_inflight`` is
    the only gauge — everything else is monotone.
    """
    clients = list(clients)
    keys = sorted({key for c in clients for key in c.serving_metrics()})
    families = []
    for key in keys:
        if key == "client_inflight":
            fam = MetricFamily(
                "elga_client_inflight", "gauge", "Open queries held per proxy."
            )
        else:
            fam = MetricFamily(
                name=f"elga_{key}_total",
                kind="counter",
                help=f"Serving-plane counter {key}.",
            )
        for client in clients:
            fam.add(
                {"client": str(client.client_id)},
                client.serving_metrics().get(key, 0),
            )
        families.append(fam)
    return families


def engine_families(engine) -> List[MetricFamily]:
    """The full exposition for one :class:`~repro.core.engine.ElGA`.

    Collects metrics through the in-protocol path (METRIC_REPORT →
    directory stores), so calling this settles the simulator.
    """
    cluster = engine.cluster
    per_agent = cluster.collect_metrics()
    families = [
        MetricFamily(
            "elga_agents", "gauge", "Live agents in the cluster."
        ).add({}, len(cluster.agents)),
        MetricFamily(
            "elga_directory_version", "gauge", "Lead directory state version."
        ).add({}, cluster.directory_version()),
        MetricFamily(
            "elga_control_term", "gauge",
            "Control-plane term of the current lead directory."
        ).add({}, cluster.lead.term),
        MetricFamily(
            "elga_sim_seconds", "gauge", "Current simulated time."
        ).add({}, cluster.kernel.now),
    ]
    families += agent_metric_families(per_agent)
    families += network_families(cluster.network.stats)
    if cluster.clients:
        families += serving_families(cluster.clients)
    participants = [cluster.agents[k] for k in sorted(cluster.agents)]
    participants += list(cluster.directories) + list(cluster.streamers)
    participants += list(cluster.clients)
    families += charge_families(participants)
    return families


def render_engine_metrics(engine) -> str:
    """Prometheus exposition text for one engine (see module docs)."""
    return render(engine_families(engine))
