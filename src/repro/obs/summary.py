"""Per-superstep timelines aggregated from a trace.

:class:`TraceSummary` folds the raw spans/events into one row per
barrier round: how long the round took, how much of it was agent
compute vs. barrier wait, which agent was the straggler, and how much
data-plane traffic (packets/bytes) the round pushed.  This is the
paper's Figure 8–11 per-iteration view, derived from the trace instead
of bespoke counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.obs.trace import Trace, Tracer


@dataclass
class StepRow:
    """Aggregates for one barrier round."""

    round: int
    step: int
    phase: str
    duration: float                 # barrier-to-barrier simulated seconds
    compute: float = 0.0            # summed agent compute-span seconds
    wait: float = 0.0               # summed agent barrier-wait seconds
    comms_packets: int = 0          # data-plane packets sent this round
    comms_bytes: int = 0
    frontier: int = 0               # vertices activated this round (all agents)
    straggler: Optional[str] = None   # agent with the largest compute share
    straggler_compute: float = 0.0
    per_agent_compute: Dict[str, float] = field(default_factory=dict)
    per_agent_wait: Dict[str, float] = field(default_factory=dict)


class TraceSummary:
    """Per-superstep compute/wait/comms breakdown of one trace.

    Round boundaries come from the run controller's ``round:*`` spans;
    agent compute comes from ``cat == "compute"`` spans and wait from
    ``cat == "barrier"`` spans (both carry their round in ``args``);
    traffic comes from data-plane ``send`` events whose payloads carry
    the round.
    """

    def __init__(
        self, rows: List[StepRow], serving_events: Optional[Dict[str, int]] = None
    ):
        self.rows = rows
        #: Serving-plane instants (query_shed, snapshot_retry,
        #: result_notice, ...) counted by name — tail-latency incidents
        #: deserve a line next to the compute timeline.
        self.serving_events: Dict[str, int] = serving_events or {}

    @classmethod
    def from_trace(cls, trace: Union[Trace, Tracer]) -> "TraceSummary":
        if isinstance(trace, Tracer):
            trace = trace.trace()
        rows: Dict[int, StepRow] = {}
        # Round skeleton from the controller; agents fill the breakdown.
        for span in trace.spans:
            if span.cat != "round":
                continue
            round_id = int(span.args.get("round", -1))
            rows[round_id] = StepRow(
                round=round_id,
                step=int(span.args.get("step", -1)),
                phase=str(span.args.get("phase", span.name)),
                duration=span.duration,
            )

        def row_for(round_id: int) -> StepRow:
            if round_id not in rows:
                # Trace without controller spans (e.g. agent-only
                # capture): synthesize the row from what we have.
                rows[round_id] = StepRow(round=round_id, step=-1, phase="?", duration=0.0)
            return rows[round_id]

        for span in trace.spans:
            round_id = span.args.get("round")
            if round_id is None:
                continue
            round_id = int(round_id)
            if span.cat == "compute":
                row = row_for(round_id)
                row.compute += span.duration
                row.frontier += int(span.args.get("frontier", 0))
                row.per_agent_compute[span.entity] = (
                    row.per_agent_compute.get(span.entity, 0.0) + span.duration
                )
                if span.args.get("step") is not None and row.step < 0:
                    row.step = int(span.args["step"])
            elif span.cat == "barrier":
                row = row_for(round_id)
                row.wait += span.duration
                row.per_agent_wait[span.entity] = (
                    row.per_agent_wait.get(span.entity, 0.0) + span.duration
                )
                # A synthesized row (no controller span — e.g. the wait
                # closed by the halt broadcast) can still be labeled
                # from the wait span's own args.
                if row.phase == "?" and span.args.get("phase"):
                    row.phase = str(span.args["phase"])
                if span.args.get("step") is not None and row.step < 0:
                    row.step = int(span.args["step"])
        serving_events: Dict[str, int] = {}
        for event in trace.events:
            if event.cat == "serving":
                serving_events[event.name] = serving_events.get(event.name, 0) + 1
                continue
            if event.cat != "message" or event.name != "send":
                continue
            round_id = event.args.get("round")
            if round_id is None:
                continue
            row = row_for(int(round_id))
            row.comms_packets += 1
            row.comms_bytes += int(event.args.get("bytes", 0))
        for row in rows.values():
            if row.per_agent_compute:
                straggler = max(
                    sorted(row.per_agent_compute), key=row.per_agent_compute.get
                )
                row.straggler = straggler
                row.straggler_compute = row.per_agent_compute[straggler]
        return cls([rows[k] for k in sorted(rows)], serving_events)

    # -- views -------------------------------------------------------------

    def steps(self) -> List[StepRow]:
        """Rows for plain compute supersteps only."""
        return [r for r in self.rows if r.phase in ("init", "step", "delta_init", "delta_step")]

    def total_compute(self) -> float:
        return sum(r.compute for r in self.rows)

    def per_agent_compute_totals(self) -> Dict[str, float]:
        """Summed compute seconds per agent over plain supersteps.

        The rebalance planner's load signal: who actually burned the
        cycles, not who holds the edges.  Keys are trace entity names
        (``agent-3``).
        """
        totals: Dict[str, float] = {}
        for row in self.steps():
            for agent, seconds in row.per_agent_compute.items():
                totals[agent] = totals.get(agent, 0.0) + seconds
        return totals

    def straggler_excess(self) -> float:
        """Summed straggler excess over plain supersteps, seconds.

        Per round: max per-agent compute minus the mean — the time
        every other agent idles at the barrier waiting for the
        straggler.  Zero is perfect balance; the rebalance benchmark
        gates on reducing this.
        """
        total = 0.0
        for row in self.steps():
            if not row.per_agent_compute:
                continue
            values = list(row.per_agent_compute.values())
            total += max(values) - sum(values) / len(values)
        return total

    def total_wait(self) -> float:
        return sum(r.wait for r in self.rows)

    def total_bytes(self) -> int:
        return sum(r.comms_bytes for r in self.rows)

    def format(self) -> str:
        """A fixed-width text table of the per-round timeline."""
        header = (
            f"{'round':>5} {'step':>4} {'phase':<10} {'dur_ms':>9} "
            f"{'compute_ms':>11} {'wait_ms':>9} {'front':>7} {'pkts':>6} "
            f"{'bytes':>10} straggler"
        )
        lines = [header, "-" * len(header)]
        for r in self.rows:
            straggler = (
                f"{r.straggler} ({r.straggler_compute * 1e3:.3f} ms)"
                if r.straggler
                else "-"
            )
            lines.append(
                f"{r.round:>5} {r.step:>4} {r.phase:<10} {r.duration * 1e3:>9.3f} "
                f"{r.compute * 1e3:>11.3f} {r.wait * 1e3:>9.3f} "
                f"{r.frontier:>7} {r.comms_packets:>6} {r.comms_bytes:>10} {straggler}"
            )
        if self.serving_events:
            counts = ", ".join(
                f"{name}={self.serving_events[name]}"
                for name in sorted(self.serving_events)
            )
            lines.append(f"serving: {counts}")
        return "\n".join(lines)
