"""Structured tracing keyed to the simulated clock.

The :class:`Tracer` records two kinds of things:

* **spans** — intervals of simulated time attributed to one entity
  (superstep compute, data-plane flush, barrier wait, checkpoint,
  recovery, whole runs).  Because simulated time never advances *inside*
  a callback, compute spans are the entity's charged busy window:
  instrument sites capture ``entity.available_at()`` before and after
  the work, which is exactly the interval the cost model billed.
* **events** — instantaneous points: message causality (send, deliver,
  retransmit, drop, duplicate suppressed, each tagged with packet type,
  link, and transport seq) and control-plane moments (barrier complete,
  suspicion, eviction, recovery broadcast).

Hot paths pay a single ``if tracer is not None`` attribute check when
tracing is disabled (the fabric's ``tracer`` attribute stays ``None``),
so the data plane keeps its throughput; when enabled, recording is an
append of one small object.

Data-plane sends additionally carry a content digest
(:func:`payload_digest`) over the *algorithmic* payload fields, so two
traces can be aligned message-by-message (:mod:`repro.obs.diff`)
ignoring transport artifacts and bookkeeping like incarnation fences.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

import numpy as np

from repro.net.message import PacketType

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message
    from repro.sim.kernel import SimKernel

#: Packet types whose payloads are algorithm content (digested and
#: aligned by the trace diff); everything else is control or transport.
DATA_PACKET_TYPES = frozenset(
    {PacketType.VERTEX_MSG, PacketType.REPLICA_SYNC, PacketType.REPLICA_VALUE}
)

#: Packet types belonging to the query-serving plane (client proxies).
#: Kept out of :data:`DATA_PACKET_TYPES` — queries are read-only and
#: must not perturb the run's algorithm-content digests.
SERVING_PACKET_TYPES = frozenset(
    {PacketType.CLIENT_QUERY, PacketType.CLIENT_REPLY, PacketType.RESULT_NOTICE}
)

#: Payload keys that are delivery bookkeeping, not algorithm content
#: (the incarnation fence differs between a recovered and a never-
#: crashed run even when the values are bit-identical).
_DIGEST_EXCLUDED_KEYS = frozenset({"inc"})


@dataclass
class Span:
    """One closed interval of simulated time attributed to an entity."""

    entity: str
    name: str
    cat: str
    start: float
    end: float
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Event:
    """One instantaneous occurrence at simulated time ``time``."""

    entity: str
    name: str
    cat: str
    time: float
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Trace:
    """An immutable-by-convention snapshot of recorded spans/events."""

    spans: List[Span] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)

    def entities(self) -> List[str]:
        """Every entity appearing in the trace, sorted."""
        names = {s.entity for s in self.spans} | {e.entity for e in self.events}
        return sorted(names)


def _digest_update(h, value) -> None:
    if isinstance(value, np.ndarray):
        h.update(b"a")
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, dict):
        h.update(b"d")
        for key in sorted(value):
            if key in _DIGEST_EXCLUDED_KEYS:
                continue
            h.update(str(key).encode())
            _digest_update(h, value[key])
    elif isinstance(value, (list, tuple)):
        h.update(b"l")
        for item in value:
            _digest_update(h, item)
    elif isinstance(value, (set, frozenset)):
        h.update(b"s")
        for item in sorted(value):
            _digest_update(h, item)
    else:
        h.update(repr(value).encode())


def payload_digest(payload) -> str:
    """A stable content hash of a data-plane payload.

    Bit-identical payloads hash identically regardless of which run (or
    engine) produced them; dict iteration order and the incarnation
    fence are canonicalized away.
    """
    h = hashlib.blake2b(digest_size=8)
    _digest_update(h, payload)
    return h.hexdigest()


class Tracer:
    """Span/event recorder bound to one simulation kernel.

    Instrument sites never construct one of these — they test the
    fabric's ``tracer`` attribute for ``None`` and call through, so the
    disabled cost is one attribute load per site.
    """

    __slots__ = ("kernel", "spans", "events")

    def __init__(self, kernel: "SimKernel"):
        self.kernel = kernel
        self.spans: List[Span] = []
        self.events: List[Event] = []

    # -- recording ---------------------------------------------------------

    def complete(
        self,
        entity: str,
        name: str,
        cat: str,
        start: float,
        end: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a closed span (start/end in simulated seconds)."""
        self.spans.append(Span(entity, name, cat, start, end, args or {}))

    def instant(
        self,
        entity: str,
        name: str,
        cat: str,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record an instantaneous event at the current simulated time."""
        self.events.append(Event(entity, name, cat, self.kernel.now, args or {}))

    def message_event(
        self,
        kind: str,
        message: "Message",
        entity: str,
        src_name: str,
        dst_name: str,
        cause: Optional[str] = None,
    ) -> None:
        """Record one message-causality event (send/deliver/drop/...).

        ``entity`` is whose timeline the event lands on (sender for
        sends, receiver for deliveries and drops); the link is always
        recorded as ``src -> dst`` names plus raw addresses and the
        transport seq, so causality chains survive entity churn.
        """
        args: Dict[str, Any] = {
            "type": message.ptype.name,
            "src": src_name,
            "dst": dst_name,
            "src_addr": message.src,
            "dst_addr": message.dst,
            "bytes": message.size_bytes,
        }
        if message.seq is not None:
            args["seq"] = message.seq
        if cause is not None:
            args["cause"] = cause
        payload = message.payload
        if message.ptype in DATA_PACKET_TYPES and isinstance(payload, dict):
            if "step" in payload:
                args["step"] = int(payload["step"])
            if "round" in payload:
                args["round"] = int(payload["round"])
            if kind == "send":
                args["digest"] = payload_digest(payload)
        self.events.append(
            Event(entity, kind, "message", self.kernel.now, args)
        )

    # -- access ------------------------------------------------------------

    def trace(self) -> Trace:
        """A snapshot :class:`Trace` of everything recorded so far."""
        return Trace(spans=list(self.spans), events=list(self.events))

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)
