"""Edge partitioning (§3.4.1 — the heart of ElGA's load balancing).

:class:`~repro.partition.placer.EdgePlacer` is the paper's key
contribution: given only the directory broadcast (agent list +
CountMinSketch), any participant can determine which Agent owns any
edge, in O(log P) time and O(P + d·w) memory, with high-degree vertices
split across multiple Agents.  The module also ships the baseline
partitioners the evaluation compares against (Blogel's vertex hash,
Blogel-Vor's Voronoi, GraphX's vertex-cut strategies) and the load
balance metrics behind Figures 5 and 6.
"""

from repro.partition.balance import edge_loads, imbalance_factor, load_distribution
from repro.partition.baselines import (
    canonical_random_vertex_cut,
    edge_partition_2d,
    hash_vertex_partition,
    random_vertex_cut,
    voronoi_partition,
)
from repro.partition.cache import PlacementCache
from repro.partition.placer import EdgePlacer

__all__ = [
    "EdgePlacer",
    "PlacementCache",
    "canonical_random_vertex_cut",
    "edge_loads",
    "edge_partition_2d",
    "hash_vertex_partition",
    "imbalance_factor",
    "load_distribution",
    "random_vertex_cut",
    "voronoi_partition",
]
