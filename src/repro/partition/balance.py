"""Load-balance metrics (Figures 5b and 6).

The evaluation characterizes placement quality by the distribution of
edges per Agent: Figure 5b plots the cumulative distribution for each
hash function (ideal is a vertical line at the mean), Figure 6 the
distribution as the virtual-agent count varies.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def edge_loads(owners: np.ndarray, n_agents: int) -> np.ndarray:
    """Edges assigned to each agent id in ``0..n_agents-1``."""
    owners = np.asarray(owners, dtype=np.int64)
    if owners.size and (owners.min() < 0 or owners.max() >= n_agents):
        raise ValueError("owner id out of range")
    return np.bincount(owners, minlength=n_agents)


def imbalance_factor(loads: np.ndarray) -> float:
    """max/mean load — 1.0 is perfect balance.

    This is the standard imbalance metric: the slowest participant in a
    bulk-synchronous step is the most loaded one, so per-superstep
    runtime scales with this factor.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        return 1.0  # vacuously balanced (and np.mean([]) is nan)
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)


def load_distribution(loads: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted normalized loads, cumulative fraction) — Figure 5b/6 axes.

    Loads are normalized by the mean so an ideal placement is a single
    vertical step at 1.0.
    """
    loads = np.sort(np.asarray(loads, dtype=np.float64))
    mean = loads.mean() if loads.size else 1.0
    normalized = loads / (mean if mean else 1.0)
    cumulative = np.arange(1, len(loads) + 1) / max(len(loads), 1)
    return normalized, cumulative


def balance_summary(loads: np.ndarray) -> Dict[str, float]:
    """Compact summary used in benchmark tables."""
    loads = np.asarray(loads, dtype=np.float64)
    mean = float(loads.mean()) if loads.size else 0.0
    return {
        "mean": mean,
        "max": float(loads.max()) if loads.size else 0.0,
        "min": float(loads.min()) if loads.size else 0.0,
        "imbalance": imbalance_factor(loads),
        "cv": float(loads.std() / mean) if mean else 0.0,
    }
