"""Baseline partitioning strategies used by the compared systems (§4.2).

* Blogel partitions *vertices* by hash ("simple vertex partitioning",
  the competitive variant) — :func:`hash_vertex_partition`.
* Blogel-Vor uses Voronoi growth from sampled seeds — the paper (and
  [7]) found it uncompetitive; :func:`voronoi_partition` reproduces it
  so Figure 11/12's omission can be justified by measurement.
* GraphX partitions *edges* with vertex-cut strategies:
  :func:`random_vertex_cut`, :func:`canonical_random_vertex_cut`, and
  :func:`edge_partition_2d` (its three main built-ins, §4.2).

All return an int64 owner id per edge so they share the balance metrics
with ElGA's placer.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

import numpy as np

from repro.hashing.hashes import wang64

U64 = np.uint64


def hash_vertex_partition(
    us: np.ndarray, vs: np.ndarray, n_parts: int, hash_fn: Callable = wang64
) -> np.ndarray:
    """Blogel's vertex partitioning: an edge lives with its source."""
    us = np.asarray(us, dtype=np.int64)
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    return (np.asarray(hash_fn(us.astype(np.uint64))) % U64(n_parts)).astype(np.int64)


def random_vertex_cut(
    us: np.ndarray, vs: np.ndarray, n_parts: int, hash_fn: Callable = wang64
) -> np.ndarray:
    """GraphX RandomVertexCut: hash the ordered (src, dst) pair."""
    us = np.asarray(us, dtype=np.uint64)
    vs = np.asarray(vs, dtype=np.uint64)
    with np.errstate(over="ignore"):
        key = us * U64(0x100000001B3) ^ vs
    return (np.asarray(hash_fn(key)) % U64(n_parts)).astype(np.int64)


def canonical_random_vertex_cut(
    us: np.ndarray, vs: np.ndarray, n_parts: int, hash_fn: Callable = wang64
) -> np.ndarray:
    """GraphX CanonicalRandomVertexCut: hash the unordered pair, so both
    directions of an edge co-locate."""
    us = np.asarray(us, dtype=np.uint64)
    vs = np.asarray(vs, dtype=np.uint64)
    lo = np.minimum(us, vs)
    hi = np.maximum(us, vs)
    with np.errstate(over="ignore"):
        key = lo * U64(0x100000001B3) ^ hi
    return (np.asarray(hash_fn(key)) % U64(n_parts)).astype(np.int64)


def edge_partition_2d(
    us: np.ndarray, vs: np.ndarray, n_parts: int, hash_fn: Callable = wang64
) -> np.ndarray:
    """GraphX EdgePartition2D: a √P × √P grid over (src, dst) hashes,
    bounding vertex replication at 2√P."""
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    side = int(np.ceil(np.sqrt(n_parts)))
    rows = np.asarray(hash_fn(us.astype(np.uint64))) % U64(side)
    cols = np.asarray(hash_fn(vs.astype(np.uint64))) % U64(side)
    return ((rows * U64(side) + cols) % U64(n_parts)).astype(np.int64)


def voronoi_partition(
    us: np.ndarray,
    vs: np.ndarray,
    n: int,
    n_parts: int,
    rng: np.random.Generator,
    seed_fraction: float = 0.01,
) -> np.ndarray:
    """Blogel-Vor: multi-source BFS Voronoi growth (block partitioning).

    Seeds are sampled uniformly and grown breadth-first over the
    undirected graph; every vertex joins its nearest seed's block, and
    blocks are assigned round-robin to partitions.  Vertices unreached
    by any seed fall back to hashing.  An edge lives with its source's
    partition.  Skewed graphs make the blocks wildly uneven — the
    reason Blogel-Vor loses (§4.2).
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if not 0 < seed_fraction <= 1:
        raise ValueError(f"seed_fraction must be in (0, 1], got {seed_fraction}")
    n_seeds = max(n_parts, int(n * seed_fraction))
    seeds = rng.choice(n, size=min(n_seeds, n), replace=False)

    # Undirected adjacency in CSR form for the BFS.
    all_u = np.concatenate([us, vs])
    all_v = np.concatenate([vs, us])
    order = np.argsort(all_u, kind="stable")
    sorted_u = all_u[order]
    sorted_v = all_v[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(sorted_u, minlength=n), out=indptr[1:])

    block = np.full(n, -1, dtype=np.int64)
    frontier = deque()
    for i, s in enumerate(seeds):
        if block[s] == -1:
            block[s] = i
            frontier.append(int(s))
    while frontier:
        vertex = frontier.popleft()
        b = block[vertex]
        for nbr in sorted_v[indptr[vertex] : indptr[vertex + 1]]:
            if block[nbr] == -1:
                block[nbr] = b
                frontier.append(int(nbr))
    unreached = block == -1
    if unreached.any():
        ids = np.nonzero(unreached)[0]
        block[ids] = np.asarray(wang64(ids.astype(np.uint64))) % U64(len(seeds))
    vertex_part = (block % n_parts).astype(np.int64)
    return vertex_part[us]
