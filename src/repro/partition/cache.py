"""Epoch-versioned placement cache — the placement fast path.

Placement is a pure function of the directory broadcast state (ring
membership + degree sketch + split registry), so between directory
epochs every sketch query and ring search is recomputable-but-redundant
work.  :class:`PlacementCache` memoizes, per epoch token:

* per-vertex replication factors and (for non-split vertices, the
  overwhelmingly common case) the single owning Agent;
* replica sets of split vertices;
* recently-resolved *edge* owners for split vertices, keyed by the
  packed ``(own, other)`` pair, since a split vertex's owner depends on
  both endpoints.

The epoch token is carried in every
:class:`~repro.cluster.directory.DirectoryState` broadcast (membership
version ⊕ sketch flush ⊕ split-registry version), so participants
invalidate exactly when placement can change and never otherwise.  A
cache bound to a fresh :class:`~repro.partition.placer.EdgePlacer` with
an unchanged epoch keeps its memos — this is what lets routing survive
batch-clock-only broadcasts.

The cache is a drop-in stand-in for the placer: it implements the same
lookup API and delegates anything else (``ring``, ``sketch``, …) to the
wrapped placer, so Agents, Streamers, and ClientProxies use it without
code changes at call sites.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.bench.counters import PerfCounters
from repro.hashing.hashes import as_u64_keys
from repro.partition.placer import EdgePlacer

_U32_LIMIT = np.int64(1) << np.int64(32)
_SHIFT32 = np.uint64(32)


class PlacementCache:
    """Memoized placement lookups, invalidated by directory epoch.

    Parameters
    ----------
    counters:
        Optional shared :class:`~repro.bench.counters.PerfCounters`;
        a private one is created otherwise.
    max_vertices, max_edges:
        Memo capacity bounds.  The vertex memo stops admitting new
        entries when full; the edge memo restarts from the latest batch
        (split edges are few, so either limit is rarely reached).

    Examples
    --------
    >>> from repro.hashing import ConsistentHashRing
    >>> from repro.sketch import CountMinSketch
    >>> placer = EdgePlacer(ConsistentHashRing([0, 1]), CountMinSketch(64, 2),
    ...                     replication_threshold=10)
    >>> cache = PlacementCache().bind((1, 0, 0), placer)
    >>> import numpy as np
    >>> a = cache.owner_of_edges(np.array([5]), np.array([9]))
    >>> b = cache.owner_of_edges(np.array([5]), np.array([9]))  # cache hit
    >>> bool(a[0] == b[0]) and cache.last_hits == 1
    True
    """

    def __init__(
        self,
        counters: Optional[PerfCounters] = None,
        max_vertices: int = 2_000_000,
        max_edges: int = 1_000_000,
    ):
        self.counters = counters if counters is not None else PerfCounters()
        self.max_vertices = int(max_vertices)
        self.max_edges = int(max_edges)
        self._epoch = None
        self._placer: Optional[EdgePlacer] = None
        # Per-call hit/miss split, read by the cost-charging layer.
        self.last_hits = 0
        self.last_misses = 0
        self._reset_memos()

    # -- binding -----------------------------------------------------------

    @property
    def epoch(self):
        """The directory epoch the memos are valid for."""
        return self._epoch

    @property
    def placer(self) -> Optional[EdgePlacer]:
        """The wrapped (uncached) placer."""
        return self._placer

    def bind(self, epoch, placer: EdgePlacer) -> "PlacementCache":
        """Point the cache at ``placer``, valid for ``epoch``.

        Memos survive a rebind with an unchanged epoch (the broadcast
        that carried it changed nothing placement-relevant — e.g. a
        batch-clock bump).  ``epoch=None`` always invalidates: safe for
        states that do not carry a token.
        """
        if self._placer is not None and (epoch is None or epoch != self._epoch):
            self.counters.add("placement_epoch_invalidations")
            self._reset_memos()
        self._epoch = epoch
        self._placer = placer
        return self

    def _reset_memos(self) -> None:
        self._v_ids = np.empty(0, dtype=np.int64)
        self._v_k = np.empty(0, dtype=np.int64)
        self._v_owner = np.empty(0, dtype=np.int64)  # -1 where k > 1
        self._e_keys = np.empty(0, dtype=np.uint64)
        self._e_owner = np.empty(0, dtype=np.int64)
        self._replica_sets: Dict[int, List[int]] = {}

    def _require_placer(self) -> EdgePlacer:
        if self._placer is None:
            raise RuntimeError("PlacementCache used before bind()")
        return self._placer

    # -- lookups -----------------------------------------------------------

    def owner_of_edges(self, own_vertices, other_vertices) -> np.ndarray:
        """Cached, vectorized :meth:`EdgePlacer.owner_of_edges`.

        Resolves what it can from the memos (vertex owners for k == 1
        rows, packed edge keys for split rows) and delegates only the
        misses to the wrapped placer, learning their results.
        """
        placer = self._require_placer()
        own = np.atleast_1d(np.asarray(own_vertices, dtype=np.int64))
        other = np.atleast_1d(np.asarray(other_vertices, dtype=np.int64))
        if own.shape != other.shape:
            raise ValueError(f"ragged edge arrays: {own.shape} vs {other.shape}")
        n = own.size
        if n == 0:
            self.last_hits = self.last_misses = 0
            return np.empty(0, dtype=np.int64)
        owners = np.empty(n, dtype=np.int64)
        resolved = np.zeros(n, dtype=bool)
        vhit = np.zeros(n, dtype=bool)
        k_row = np.zeros(n, dtype=np.int64)
        if self._v_ids.size:
            pos = np.searchsorted(self._v_ids, own)
            pos_c = np.minimum(pos, self._v_ids.size - 1)
            vhit = self._v_ids[pos_c] == own
            k_row[vhit] = self._v_k[pos_c[vhit]]
            plain = vhit & (k_row == 1)
            owners[plain] = self._v_owner[pos_c[plain]]
            resolved |= plain
        split_rows = vhit & (k_row > 1)
        if split_rows.any() and self._e_keys.size:
            packable = _packable(own, other)
            rows = np.flatnonzero(split_rows & packable)
            if rows.size:
                keys = _pack(own[rows], other[rows])
                epos = np.searchsorted(self._e_keys, keys)
                epos_c = np.minimum(epos, self._e_keys.size - 1)
                ehit = self._e_keys[epos_c] == keys
                owners[rows[ehit]] = self._e_owner[epos_c[ehit]]
                resolved[rows[ehit]] = True
        miss = ~resolved
        n_miss = int(miss.sum())
        self.last_hits = n - n_miss
        self.last_misses = n_miss
        self.counters.add("placement_cache_hits", self.last_hits)
        self.counters.add("placement_cache_misses", n_miss)
        if n_miss:
            sub_own = own[miss]
            sub_other = other[miss]
            sub_owners = placer.owner_of_edges(sub_own, sub_other)
            owners[miss] = sub_owners
            self._learn(sub_own, sub_other, sub_owners, vhit[miss], k_row[miss])
        return owners

    def replication_factor(self, vertices) -> np.ndarray:
        """Cached :meth:`EdgePlacer.replication_factor` (k >= 1)."""
        placer = self._require_placer()
        verts = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
        if verts.size == 0:
            return placer.replication_factor(verts)
        k = np.empty(verts.size, dtype=np.int64)
        hit = np.zeros(verts.size, dtype=bool)
        if self._v_ids.size:
            pos = np.searchsorted(self._v_ids, verts)
            pos_c = np.minimum(pos, self._v_ids.size - 1)
            hit = self._v_ids[pos_c] == verts
            k[hit] = self._v_k[pos_c[hit]]
        miss = ~hit
        if miss.any():
            k[miss] = placer.replication_factor(verts[miss])
            self._learn_vertices(verts[miss], k[miss])
        return k

    def replica_set(self, vertex: int) -> List[int]:
        """Cached :meth:`EdgePlacer.replica_set`.

        The memo honours the ``max_vertices`` bound like the vertex
        memo does: once full it stops admitting (serving-plane proxies
        probe this per query, and an unbounded per-vertex dict would
        grow with the key population rather than the working set).
        """
        v = int(vertex)
        reps = self._replica_sets.get(v)
        if reps is None:
            reps = self._require_placer().replica_set(v)
            if len(self._replica_sets) < self.max_vertices:
                self._replica_sets[v] = reps
        return list(reps)

    def replica_matrix(self, vertices):
        """Batched replica sets; delegates to the vectorized placer."""
        return self._require_placer().replica_matrix(vertices)

    def primary_of(self, vertex: int) -> int:
        return self.replica_set(int(vertex))[0]

    def owner_of_vertex(self, vertex: int, rng=None) -> int:
        """Cached :meth:`EdgePlacer.owner_of_vertex` (query fast path)."""
        replicas = self.replica_set(int(vertex))
        if len(replicas) == 1 or rng is None:
            return replicas[0]
        return replicas[int(rng.integers(0, len(replicas)))]

    def lookup_cost_terms(self, n_edges: int) -> dict:
        return self._require_placer().lookup_cost_terms(n_edges)

    def __getattr__(self, name: str):
        placer = self.__dict__.get("_placer")
        if placer is None:
            raise AttributeError(name)
        return getattr(placer, name)

    # -- learning ----------------------------------------------------------

    def _learn(
        self,
        own: np.ndarray,
        other: np.ndarray,
        owners: np.ndarray,
        vertex_known: np.ndarray,
        k_known: np.ndarray,
    ) -> None:
        """Absorb the results of a delegated miss batch into the memos."""
        placer = self._require_placer()
        k_row = k_known.copy()
        unknown = ~vertex_known
        if unknown.any():
            uniq, first = np.unique(own[unknown], return_index=True)
            k_uniq = np.asarray(placer.replication_factor(uniq), dtype=np.int64)
            # For non-split vertices the row owner IS the vertex owner.
            owner_uniq = np.where(k_uniq == 1, owners[unknown][first], -1)
            self._insert_vertices(uniq, k_uniq, owner_uniq)
            k_row[unknown] = k_uniq[np.searchsorted(uniq, own[unknown])]
        split = k_row > 1
        if split.any():
            packable = _packable(own, other)
            rows = split & packable
            if rows.any():
                self._insert_edges(_pack(own[rows], other[rows]), owners[rows])

    def _learn_vertices(self, verts: np.ndarray, k: np.ndarray) -> None:
        """Memoize replication factors (and owners for k == 1) learned
        outside :meth:`owner_of_edges`."""
        placer = self._require_placer()
        uniq, first = np.unique(verts, return_index=True)
        k_uniq = np.asarray(k, dtype=np.int64)[first]
        owner_uniq = np.full(uniq.size, -1, dtype=np.int64)
        plain = k_uniq == 1
        if plain.any():
            hashes = np.asarray(placer.hash_fn(as_u64_keys(uniq[plain])))
            owner_uniq[plain] = placer.ring.lookup_hash(hashes)
        self._insert_vertices(uniq, k_uniq, owner_uniq)

    def _insert_vertices(
        self, ids: np.ndarray, k: np.ndarray, owner: np.ndarray
    ) -> None:
        if self._v_ids.size:
            pos = np.minimum(np.searchsorted(self._v_ids, ids), self._v_ids.size - 1)
            fresh = self._v_ids[pos] != ids
            ids, k, owner = ids[fresh], k[fresh], owner[fresh]
        if ids.size == 0 or self._v_ids.size + ids.size > self.max_vertices:
            return
        merged = np.concatenate([self._v_ids, ids])
        order = np.argsort(merged, kind="stable")
        self._v_ids = merged[order]
        self._v_k = np.concatenate([self._v_k, k])[order]
        self._v_owner = np.concatenate([self._v_owner, owner])[order]

    def _insert_edges(self, keys: np.ndarray, owners: np.ndarray) -> None:
        merged_keys = np.concatenate([self._e_keys, keys])
        merged_owners = np.concatenate([self._e_owner, owners])
        uniq, first = np.unique(merged_keys, return_index=True)
        if uniq.size > self.max_edges:
            # Restart from the newest batch rather than evict piecemeal.
            uniq, first = np.unique(keys, return_index=True)
            merged_owners = owners
            if uniq.size > self.max_edges:
                return
        self._e_keys = uniq
        self._e_owner = merged_owners[first]


def _packable(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Rows whose endpoints both fit the collision-free 32+32 packing."""
    return (a >= 0) & (a < _U32_LIMIT) & (b >= 0) & (b < _U32_LIMIT)


def _pack(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a.astype(np.uint64) << _SHIFT32) | b.astype(np.uint64)
