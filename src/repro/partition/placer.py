"""ElGA's edge placement: sketch + two consistent hashes (§3.4.1, Fig 3).

To find the Agent owning an edge, a participant:

1. queries the CountMinSketch for the owning vertex's estimated degree
   (a biased estimate — may exceed the degree, never underestimates);
2. derives the replication factor ``k = 1 + est // threshold`` (how many
   Agents share that vertex's edges), capped at the cluster size;
3. applies the first consistent hash — the vertex's position on the
   ring selects its ``k`` replica Agents (the next-k-distinct members);
4. if ``k > 1``, applies the second consistent hash *on those Agents* to
   pick the one responsible for this particular edge, keyed by the
   neighbor endpoint.  We use rendezvous (highest-random-weight)
   hashing for the second level: a consistent hash over a k-element
   member set with the same minimal-movement property — when a vertex's
   replication factor grows, only edges claimed by the new replica move.

For a plain vertex *query* (not an edge), step 4 is bypassed and one
replica is chosen at random (§3.4.1 "for efficiency reasons").

Every participant computes placement from the same broadcast state, so
placement is a pure function — the property tests in
``tests/partition/`` assert all participants agree.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.hashing.hashes import as_u64_keys, wang64
from repro.hashing.ring import ConsistentHashRing
from repro.sketch.countmin import CountMinSketch

U64 = np.uint64

_LEVEL2_SALT = U64(0xC2B2AE3D27D4EB4F)


class EdgePlacer:
    """Maps edges and vertices to owning Agents.

    Parameters
    ----------
    ring:
        The consistent-hash ring over current Agent ids (broadcast by
        the directory as part of every update).
    sketch:
        The global degree CountMinSketch (same broadcast).
    replication_threshold:
        Estimated degree above which a vertex is split across Agents.
        The paper uses 10⁷ at its scale; the downscaled default used by
        the cluster config is proportionally smaller.
    hash_fn:
        64-bit hash, shared with the ring.

    Examples
    --------
    >>> from repro.hashing import ConsistentHashRing
    >>> from repro.sketch import CountMinSketch
    >>> ring = ConsistentHashRing([0, 1, 2, 3])
    >>> placer = EdgePlacer(ring, CountMinSketch(256, 4), replication_threshold=100)
    >>> int(placer.owner_of_edges([5], [9])[0]) in {0, 1, 2, 3}
    True
    """

    def __init__(
        self,
        ring: ConsistentHashRing,
        sketch: CountMinSketch,
        replication_threshold: int,
        hash_fn: Callable = wang64,
        split_gate: Optional[frozenset] = None,
    ):
        if replication_threshold < 1:
            raise ValueError(f"replication_threshold must be >= 1, got {replication_threshold}")
        self.ring = ring
        self.sketch = sketch
        self.replication_threshold = int(replication_threshold)
        self.hash_fn = hash_fn
        # When a gate is supplied (the directory's split-vertex
        # registry), only registered vertices replicate.  This makes the
        # placement switch and the replica-sync protocol change
        # atomically with a directory version: an unregistered hub keeps
        # all copies on one Agent (correct, just unbalanced) until the
        # registry broadcast flips both at once.
        self.split_gate = split_gate
        self._gate_array = (
            None
            if split_gate is None
            else np.fromiter(sorted(split_gate), dtype=np.int64, count=len(split_gate))
        )

    # -- replication ---------------------------------------------------------

    def replication_factor(self, vertices) -> np.ndarray:
        """Number of Agents sharing each vertex's edges (k >= 1).

        Derived from the sketch's (over-)estimate, so a vertex may be
        split slightly before its true degree crosses the threshold —
        the safe direction — but never later.
        """
        vertices_arr = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
        est = np.atleast_1d(self.sketch.query(vertices_arr))
        k = 1 + est // self.replication_threshold
        k = np.minimum(k, len(self.ring)).astype(np.int64)
        if self._gate_array is not None and len(vertices_arr):
            gated = np.isin(vertices_arr, self._gate_array, assume_unique=False)
            k = np.where(gated, k, 1)
        return k

    def replica_set(self, vertex: int) -> List[int]:
        """All Agents holding a share of ``vertex``'s edges."""
        k = int(self.replication_factor(vertex)[0])
        return self.ring.successors(int(vertex), k)

    def replica_matrix(self, vertices) -> "tuple[np.ndarray, np.ndarray]":
        """``(k, replicas)`` for many vertices at once.

        ``replicas`` is an ``(n, k_max)`` int64 matrix right-padded with
        ``-1``; row ``i`` equals ``replica_set(vertices[i])``.
        """
        verts = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
        k = self.replication_factor(verts)
        if verts.size == 0:
            return k, np.empty((0, 0), dtype=np.int64)
        hashes = np.asarray(self.hash_fn(as_u64_keys(verts)))
        return k, self.ring.successors_hash_batch(hashes, k)

    def primary_of(self, vertex: int) -> int:
        """The first replica — coordinator for split-vertex aggregation."""
        return self.ring.successors(int(vertex), 1)[0]

    # -- edge placement ----------------------------------------------------------

    def owner_of_edges(self, own_vertices, other_vertices) -> np.ndarray:
        """Owning Agent for each edge, vectorized.

        ``own_vertices`` is the endpoint that owns this copy of the edge
        (the source for the out-edge copy, the destination for the
        in-edge copy); ``other_vertices`` is the opposite endpoint,
        which keys the second-level hash for split vertices.
        """
        own = np.atleast_1d(np.asarray(own_vertices, dtype=np.int64))
        other = np.atleast_1d(np.asarray(other_vertices, dtype=np.int64))
        if own.shape != other.shape:
            raise ValueError(f"ragged edge arrays: {own.shape} vs {other.shape}")
        if own.size == 0:
            return np.empty(0, dtype=np.int64)
        k = self.replication_factor(own)
        own_hash = np.asarray(self.hash_fn(as_u64_keys(own)))
        owners = self.ring.lookup_hash(own_hash)
        split = np.nonzero(k > 1)[0]
        if len(split):
            owners = owners.copy()
            # Split vertices are few (only hubs); the replica walk is
            # amortized per unique vertex, then the second-level
            # rendezvous pick runs in matrix form over all split rows.
            other_hash = np.asarray(self.hash_fn(as_u64_keys(other[split])))
            uniq, first, inverse = np.unique(
                own[split], return_index=True, return_inverse=True
            )
            k_uniq = k[split][first]
            replicas = self.ring.successors_hash_batch(own_hash[split][first], k_uniq)
            owners[split] = _rendezvous_pick_matrix(
                replicas[inverse], k_uniq[inverse], other_hash
            )
        return owners

    def owner_of_vertex(self, vertex: int, rng: Optional[np.random.Generator] = None) -> int:
        """Some Agent holding ``vertex`` — the query fast path.

        Bypasses the second hash and picks a replica at random, spreading
        read load across the replicas of hot vertices.
        """
        replicas = self.replica_set(int(vertex))
        if len(replicas) == 1 or rng is None:
            return replicas[0]
        return replicas[int(rng.integers(0, len(replicas)))]

    def lookup_cost_terms(self, n_edges: int) -> dict:
        """Operation counts for the cost model: one sketch query (depth
        rows) and up to two O(log P·V) searches per edge."""
        return {
            "sketch_queries": n_edges,
            "ring_searches": n_edges,
            "ring_size": max(1, len(self.ring) * self.ring.virtual_factor),
        }


def _rendezvous_pick(replicas: List[int], other_hashes: np.ndarray) -> np.ndarray:
    """Second-level consistent hash: HRW over the replica set.

    For each edge key, every replica gets a weight
    ``hash(replica_salt ^ key_hash)``; the highest weight wins.  Adding
    a replica only claims the keys it now wins — minimal movement.
    """
    reps = np.asarray(replicas, dtype=np.uint64)
    with np.errstate(over="ignore"):
        salted = wang64(reps * U64(0x9E3779B97F4A7C15) ^ _LEVEL2_SALT)
        weights = wang64(salted[:, None] ^ other_hashes[None, :].astype(np.uint64))
    pick = np.argmax(weights, axis=0)
    return np.asarray(replicas, dtype=np.int64)[pick]


def _rendezvous_pick_matrix(
    replica_rows: np.ndarray, ks: np.ndarray, other_hashes: np.ndarray
) -> np.ndarray:
    """Matrix form of :func:`_rendezvous_pick` over per-row replica sets.

    ``replica_rows`` is ``(n, k_max)`` right-padded with ``-1``; row
    ``i`` holds ``ks[i]`` valid replicas.  Picks the same winner as the
    scalar version: padding columns are masked to weight 0, and argmax's
    first-maximum tie-break matches the replica-order tie-break.
    """
    reps = replica_rows.astype(np.uint64)
    with np.errstate(over="ignore"):
        salted = wang64(reps * U64(0x9E3779B97F4A7C15) ^ _LEVEL2_SALT)
        weights = wang64(salted ^ other_hashes[:, None].astype(np.uint64))
    k_max = replica_rows.shape[1]
    valid = np.arange(k_max, dtype=np.int64)[None, :] < ks[:, None]
    weights = np.where(valid, weights, U64(0))
    pick = np.argmax(weights, axis=1)
    return replica_rows[np.arange(len(replica_rows)), pick]
