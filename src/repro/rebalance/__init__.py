"""Load-adaptive repartitioning: trace signals -> bounded ring re-weights."""

from repro.rebalance.planner import (
    RebalancePlan,
    RebalancePlanner,
    inverse_load_weights,
    normalize_loads,
)

__all__ = [
    "RebalancePlan",
    "RebalancePlanner",
    "inverse_load_weights",
    "normalize_loads",
]
