"""Obs-driven load-adaptive rebalancing (ROADMAP item 4).

EIGA's elasticity machinery (§3.4) gives the cluster a weighted
consistent-hash ring and an EDGE_MIGRATE path, but nothing *drives*
them: placement is static-by-hash, so a skewed degree distribution or a
hot partition leaves one agent stragglingly every superstep while its
peers idle at the barrier.  This module closes the loop in the style of
xDGP's adaptive iterative repartitioning: measure per-agent load from
the trace (`TraceSummary` compute timelines) or edge residency, compute
the skew with the `partition/balance.py` primitives, and emit a
*bounded* re-weight plan for the ring.  The directory adopts the plan
through the same term-fenced, epoch-bumping path as a membership
change; agents then observe the new weights in the broadcast state and
re-home misplaced edges via the existing EDGE_MIGRATE protocol — no new
migration machinery.

The plan is deliberately conservative:

* nothing moves below ``skew_threshold`` (max/mean load),
* per-member weight changes are clamped to ``max_weight_delta`` per
  plan and ``[min_weight, max_weight]`` absolutely,
* weights are quantized to ``granularity`` so repeated planning on a
  balanced cluster converges to a fixpoint instead of dithering,
* a plan predicted not to improve the skew is withheld entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.partition.balance import imbalance_factor


def _agent_id(key) -> int:
    """Accept raw ids or trace entity names (``agent-3``)."""
    if isinstance(key, str):
        return int(key.rsplit("-", 1)[-1])
    return int(key)


def normalize_loads(loads: Mapping) -> Dict[int, float]:
    """Load map with integer agent ids (trace names parsed)."""
    return {_agent_id(k): float(v) for k, v in loads.items()}


def inverse_load_weights(
    loads: Mapping,
    current_weights: Optional[Mapping[int, float]] = None,
    min_weight: float = 0.25,
    max_weight: float = 4.0,
    max_weight_delta: float = 1.0,
    granularity: float = 0.01,
) -> Dict[int, float]:
    """Ring weights that equalize load under the proportional model.

    The ring hands a member keys in proportion to its weight, so a
    member observed at load rate ``load_i / w_i`` per unit weight is
    expected to carry ``rate_i * w'_i`` after re-weighting.  Setting
    ``w'_i ∝ 1 / rate_i`` equalizes that, normalized so the mean weight
    is preserved (total virtual-position budget unchanged), then
    clamped and quantized per the module rules.
    """
    loads = normalize_loads(loads)
    if not loads:
        return {}
    ids = sorted(loads)
    weights = {i: 1.0 for i in ids}
    if current_weights:
        weights.update({int(k): float(v) for k, v in current_weights.items() if int(k) in weights})
    load_arr = np.array([loads[i] for i in ids], dtype=np.float64)
    w_arr = np.array([weights[i] for i in ids], dtype=np.float64)
    # Idle agents still deserve keys: floor the rate at a small fraction
    # of the mean so 1/rate stays finite and the clamp does the rest.
    rate = load_arr / w_arr
    floor = max(rate.mean() * 1e-3, 1e-12)
    rate = np.maximum(rate, floor)
    ideal = 1.0 / rate
    ideal *= w_arr.mean() / ideal.mean()
    bounded = np.clip(ideal, w_arr - max_weight_delta, w_arr + max_weight_delta)
    bounded = np.clip(bounded, min_weight, max_weight)
    quantized = np.round(bounded / granularity) * granularity
    return {i: round(float(q), 9) for i, q in zip(ids, quantized)}


@dataclass(frozen=True)
class RebalancePlan:
    """A bounded ring re-weight emitted by the planner.

    ``weights`` is a *complete* member->weight map (every current
    member present), ready for fenced adoption by the lead directory.
    """

    weights: Dict[int, float]
    skew_before: float
    skew_predicted: float
    reason: str = ""

    def is_noop(self, current_weights: Mapping[int, float]) -> bool:
        """True when adoption would not change any member's weight."""
        return all(
            abs(w - float(current_weights.get(i, 1.0))) < 1e-9
            for i, w in self.weights.items()
        )


@dataclass
class RebalancePlanner:
    """Emit :class:`RebalancePlan`s from observed per-agent load.

    Attributes mirror the ``rebalance_*`` knobs on ``ClusterConfig``;
    see the module docstring for the bounding rules.
    """

    skew_threshold: float = 1.15
    min_weight: float = 0.25
    max_weight: float = 4.0
    max_weight_delta: float = 1.0
    granularity: float = 0.01
    #: Planning decisions (skew_before, skew_predicted, emitted) — kept
    #: for benchmarks and debugging.
    history: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.skew_threshold < 1.0:
            raise ValueError(f"skew_threshold must be >= 1, got {self.skew_threshold}")
        if not 0 < self.min_weight <= 1.0 <= self.max_weight:
            raise ValueError("weights must satisfy 0 < min_weight <= 1 <= max_weight")
        if self.max_weight_delta <= 0 or self.granularity <= 0:
            raise ValueError("max_weight_delta and granularity must be positive")

    def plan(
        self,
        loads: Mapping,
        current_weights: Optional[Mapping[int, float]] = None,
    ) -> Optional[RebalancePlan]:
        """A bounded re-weight plan, or None when balance is fine.

        ``loads`` maps agent id (or trace entity name) to a load
        measure: summed per-round compute seconds from
        ``TraceSummary.per_agent_compute_totals()`` (preferred — it is
        the quantity the barrier actually waits on) or edge counts from
        ``ElGACluster.edge_loads()``.
        """
        loads = normalize_loads(loads)
        if len(loads) < 2:
            return None
        ids = sorted(loads)
        weights = {i: 1.0 for i in ids}
        if current_weights:
            weights.update(
                {int(k): float(v) for k, v in current_weights.items() if int(k) in weights}
            )
        load_arr = np.array([loads[i] for i in ids], dtype=np.float64)
        skew = imbalance_factor(load_arr)
        if skew < self.skew_threshold:
            self.history.append((skew, skew, False))
            return None
        new_weights = inverse_load_weights(
            loads,
            weights,
            min_weight=self.min_weight,
            max_weight=self.max_weight,
            max_weight_delta=self.max_weight_delta,
            granularity=self.granularity,
        )
        # Predicted post-plan load under the proportional model: the
        # per-unit-weight rate is a property of the member's share of
        # hot keys, so load scales with the weight ratio.
        w_arr = np.array([weights[i] for i in ids], dtype=np.float64)
        nw_arr = np.array([new_weights[i] for i in ids], dtype=np.float64)
        predicted = imbalance_factor(load_arr * nw_arr / w_arr)
        self.history.append((skew, predicted, predicted < skew))
        if predicted >= skew:
            return None
        hot = max(ids, key=lambda i: loads[i])
        plan = RebalancePlan(
            weights=new_weights,
            skew_before=float(skew),
            skew_predicted=float(predicted),
            reason=(
                f"skew {skew:.3f} >= {self.skew_threshold} "
                f"(hottest agent-{hot}); predicted {predicted:.3f}"
            ),
        )
        if plan.is_noop(weights):
            return None
        return plan
