"""The query-serving plane (Goal 4: answer queries during computation).

ElGA's fourth design goal is serving client queries concurrently with
analysis.  This package holds the proxy-side machinery that turns the
thin one-query-one-packet :class:`~repro.cluster.client.ClientProxy`
into a serving tier:

* :class:`ResultCache` — a TTL'd result cache fenced by the directory's
  placement-epoch token and a per-program result version, so a stale
  read is structurally impossible rather than probabilistically rare.
* :class:`LatencyRecorder` / :class:`ServingStats` — bounded latency
  reservoirs and percentile summaries on the simulated clock.
* :class:`OpenLoopWorkload` — a synthetic open-loop generator (Zipf
  keys, diurnal arrivals, up to ~10⁶ simulated clients multiplexed over
  proxy entities) for the tail-latency benchmarks.
"""

from repro.serving.cache import CacheEntry, ResultCache
from repro.serving.stats import LatencyRecorder, ServingStats, percentile
from repro.serving.workload import OpenLoopWorkload, zipf_keys

__all__ = [
    "CacheEntry",
    "ResultCache",
    "LatencyRecorder",
    "ServingStats",
    "percentile",
    "OpenLoopWorkload",
    "zipf_keys",
]
