"""TTL'd, epoch- and version-fenced result cache for client proxies.

A cached vertex result may only be served while *three* independent
freshness fences all hold:

1. **Result version** — the per-program counter the lead directory
   bumps on every RUN_START, completed barrier round, and recovery
   broadcast (RESULT_NOTICE).  An entry filled at version ``v`` is dead
   the moment the proxy observes ``v' > v`` for its program: results
   may have changed.
2. **Placement epoch** — the ``DirectoryState.epoch_token`` (membership
   version, sketch version, split registry size) reused from the
   :class:`~repro.partition.cache.PlacementCache`.  Membership or split
   churn re-routes queries, so entries filled under an older epoch are
   invalidated wholesale.
3. **TTL on the simulated clock** — bounds staleness the version plane
   cannot see (e.g. the broadcast latency of a notice still in flight).

Because fences 1–2 are compared against *observed monotone* tokens, a
hit can never return a value older than anything the proxy has already
learned about — stale reads are structural, not probabilistic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple


@dataclass
class CacheEntry:
    """One cached (program, vertex) result and its freshness fences."""

    value: Optional[float]
    version: int            # per-program result version at fill time
    epoch: Hashable         # directory epoch token at fill time
    expires_at: float       # simulated-clock TTL deadline
    snapshot: Tuple[int, int]  # (run_id, step) the replicas agreed on


class ResultCache:
    """Bounded TTL + epoch + version result cache (insertion-evicting).

    ``capacity`` bounds the entry count; when full, the oldest entry by
    insertion order is evicted (hot keys are re-inserted on refill, so
    a Zipf mix keeps its head resident).
    """

    def __init__(self, ttl: float, capacity: int):
        if ttl <= 0:
            raise ValueError("ResultCache needs a positive TTL; gate it off upstream")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.ttl = float(ttl)
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Tuple[str, int], CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expirations = 0          # TTL lapsed
        self.version_invalidations = 0  # result version moved on
        self.epoch_invalidations = 0    # membership/sketch/split churn
        self.negative_invalidations = 0  # negative entries dropped on ingest signals
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self,
        program: str,
        vertex: int,
        now: float,
        epoch: Hashable,
        version: int,
    ) -> Optional[CacheEntry]:
        """The live entry for (program, vertex), or None after counting
        why it could not be served."""
        key = (program, int(vertex))
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.version != version:
            self.version_invalidations += 1
            self.misses += 1
            del self._entries[key]
            return None
        if entry.epoch != epoch:
            self.epoch_invalidations += 1
            self.misses += 1
            del self._entries[key]
            return None
        if now >= entry.expires_at:
            self.expirations += 1
            self.misses += 1
            del self._entries[key]
            return None
        self.hits += 1
        return entry

    def put(
        self,
        program: str,
        vertex: int,
        value: Optional[float],
        now: float,
        epoch: Hashable,
        version: int,
        snapshot: Tuple[int, int],
    ) -> None:
        """Fill (program, vertex), evicting the oldest entry when full."""
        key = (program, int(vertex))
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = CacheEntry(
            value=value,
            version=version,
            epoch=epoch,
            expires_at=now + self.ttl,
            snapshot=snapshot,
        )

    def invalidate_program(self, program: str) -> int:
        """Drop every entry of one program (e.g. on a version notice).

        Lazy validation in :meth:`get` already fences these; eager
        removal just returns the memory sooner.  Returns entries
        dropped.
        """
        stale = [k for k in self._entries if k[0] == program]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def invalidate_negative(self, program: Optional[str] = None) -> int:
        """Drop cached *negative* results (``value is None``).

        A negative entry means "this vertex does not exist"; unlike a
        positive result it can be falsified by ingest alone — a batch
        that inserts the vertex bumps the batch clock but not the
        result version (no run happened) and, for a flush-less ingest,
        not even the placement epoch.  The TTL was the only thing
        retiring such entries; the proxy now calls this whenever it
        observes ingest progress (batch clock or epoch movement), so a
        vertex that appears is reported promptly.  Positive entries
        stay — the values they cache are still the latest published
        fixpoint.  Returns entries dropped.
        """
        stale = [
            k
            for k, entry in self._entries.items()
            if entry.value is None and (program is None or k[0] == program)
        ]
        for key in stale:
            del self._entries[key]
        self.negative_invalidations += len(stale)
        return len(stale)

    def clear(self) -> int:
        """Drop every entry (e.g. on a control-plane term bump, where a
        new lead re-assigns result versions and nothing cached under the
        old term can be trusted to fence correctly).  Returns entries
        dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    def counters(self) -> dict:
        """A plain-dict snapshot of the cache counters."""
        return {
            "serving_cache_hits": self.hits,
            "serving_cache_misses": self.misses,
            "serving_cache_expirations": self.expirations,
            "serving_cache_version_invalidations": self.version_invalidations,
            "serving_cache_epoch_invalidations": self.epoch_invalidations,
            "serving_cache_negative_invalidations": self.negative_invalidations,
            "serving_cache_evictions": self.evictions,
            "serving_cache_entries": len(self._entries),
        }
