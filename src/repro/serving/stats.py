"""Latency accounting for the serving plane.

Latencies are *simulated* seconds, so the percentiles are exact
properties of the modelled system rather than noisy wall-clock
artifacts — the sim clock makes honest tail measurement cheap.

:class:`LatencyRecorder` is a bounded ring: proxies record one sample
per delivered query and the ring keeps the most recent ``maxlen``.  It
supports ``len()``, indexing, and ``append`` so it is a drop-in for the
unbounded list the old ClientProxy grew without bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

import numpy as np


def percentile(samples: Iterable[float], q: float) -> float:
    """The q-th percentile (0..100) of ``samples``; NaN when empty."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


class LatencyRecorder(deque):
    """A bounded deque of latency samples with percentile helpers."""

    def __init__(self, maxlen: int = 65536):
        super().__init__(maxlen=maxlen)
        # Total samples ever recorded, beyond the ring's retention.
        self.total_recorded = 0

    def append(self, sample: float) -> None:  # type: ignore[override]
        self.total_recorded += 1
        super().append(sample)

    def percentiles(self, qs=(50.0, 99.0, 99.9)) -> Dict[str, float]:
        """{"p50": ..., "p99": ..., "p999": ...} over the retained ring."""
        out: Dict[str, float] = {}
        for q in qs:
            label = f"p{q:g}".replace(".", "")
            out[label] = percentile(self, q)
        return out


@dataclass
class ServingStats:
    """One aggregated view of a serving interval (bench reporting)."""

    queries: int = 0
    delivered: int = 0
    shed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    coalesced: int = 0
    fanouts: int = 0
    snapshot_retries: int = 0
    retried: int = 0
    latencies: List[float] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.queries if self.queries else 0.0

    def summary(self) -> Dict[str, float]:
        lat = LatencyRecorder(maxlen=max(1, len(self.latencies) or 1))
        for s in self.latencies:
            lat.append(s)
        out: Dict[str, float] = {
            "queries": self.queries,
            "delivered": self.delivered,
            "shed": self.shed,
            "shed_fraction": self.shed_fraction,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "coalesced": self.coalesced,
            "fanouts": self.fanouts,
            "snapshot_retries": self.snapshot_retries,
            "retried": self.retried,
        }
        out.update(lat.percentiles())
        return out
