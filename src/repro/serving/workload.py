"""Synthetic open-loop query workloads on the simulated clock.

Open-loop means arrivals are scheduled by a Poisson-like process that
does **not** wait for responses — the honest way to measure tail
latency (a closed loop self-throttles exactly when the system is
slowest, hiding the tail).  Three knobs shape the stream:

* **Zipf(s) keys** — query vertices are drawn rank-skewed, the standard
  model of hot-key web traffic; the rank→vertex mapping is a seeded
  permutation so hotness is uncorrelated with vertex id.
* **Diurnal rate** — the arrival rate follows a sinusoidal day curve,
  ``λ(t) = rate · (1 + amplitude · sin(2πt/period))``, compressed onto
  the simulated clock.
* **Client multiplexing** — each arrival is attributed to one of
  ``n_clients`` simulated clients and routed to a proxy entity by
  client id, so millions of clients ride on a handful of proxy
  entities without a million Entity objects.

Shed queries (admission control) are resubmitted after the proxy's
retry-after hint, up to ``max_resubmits`` times, so "no query lost"
holds under backpressure as long as capacity eventually exists.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def zipf_keys(
    vertices: Sequence[int],
    n: int,
    s: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``n`` vertex ids Zipf(s)-skewed over ``vertices``.

    Rank r (1-based) gets probability ∝ r^-s; ranks map to vertices
    through a seeded permutation.
    """
    verts = np.asarray(list(vertices), dtype=np.int64)
    if verts.size == 0:
        raise ValueError("need at least one vertex to query")
    ranks = np.arange(1, verts.size + 1, dtype=np.float64)
    weights = ranks ** (-float(s))
    weights /= weights.sum()
    perm = rng.permutation(verts.size)
    draws = rng.choice(verts.size, size=int(n), p=weights)
    return verts[perm[draws]]


def _diurnal_arrivals(
    n: int,
    duration: float,
    amplitude: float,
    period: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """``n`` sorted arrival offsets in [0, duration) under the day curve.

    Inverse-transform sampling against the integrated rate, evaluated
    on a fine grid — exact enough for latency work and fully
    vectorized.
    """
    grid = np.linspace(0.0, duration, 4096)
    lam = 1.0 + amplitude * np.sin(2.0 * np.pi * grid / period)
    lam = np.maximum(lam, 1e-9)
    cum = np.concatenate([[0.0], np.cumsum((lam[1:] + lam[:-1]) * np.diff(grid) / 2.0)])
    cum /= cum[-1]
    u = rng.random(int(n))
    times = np.interp(u, cum, grid)
    times.sort()
    return times


class OpenLoopWorkload:
    """Schedule an open-loop Zipf/diurnal query stream against proxies.

    Parameters
    ----------
    proxies:
        ClientProxy entities to multiplex the clients over (client id
        mod len(proxies) picks the proxy).
    vertices, program:
        Key population and program name to query.
    rate, duration:
        Mean offered load (queries per simulated second) and stream
        length; the realized count is ``int(rate * duration)``.
    n_clients:
        Simulated client population the arrivals are attributed to.
    zipf_s, diurnal_amplitude, diurnal_period:
        Key skew and day-curve shape (period defaults to the duration:
        one "day" per stream).
    max_resubmits:
        How many times one query retries after being shed before it is
        counted dropped.
    """

    def __init__(
        self,
        proxies: Sequence,
        vertices: Sequence[int],
        program: str,
        *,
        rate: float,
        duration: float,
        n_clients: int = 1_000_000,
        zipf_s: float = 1.0,
        diurnal_amplitude: float = 0.6,
        diurnal_period: Optional[float] = None,
        seed: int = 0,
        max_resubmits: int = 8,
    ):
        if not proxies:
            raise ValueError("need at least one proxy")
        if rate <= 0 or duration <= 0:
            raise ValueError("rate and duration must be > 0")
        self.proxies = list(proxies)
        self.program = program
        self.rate = float(rate)
        self.duration = float(duration)
        self.n_clients = int(n_clients)
        self.max_resubmits = int(max_resubmits)
        rng = np.random.default_rng(seed)
        n = max(1, int(rate * duration))
        self._offsets = _diurnal_arrivals(
            n,
            duration,
            diurnal_amplitude,
            diurnal_period if diurnal_period is not None else duration,
            rng,
        )
        self._keys = zipf_keys(vertices, n, zipf_s, rng)
        self._client_ids = rng.integers(0, self.n_clients, size=n)
        # Accounting.
        self.submitted = 0
        self.delivered = 0
        self.shed = 0
        self.resubmitted = 0
        self.dropped = 0
        self.values: List[Optional[float]] = []

    @property
    def n_queries(self) -> int:
        return len(self._offsets)

    @property
    def distinct_clients(self) -> int:
        return int(np.unique(self._client_ids).size)

    def start(self) -> "OpenLoopWorkload":
        """Schedule every arrival on the proxies' kernel; returns self."""
        kernel = self.proxies[0].kernel
        for offset, vertex, client_id in zip(
            self._offsets, self._keys, self._client_ids
        ):
            proxy = self.proxies[int(client_id) % len(self.proxies)]
            kernel.schedule(
                float(offset),
                lambda p=proxy, v=int(vertex): self._submit(p, v, self.max_resubmits),
            )
        return self

    def _submit(self, proxy, vertex: int, budget: int) -> None:
        self.submitted += 1
        retry_after = proxy.query(vertex, self.program, self._on_value)
        if retry_after > 0:
            self.shed += 1
            if budget > 0:
                self.resubmitted += 1
                proxy.kernel.schedule(
                    retry_after,
                    lambda: self._submit(proxy, vertex, budget - 1),
                )
            else:
                self.dropped += 1

    def _on_value(self, value: Optional[float]) -> None:
        self.delivered += 1
        self.values.append(value)

    @property
    def outstanding(self) -> int:
        """Accepted queries whose reply has not been delivered yet."""
        accepted = self.submitted - self.shed
        return accepted - self.delivered
