"""Discrete-event simulation kernel.

The simulator provides the substrate that stands in for ElGA's real
cluster: a deterministic event loop (:class:`~repro.sim.kernel.SimKernel`),
an actor base class (:class:`~repro.sim.entity.Entity`) matching the
paper's single-threaded shared-nothing participants, and reproducible
per-entity random streams (:mod:`repro.sim.random`).

All "runtime" results reported by the benchmark harness are simulated
times accumulated through this kernel, so they are exactly reproducible
and independent of the speed of the host interpreter.
"""

from repro.sim.entity import Entity
from repro.sim.kernel import EventHandle, SimKernel
from repro.sim.random import entity_rng, substream_seed

__all__ = [
    "Entity",
    "EventHandle",
    "SimKernel",
    "entity_rng",
    "substream_seed",
]
