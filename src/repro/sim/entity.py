"""Single-threaded actor base class.

ElGA follows a shared-nothing design (§3.1): each entity is single
threaded and only communicates via message passing.  :class:`Entity`
models exactly that — an entity owns private state, receives messages
through :meth:`handle_message`, and may schedule future work on the
kernel, but never touches another entity's state directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sim.random import entity_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.net.message import Message
    from repro.net.network import Network


class Entity:
    """Base class for all ElGA participants and services.

    Parameters
    ----------
    network:
        The fabric this entity attaches to; attaching assigns the entity
        a unique address.
    name:
        Stable human-readable identifier, also used to derive the
        entity's private random stream.
    seed:
        Experiment root seed for the random stream derivation.
    """

    def __init__(self, network: "Network", name: str, seed: int = 0):
        self.name = name
        self.network = network
        self.rng: np.random.Generator = entity_rng(seed, name)
        self.address: int = network.attach(self)
        self._busy_until = 0.0
        # Lifetime simulated seconds billed through charge(); the
        # cost-model counter the Prometheus exposition reports.
        self.charged_seconds = 0.0

    # -- messaging -------------------------------------------------------

    def handle_message(self, message: "Message") -> None:
        """Process one incoming message.  Subclasses override this."""
        raise NotImplementedError(
            f"{type(self).__name__} received a message but does not override handle_message"
        )

    # -- simulated compute time ------------------------------------------

    @property
    def kernel(self):
        """The simulation kernel this entity's network runs on."""
        return self.network.kernel

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.network.kernel.now

    def charge(self, seconds: float) -> None:
        """Charge simulated compute time to this (single-threaded) entity.

        An entity processes work serially, so compute charged while the
        entity is already busy extends the busy horizon rather than
        overlapping.  :meth:`available_at` reports when the entity could
        next send a response, which the network uses to serialize this
        entity's outgoing traffic.
        """
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self.charged_seconds += seconds
        start = max(self._busy_until, self.now)
        self._busy_until = start + seconds

    def available_at(self) -> float:
        """Earliest simulated time this entity is free to act."""
        return max(self._busy_until, self.now)

    def busy_backlog(self) -> float:
        """Seconds of already-charged work not yet elapsed."""
        return max(0.0, self._busy_until - self.now)

    # -- lifecycle ---------------------------------------------------------

    def detach(self) -> None:
        """Remove this entity from the network (no further delivery)."""
        self.network.detach(self.address)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} @{self.address}>"
