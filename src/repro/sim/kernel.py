"""Deterministic discrete-event simulation kernel.

The kernel fires timestamped callbacks in (time, insertion-order)
sequence, so given the same seeds a simulation is exactly reproducible:
there is no dependence on wall-clock time, hashing order, or thread
scheduling.  This is what makes the reproduction's "runtimes"
meaningful — they are simulated seconds charged by cost models, not
noisy interpreter timings.

Dispatch is *cohort-batched*: events are bucketed by exact timestamp
(a dict of insertion-ordered lists) and a small heap orders only the
distinct timestamps.  One heap pop drains an entire same-time cohort,
so the per-event cost is a list append and a deque pop — the O(log n)
heap work amortizes across the cohort.  In a synchronous cluster round
thousands of message deliveries share one timestamp, which is exactly
where the old one-heap-pop-per-event loop burned its time.

Cancellation stays O(1): handles flip a flag, an exact counter tracks
cancelled-but-queued events, and once they dominate a large queue the
buckets are filtered in one O(n) pass.  The timestamp heap is never
rebuilt — bucket-less times are dropped lazily at pop time — so
cancellation-heavy workloads never re-heapify at all.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse, e.g. scheduling into the past."""


@dataclass
class _Event:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    in_queue: bool = field(compare=False, default=True)


class EventHandle:
    """Handle to a scheduled event, usable to cancel it.

    Handles are returned by :meth:`SimKernel.schedule` and
    :meth:`SimKernel.schedule_at`.  Cancelling an already-fired or
    already-cancelled event is a harmless no-op.
    """

    __slots__ = ("_event", "_kernel")

    def __init__(self, event: _Event, kernel: "SimKernel"):
        self._event = event
        self._kernel = kernel

    @property
    def time(self) -> float:
        """Simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if event.in_queue:
                self._kernel._note_cancel()


class SimKernel:
    """Deterministic discrete-event loop with a simulated clock.

    Parameters
    ----------
    start_time:
        Initial simulated time in seconds (default 0.0).

    Examples
    --------
    >>> k = SimKernel()
    >>> fired = []
    >>> _ = k.schedule(1.5, fired.append, "a")
    >>> _ = k.schedule(0.5, fired.append, "b")
    >>> k.run()
    2
    >>> fired
    ['b', 'a']
    >>> k.now
    1.5
    """

    # Lazy compaction threshold: only bother once the queue is at least
    # this large AND cancelled events outnumber live ones.
    _COMPACT_MIN = 64

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        # Events bucketed by exact timestamp, each bucket in insertion
        # order; the heap orders only the *distinct* times.  A bucket
        # removed by compaction leaves its time behind as a stale heap
        # entry, skipped at pop time.
        self._buckets: Dict[float, List[_Event]] = {}
        self._times: List[float] = []
        # The cohort currently being drained (popped bucket).  It is
        # always the minimum outstanding time: the heap held no smaller
        # time when it was popped, and scheduling into the past is
        # rejected.
        self._active: deque = deque()
        self._active_time: Optional[float] = None
        self._seq = itertools.count()
        self._n_queued = 0
        self._events_processed = 0
        self._running = False
        # Count of cancelled events still sitting in the queue, kept
        # exact by EventHandle.cancel / the pop paths, so liveness checks
        # are O(1) instead of a queue scan.
        self._cancelled_pending = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def clock(self) -> float:
        """The simulated clock as a plain callable.

        A drop-in replacement for wall-clock sources like
        ``time.perf_counter`` wherever an API takes a zero-argument
        timer (e.g. ``PerfCounters(clock=kernel.clock)``), so phase
        timers and traces agree with simulated time and stay
        deterministic.
        """
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired since construction."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return self._n_queued

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        ``delay`` must be non-negative and finite.
        """
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: now={self._now}, requested={time}"
            )
        time = float(time)
        event = _Event(time=time, seq=next(self._seq), callback=callback, args=args)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
        self._n_queued += 1
        return EventHandle(event, self)

    def _load_cohort(self, until: Optional[float]) -> bool:
        """Pop the next timestamp's whole bucket into the active cohort.

        Returns False when no bucket at time <= ``until`` remains.
        Stale heap times (bucket removed by compaction) are discarded
        on the way — the lazy half of heap-free cancellation.
        """
        while self._times:
            t = self._times[0]
            bucket = self._buckets.get(t)
            if bucket is None:
                heapq.heappop(self._times)  # stale: compacted away
                continue
            if until is not None and t > until:
                return False
            heapq.heappop(self._times)
            del self._buckets[t]
            self._active = deque(bucket)
            self._active_time = t
            return True
        return False

    def step(self) -> bool:
        """Fire the single next non-cancelled event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty (cancelled events are discarded without firing).
        """
        while True:
            if not self._active and not self._load_cohort(None):
                return False
            event = self._active.popleft()
            event.in_queue = False
            self._n_queued -= 1
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in timestamp order, a full same-time cohort per
        heap pop (ties fire in insertion order, as always).

        Parameters
        ----------
        until:
            If given, stop once the next event would fire after this
            simulated time; the clock is advanced to exactly ``until``.
        max_events:
            If given, stop after firing this many events (a safety net
            for protocol bugs that generate unbounded event storms).

        Returns
        -------
        int
            The number of events fired by this call.
        """
        if self._running:
            raise SimulationError("kernel is not reentrant: run() called from within run()")
        self._running = True
        fired = 0
        try:
            while max_events is None or fired < max_events:
                if not self._active:
                    if not self._load_cohort(until):
                        break
                elif until is not None and self._active_time is not None and self._active_time > until:
                    # A partially drained cohort (step()/max_events cut)
                    # can sit beyond the horizon; leave it queued.
                    break
                event = self._active.popleft()
                event.in_queue = False
                self._n_queued -= 1
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._now = event.time
                self._events_processed += 1
                event.callback(*event.args)
                fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = float(until)
        return fired

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until no events remain; error out past ``max_events``.

        Unlike :meth:`run` with ``max_events``, exhausting the budget here
        raises :class:`SimulationError`, because an idle-seeking caller
        that silently stops early would report truncated results.
        """
        fired = self.run(max_events=max_events)
        if self.pending and self._has_live_events():
            raise SimulationError(
                f"event budget of {max_events} exhausted with {self.pending} events pending"
            )
        return fired

    def _has_live_events(self) -> bool:
        return self._n_queued > self._cancelled_pending

    def _note_cancel(self) -> None:
        """Record the cancellation of a still-queued event, filtering
        the buckets lazily once cancelled events dominate."""
        self._cancelled_pending += 1
        if (
            self._n_queued >= self._COMPACT_MIN
            and self._cancelled_pending * 2 > self._n_queued
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from every bucket in one O(n) pass.

        Firing order is untouched — buckets keep their insertion order
        and the timestamp heap is not rebuilt (an emptied bucket just
        leaves a stale time for :meth:`_load_cohort` to skip), so
        cancellation storms never trigger quadratic re-heapify work.
        """
        for t in list(self._buckets):
            bucket = self._buckets[t]
            live = []
            for event in bucket:
                if event.cancelled:
                    event.in_queue = False
                    self._n_queued -= 1
                else:
                    live.append(event)
            if len(live) != len(bucket):
                if live:
                    self._buckets[t] = live
                else:
                    del self._buckets[t]
        if self._active:
            live_active = deque()
            for event in self._active:
                if event.cancelled:
                    event.in_queue = False
                    self._n_queued -= 1
                else:
                    live_active.append(event)
            self._active = live_active
        self._cancelled_pending = 0
