"""Deterministic discrete-event simulation kernel.

The kernel is a priority queue of timestamped callbacks.  Ties are broken
by insertion order, so given the same seeds a simulation is exactly
reproducible: there is no dependence on wall-clock time, hashing order, or
thread scheduling.  This is what makes the reproduction's "runtimes"
meaningful — they are simulated seconds charged by cost models, not noisy
interpreter timings.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse, e.g. scheduling into the past."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    in_queue: bool = field(compare=False, default=True)


class EventHandle:
    """Handle to a scheduled event, usable to cancel it.

    Handles are returned by :meth:`SimKernel.schedule` and
    :meth:`SimKernel.schedule_at`.  Cancelling an already-fired or
    already-cancelled event is a harmless no-op.
    """

    __slots__ = ("_event", "_kernel")

    def __init__(self, event: _Event, kernel: "SimKernel"):
        self._event = event
        self._kernel = kernel

    @property
    def time(self) -> float:
        """Simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if event.in_queue:
                self._kernel._note_cancel()


class SimKernel:
    """Deterministic discrete-event loop with a simulated clock.

    Parameters
    ----------
    start_time:
        Initial simulated time in seconds (default 0.0).

    Examples
    --------
    >>> k = SimKernel()
    >>> fired = []
    >>> _ = k.schedule(1.5, fired.append, "a")
    >>> _ = k.schedule(0.5, fired.append, "b")
    >>> k.run()
    2
    >>> fired
    ['b', 'a']
    >>> k.now
    1.5
    """

    # Lazy compaction threshold: only bother once the queue is at least
    # this large AND cancelled events outnumber live ones.
    _COMPACT_MIN = 64

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        # Count of cancelled events still sitting in the queue, kept
        # exact by EventHandle.cancel / the pop paths, so liveness checks
        # are O(1) instead of a queue scan.
        self._cancelled_pending = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def clock(self) -> float:
        """The simulated clock as a plain callable.

        A drop-in replacement for wall-clock sources like
        ``time.perf_counter`` wherever an API takes a zero-argument
        timer (e.g. ``PerfCounters(clock=kernel.clock)``), so phase
        timers and traces agree with simulated time and stay
        deterministic.
        """
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired since construction."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        ``delay`` must be non-negative and finite.
        """
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: now={self._now}, requested={time}"
            )
        event = _Event(time=float(time), seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    def step(self) -> bool:
        """Fire the single next non-cancelled event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty (cancelled events are discarded without firing).
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            event.in_queue = False
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in timestamp order.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire after this
            simulated time; the clock is advanced to exactly ``until``.
        max_events:
            If given, stop after firing this many events (a safety net
            for protocol bugs that generate unbounded event storms).

        Returns
        -------
        int
            The number of events fired by this call.
        """
        if self._running:
            raise SimulationError("kernel is not reentrant: run() called from within run()")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue).in_queue = False
                    self._cancelled_pending -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue).in_queue = False
                self._now = event.time
                self._events_processed += 1
                event.callback(*event.args)
                fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = float(until)
        return fired

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until no events remain; error out past ``max_events``.

        Unlike :meth:`run` with ``max_events``, exhausting the budget here
        raises :class:`SimulationError`, because an idle-seeking caller
        that silently stops early would report truncated results.
        """
        fired = self.run(max_events=max_events)
        if self.pending and self._has_live_events():
            raise SimulationError(
                f"event budget of {max_events} exhausted with {self.pending} events pending"
            )
        return fired

    def _has_live_events(self) -> bool:
        return len(self._queue) > self._cancelled_pending

    def _note_cancel(self) -> None:
        """Record the cancellation of a still-queued event, compacting
        the heap lazily once cancelled events dominate it."""
        self._cancelled_pending += 1
        if (
            len(self._queue) >= self._COMPACT_MIN
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from the queue in one O(n) pass.

        Re-heapifying live events preserves firing order exactly: the
        heap invariant depends only on the (time, seq) total order.
        """
        live = []
        for event in self._queue:
            if event.cancelled:
                event.in_queue = False
            else:
                live.append(event)
        heapq.heapify(live)
        self._queue = live
        self._cancelled_pending = 0
