"""Reproducible per-entity random streams.

Every ElGA participant (Agent, Streamer, Directory, ...) gets its own
independent :class:`numpy.random.Generator`, derived from the experiment
seed and a stable entity identifier.  Independent streams mean that adding
or removing one entity never perturbs the randomness seen by the others —
essential when comparing elastic runs that differ only in membership.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

_MASK64 = (1 << 64) - 1


def substream_seed(root_seed: int, *labels: Union[int, str]) -> int:
    """Derive a stable 64-bit seed from a root seed and entity labels.

    Labels may mix strings and integers; string labels are CRC-folded so
    the derivation does not depend on Python's randomized ``hash()``.

    Examples
    --------
    >>> substream_seed(42, "agent", 3) == substream_seed(42, "agent", 3)
    True
    >>> substream_seed(42, "agent", 3) != substream_seed(42, "agent", 4)
    True
    """
    acc = (int(root_seed) * 0x9E3779B97F4A7C15) & _MASK64
    for label in labels:
        if isinstance(label, str):
            piece = zlib.crc32(label.encode("utf-8"))
        else:
            piece = int(label) & _MASK64
        acc ^= piece
        # splitmix64 finalizer: cheap, well-mixed, deterministic.
        acc = (acc + 0x9E3779B97F4A7C15) & _MASK64
        acc = ((acc ^ (acc >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        acc = ((acc ^ (acc >> 27)) * 0x94D049BB133111EB) & _MASK64
        acc ^= acc >> 31
    return acc


def entity_rng(root_seed: int, *labels: Union[int, str]) -> np.random.Generator:
    """Create an independent generator for one entity.

    Examples
    --------
    >>> a = entity_rng(7, "streamer", 0)
    >>> b = entity_rng(7, "streamer", 0)
    >>> float(a.random()) == float(b.random())
    True
    """
    return np.random.default_rng(substream_seed(root_seed, *labels))
