"""Sketches (§2.4, §3.3.1).

ElGA replaces the O(n) global vertex-degree table that earlier dynamic
partitioners needed with a CountMinSketch: a small, fixed-size, mergeable
summary of every vertex's degree that all participants share via the
directory broadcast.  The estimate is biased upward (never an
underestimate), which is exactly the safe direction for the replication
decision — a vertex might be split slightly early, never too late.
"""

from repro.sketch.countmin import CountMinSketch
from repro.sketch.countsketch import CountSketch

__all__ = ["CountMinSketch", "CountSketch"]
