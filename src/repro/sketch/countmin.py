"""CountMinSketch (Cormode & Muthukrishnan), numpy-vectorized.

The sketch is a ``depth × width`` counter table.  Each update hashes the
key once per row (row-salted Wang hashes) and increments one cell per
row; a query takes the minimum across rows.  For width ``w = ceil(e/ε)``
and depth ``d = ceil(ln(1/δ))`` the estimate after ``m`` total count is
within ``+ε·m`` of the truth with probability ``1 − δ`` (§3.3.1).

ElGA's sizing example: a 100-billion-edge graph with width 2^18 and
depth 8 gives each degree estimate within ~1 M at 99.965 % probability —
an 8 MB table, trivially broadcastable.  :meth:`CountMinSketch.size_for`
reproduces that arithmetic.

Deletions are supported (the dynamic graph is a turnstile stream); the
one-direction-only guarantee (never underestimate) holds as long as the
stream never deletes an edge that was not previously inserted, which the
graph layer enforces.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.hashing.hashes import wang64

U64 = np.uint64


class CountMinSketch:
    """A mergeable count-min sketch over 64-bit keys.

    Parameters
    ----------
    width:
        Number of counters per row; controls the additive error ε ≈ e/width.
    depth:
        Number of rows; controls the failure probability δ ≈ exp(-depth).
    seed:
        Salts the row hashes.  All participants in one cluster must use
        the same seed (it is fixed in the cluster config).

    Examples
    --------
    >>> cms = CountMinSketch(width=256, depth=4)
    >>> cms.add([7, 7, 9])
    >>> int(cms.query(7)) >= 2
    True
    """

    def __init__(self, width: int, depth: int = 8, seed: int = 0, dtype=np.int64):
        if width < 1 or depth < 1:
            raise ValueError(f"width and depth must be positive, got {width}x{depth}")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self.table = np.zeros((self.depth, self.width), dtype=dtype)
        self.total = 0  # net count of all updates (m in the error bound)
        # One salt per row; derived deterministically from the seed.
        base = np.arange(1, self.depth + 1, dtype=np.uint64)
        with np.errstate(over="ignore"):
            self._row_salts = np.asarray(
                wang64(base * U64(0xDEADBEEFCAFEF00D) + U64(seed & 0xFFFFFFFFFFFFFFFF)),
                dtype=np.uint64,
            )

    # -- sizing ---------------------------------------------------------------

    @staticmethod
    def size_for(epsilon: float, delta: float) -> Tuple[int, int]:
        """(width, depth) for additive error ε·m at probability 1−δ.

        Examples
        --------
        >>> w, d = CountMinSketch.size_for(epsilon=1.04e-5, delta=3.5e-4)
        >>> w <= 2**18 and d == 8
        True
        """
        if not (0 < epsilon < 1) or not (0 < delta < 1):
            raise ValueError("epsilon and delta must be in (0, 1)")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1.0 / delta))
        return width, depth

    def error_bound(self, confidence: bool = False):
        """Additive error ε·m for the current stream length.

        With ``confidence=True`` also returns the probability the bound
        holds (``1 − exp(-depth)``).
        """
        eps = math.e / self.width
        bound = eps * max(self.total, 0)
        if confidence:
            return bound, 1.0 - math.exp(-self.depth)
        return bound

    @property
    def nbytes(self) -> int:
        """Size of the broadcastable table in bytes."""
        return int(self.table.nbytes)

    # -- updates -----------------------------------------------------------------

    def _indices(self, keys: np.ndarray) -> np.ndarray:
        """(depth, n) column indices for the given keys."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        with np.errstate(over="ignore"):
            mixed = wang64(keys[None, :] ^ self._row_salts[:, None])
        return (mixed % U64(self.width)).astype(np.int64)

    def add(self, keys, counts=1) -> None:
        """Increment counters for ``keys`` (vectorized).

        ``counts`` may be a scalar applied to every key or a per-key
        array.  Duplicate keys in one call accumulate correctly.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        if keys.size == 0:
            return
        counts_arr = np.broadcast_to(np.asarray(counts, dtype=self.table.dtype), keys.shape)
        idx = self._indices(keys)
        for row in range(self.depth):
            np.add.at(self.table[row], idx[row], counts_arr)
        self.total += int(counts_arr.sum())

    def remove(self, keys, counts=1) -> None:
        """Decrement counters (turnstile deletions)."""
        counts_arr = np.asarray(counts)
        self.add(keys, -counts_arr)

    def query(self, keys):
        """Point estimates (min across rows); never underestimates.

        Returns a scalar for scalar input, else an int64 array.
        """
        scalar = np.ndim(keys) == 0
        keys_arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        if keys_arr.size == 0:
            return np.empty(0, dtype=np.int64)
        idx = self._indices(keys_arr)
        rows = np.arange(self.depth)[:, None]
        estimates = self.table[rows, idx].min(axis=0)
        return int(estimates[0]) if scalar else estimates.astype(np.int64)

    # -- merging / serialization ---------------------------------------------------

    def compatible_with(self, other: "CountMinSketch") -> bool:
        """Whether two sketches share dimensions and salts (mergeable)."""
        return (
            self.width == other.width
            and self.depth == other.depth
            and self.seed == other.seed
        )

    def merge(self, other: "CountMinSketch") -> None:
        """Add another sketch's counts into this one (in place).

        Agents accumulate local degree deltas and the directory merges
        them into the global sketch before each broadcast.
        """
        if not self.compatible_with(other):
            raise ValueError("cannot merge sketches with different dimensions or seeds")
        self.table += other.table
        self.total += other.total

    def copy(self) -> "CountMinSketch":
        """An independent deep copy (what a directory broadcast carries)."""
        dup = CountMinSketch(self.width, self.depth, self.seed, dtype=self.table.dtype)
        dup.table[:] = self.table
        dup.total = self.total
        return dup

    def clear(self) -> None:
        """Reset all counters (used for per-interval delta sketches)."""
        self.table[:] = 0
        self.total = 0

    def is_empty(self) -> bool:
        return self.total == 0 and not self.table.any()

    def __eq__(self, other) -> bool:
        if not isinstance(other, CountMinSketch):
            return NotImplemented
        return self.compatible_with(other) and np.array_equal(self.table, other.table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CountMinSketch(width={self.width}, depth={self.depth}, total={self.total})"
