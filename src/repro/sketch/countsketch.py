"""Count Sketch (Charikar, Chen & Farach-Colton) for comparison (§2.4).

The Count Sketch predates CountMinSketch: each update moves a cell up
*or* down according to a second, sign hash, and queries take the median
across rows.  Its estimates are unbiased but two-sided — they can
underestimate — which is why ElGA uses CountMin for the replication
decision (an underestimated degree could leave a hot vertex unsplit).
The benchmark-level contrast between the two lives in the Figure 7
ablation.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.hashes import wang64

U64 = np.uint64


class CountSketch:
    """A count sketch (signed updates, median estimate) over 64-bit keys.

    Examples
    --------
    >>> cs = CountSketch(width=512, depth=5)
    >>> cs.add([3, 3, 3])
    >>> abs(int(cs.query(3)) - 3) <= 3
    True
    """

    def __init__(self, width: int, depth: int = 5, seed: int = 0):
        if width < 1 or depth < 1:
            raise ValueError(f"width and depth must be positive, got {width}x{depth}")
        if depth % 2 == 0:
            # An odd depth keeps the median a real cell value.
            depth += 1
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self.table = np.zeros((self.depth, self.width), dtype=np.int64)
        self.total = 0
        base = np.arange(1, self.depth + 1, dtype=np.uint64)
        with np.errstate(over="ignore"):
            self._row_salts = np.asarray(
                wang64(base * U64(0xA5A5A5A5DEADBEEF) + U64(seed & 0xFFFFFFFFFFFFFFFF)),
                dtype=np.uint64,
            )
            self._sign_salts = np.asarray(
                wang64(base * U64(0x123456789ABCDEF1) + U64(~seed & 0xFFFFFFFFFFFFFFFF)),
                dtype=np.uint64,
            )

    def _indices_and_signs(self, keys: np.ndarray):
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        with np.errstate(over="ignore"):
            mixed = wang64(keys[None, :] ^ self._row_salts[:, None])
            signed = wang64(keys[None, :] ^ self._sign_salts[:, None])
        idx = (mixed % U64(self.width)).astype(np.int64)
        signs = np.where((signed & U64(1)).astype(bool), 1, -1).astype(np.int64)
        return idx, signs

    def add(self, keys, counts=1) -> None:
        """Apply signed increments for ``keys`` (vectorized)."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        if keys.size == 0:
            return
        counts_arr = np.broadcast_to(np.asarray(counts, dtype=np.int64), keys.shape)
        idx, signs = self._indices_and_signs(keys)
        for row in range(self.depth):
            np.add.at(self.table[row], idx[row], signs[row] * counts_arr)
        self.total += int(counts_arr.sum())

    def remove(self, keys, counts=1) -> None:
        """Turnstile deletions."""
        self.add(keys, -np.asarray(counts))

    def query(self, keys):
        """Median-of-rows estimates; unbiased but two-sided."""
        scalar = np.ndim(keys) == 0
        keys_arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        if keys_arr.size == 0:
            return np.empty(0, dtype=np.int64)
        idx, signs = self._indices_and_signs(keys_arr)
        rows = np.arange(self.depth)[:, None]
        estimates = np.median(signs * self.table[rows, idx], axis=0)
        result = np.rint(estimates).astype(np.int64)
        return int(result[0]) if scalar else result

    def merge(self, other: "CountSketch") -> None:
        """Add another sketch's counters into this one."""
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            raise ValueError("cannot merge sketches with different dimensions or seeds")
        self.table += other.table
        self.total += other.total

    @property
    def nbytes(self) -> int:
        return int(self.table.nbytes)
