"""Triangle counting from per-vertex neighborhood count-sketches.

EdgeSketch-style analytics (PAPERS.md) estimate triangle counts on
streams too large for exact neighbor intersection.  The identity is

    Σ_{(u,v) ∈ E}  |N(u) ∩ N(v)|  =  3·T

over the undirected, deduplicated edge set: each triangle {a, b, c} is
discovered once per edge, through the third vertex.  The intersection
size is an inner product of adjacency indicator vectors, and the Count
Sketch is an inner-product-preserving linear projection: for sketch
rows S_u, S_v of two neighborhoods, ⟨S_u[r], S_v[r]⟩ is an unbiased
estimate of ⟨a_u, a_v⟩ with variance ~ deg(u)·deg(v)/width, and the
median across rows tames the tail.  Summing the per-edge medians and
dividing by three gives the estimate; the whole computation is
O(E·depth·width) array work, independent of the true intersection
sizes.

:func:`triangle_count_exact` is the oracle — scipy sparse
``trace(A³)/6`` on the same cleaned edge set — used by tests to bound
sketch error and by benches to report accuracy.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sketch.countsketch import CountSketch


def _clean_undirected(
    us: np.ndarray, vs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Dedup + drop self-loops; returns canonical u < v edges and n."""
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    lo = np.minimum(us, vs)
    hi = np.maximum(us, vs)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    if len(lo):
        pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
        lo, hi = pairs[:, 0], pairs[:, 1]
    n = int(max(lo.max(initial=-1), hi.max(initial=-1))) + 1
    return lo, hi, n


def triangle_count_exact(us: np.ndarray, vs: np.ndarray) -> int:
    """Exact triangle count via sparse ``trace(A³) / 6``."""
    import scipy.sparse as sp

    lo, hi, n = _clean_undirected(us, vs)
    if len(lo) == 0:
        return 0
    data = np.ones(2 * len(lo), dtype=np.int64)
    rows = np.concatenate([lo, hi])
    cols = np.concatenate([hi, lo])
    adj = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    return int((adj @ adj).multiply(adj).sum()) // 6


def sketch_neighborhoods(
    us: np.ndarray,
    vs: np.ndarray,
    n: int,
    width: int = 64,
    depth: int = 5,
    seed: int = 0,
) -> np.ndarray:
    """Per-vertex neighborhood count-sketches, shape (depth, n, width).

    Row ``S[r, u]`` is vertex u's neighbor set projected through the
    same (bucket, sign) hash family :class:`CountSketch` uses, so two
    vertices' rows are comparable by inner product.
    """
    hasher = CountSketch(width=width, depth=depth, seed=seed)
    idx, signs = hasher._indices_and_signs(np.arange(n, dtype=np.uint64))
    table = np.zeros((hasher.depth, n, width), dtype=np.int32)
    for r in range(hasher.depth):
        # Symmetrized adjacency: u sketches v and v sketches u.
        np.add.at(table[r], (us, idx[r][vs]), signs[r][vs].astype(np.int32))
        np.add.at(table[r], (vs, idx[r][us]), signs[r][us].astype(np.int32))
    return table


def triangle_count_sketch(
    us: np.ndarray,
    vs: np.ndarray,
    width: int = 64,
    depth: int = 5,
    seed: int = 0,
    chunk: int = 65536,
) -> float:
    """Estimate the triangle count from neighborhood count-sketches.

    ``width`` trades memory/time for accuracy (per-edge standard error
    ~ sqrt(deg(u)·deg(v)/width)); ``depth`` rows are combined by
    median.  Deterministic for a fixed ``seed``.
    """
    lo, hi, n = _clean_undirected(us, vs)
    if len(lo) == 0:
        return 0.0
    table = sketch_neighborhoods(lo, hi, n, width=width, depth=depth, seed=seed)
    depth = table.shape[0]
    total = 0.0
    for start in range(0, len(lo), chunk):
        eu = lo[start : start + chunk]
        ev = hi[start : start + chunk]
        dots = np.empty((depth, len(eu)), dtype=np.float64)
        for r in range(depth):
            dots[r] = np.einsum(
                "ew,ew->e",
                table[r, eu].astype(np.float64),
                table[r, ev].astype(np.float64),
            )
        # u ∈ N(v) and v ∈ N(u) contribute sign-hash noise only in
        # expectation 0 cross terms; the diagonal |N(u) ∩ N(v)| term is
        # what survives the median.
        total += float(np.median(dots, axis=0).sum())
    return total / 3.0


def triangle_count(
    us: np.ndarray,
    vs: np.ndarray,
    exact: bool = False,
    width: int = 64,
    depth: int = 5,
    seed: int = 0,
) -> float:
    """Triangle count of the undirected simple graph on ``(us, vs)``.

    ``exact=True`` routes to the scipy oracle; otherwise the
    count-sketch estimator.
    """
    if exact:
        return float(triangle_count_exact(us, vs))
    return triangle_count_sketch(us, vs, width=width, depth=depth, seed=seed)
