"""Blogel baseline: algorithm exactness and timing-model shape."""

import numpy as np
import pytest

from repro.baselines import Blogel
from repro.gen import powerlaw_graph
from tests.conftest import reference_pagerank, reference_wcc


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(800, 8000, alpha=2.2, seed=40)


@pytest.fixture(scope="module")
def loaded(graph):
    us, vs, _ = graph
    blogel = Blogel(nodes=8, ranks_per_node=8, seed=1)
    blogel.load(us, vs)
    return blogel


def test_pagerank_exact(loaded, graph):
    us, vs, _ = graph
    result = loaded.pagerank(tol=1e-12, max_iters=25)
    ref, ref_iters = reference_pagerank(us, vs, tol=1e-12, max_iters=25)
    assert result.iterations == ref_iters
    for v, x in ref.items():
        assert result.value_map()[v] == pytest.approx(x, abs=1e-12)


def test_wcc_exact(loaded, graph):
    us, vs, _ = graph
    result = loaded.wcc()
    ref, _ = reference_wcc(us, vs)
    assert {v: int(x) for v, x in result.value_map().items()} == ref


def test_per_iteration_times_positive_and_recorded(loaded):
    result = loaded.pagerank(max_iters=5, tol=1e-15)
    assert len(result.per_iter_seconds) == 5
    assert all(t > 0 for t in result.per_iter_seconds)
    assert result.total_seconds == pytest.approx(sum(result.per_iter_seconds))


def test_wcc_active_set_shrinks_cost(loaded):
    """Later WCC supersteps touch fewer active vertices and cost less."""
    result = loaded.wcc()
    assert result.per_iter_seconds[-1] < result.per_iter_seconds[0]


def test_more_ranks_less_compute_per_iter():
    # Needs a graph large enough that compute dominates the allreduce.
    us, vs, _ = powerlaw_graph(3000, 120_000, alpha=2.3, seed=48)

    def per_iter(ranks_per_node):
        b = Blogel(nodes=8, ranks_per_node=ranks_per_node)
        b.load(us, vs)
        return b.pagerank(max_iters=2, tol=1e-15).mean_iter_seconds

    # More ranks help until the allreduce term dominates — exactly why
    # the paper found 8 ranks/node fastest.
    assert per_iter(8) < per_iter(1)


def test_allreduce_penalizes_huge_rank_counts(graph):
    us, vs, _ = graph

    def per_iter(nodes, rpn):
        b = Blogel(nodes=nodes, ranks_per_node=rpn)
        b.load(us, vs)
        return b.pagerank(max_iters=3, tol=1e-15).mean_iter_seconds

    # On this small graph, 2048 ranks' allreduce exceeds the compute
    # saved relative to 64 ranks.
    assert per_iter(64, 32) > per_iter(8, 8)


def test_voronoi_slower_than_hash(graph):
    us, vs, _ = graph
    hash_b = Blogel(nodes=8, ranks_per_node=8, partitioner="hash")
    hash_b.load(us, vs)
    vor_b = Blogel(nodes=8, ranks_per_node=8, partitioner="voronoi")
    vor_b.load(us, vs)
    assert (
        vor_b.pagerank(max_iters=3, tol=1e-15).mean_iter_seconds
        > hash_b.pagerank(max_iters=3, tol=1e-15).mean_iter_seconds
    )


def test_voronoi_results_still_exact(graph):
    us, vs, _ = graph
    vor = Blogel(nodes=4, ranks_per_node=4, partitioner="voronoi")
    vor.load(us, vs)
    ref, _ = reference_wcc(us, vs)
    assert {v: int(x) for v, x in vor.wcc().value_map().items()} == ref


def test_unknown_partitioner_rejected():
    with pytest.raises(ValueError):
        Blogel(partitioner="metis")


def test_run_before_load_rejected():
    with pytest.raises(RuntimeError):
        Blogel().pagerank()
