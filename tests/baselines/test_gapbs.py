"""GAPbs baseline: Shiloach–Vishkin correctness and COST calibration."""

import numpy as np
import pytest

from repro.baselines import gapbs_wcc
from repro.baselines.gapbs import shiloach_vishkin
from repro.gen import powerlaw_graph
from repro.graph import compact_ids, wcc_labels


def test_components_match_label_propagation():
    us, vs, n = powerlaw_graph(600, 4000, alpha=2.3, seed=44)
    cu, cv, ids = compact_ids(us, vs)
    sv_labels, _ = shiloach_vishkin(cu, cv, len(ids))
    lp_labels, _ = wcc_labels(cu, cv, len(ids))
    # Same partition into components (labels themselves may differ).
    assert len(set(sv_labels.tolist())) == len(set(lp_labels.tolist()))
    mapping = {}
    for a, b in zip(sv_labels, lp_labels):
        assert mapping.setdefault(int(a), int(b)) == int(b)


def test_sv_labels_are_component_minimum():
    labels, _ = shiloach_vishkin(np.array([4, 5]), np.array([5, 6]), 8)
    assert labels[4] == labels[5] == labels[6] == 4
    assert labels[0] == 0


def test_sv_few_passes_on_path_graph():
    """Pointer jumping gives logarithmic passes even on a long path."""
    n = 4096
    us = np.arange(n - 1)
    vs = np.arange(1, n)
    labels, passes = shiloach_vishkin(us, vs, n)
    assert (labels == 0).all()
    assert passes <= 20


def test_gapbs_returns_time_and_labels():
    us, vs, n = powerlaw_graph(500, 3000, alpha=2.3, seed=45)
    labels, seconds = gapbs_wcc(us, vs, n)
    assert seconds > 0
    assert len(labels) == n


def test_time_scales_with_edges():
    us1, vs1, n1 = powerlaw_graph(500, 3000, alpha=2.3, seed=46)
    us2, vs2, n2 = powerlaw_graph(500, 12000, alpha=2.3, seed=46)
    _, t1 = gapbs_wcc(us1, vs1, n1)
    _, t2 = gapbs_wcc(us2, vs2, n2)
    assert t2 > 2 * t1


def test_livejournal_scale_calibration():
    """At LiveJournal scale the model must land near the paper's 0.94 s
    (§4.8) — checked analytically in test_costmodel, sanity-checked
    here end-to-end on a scaled estimate."""
    us, vs, n = powerlaw_graph(1000, 10_000, alpha=2.2, seed=47)
    _, seconds = gapbs_wcc(us, vs, n)
    scale = 69e6 / len(us)
    projected = seconds * scale
    assert 0.2 < projected < 3.0
