"""GraphX baseline: exact algorithms, overhead model, OOM thresholds."""

import numpy as np
import pytest

from repro.baselines import GraphX, graphx_would_oom
from repro.gen import powerlaw_graph
from tests.conftest import reference_pagerank, reference_wcc


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(700, 7000, alpha=2.2, seed=41)


@pytest.fixture(scope="module")
def loaded(graph):
    us, vs, _ = graph
    gx = GraphX(nodes=8, partitioner="rvc")
    gx.load(us, vs)
    return gx


def test_pagerank_exact(loaded, graph):
    us, vs, _ = graph
    result = loaded.pagerank(tol=1e-12, max_iters=20)
    ref, ref_iters = reference_pagerank(us, vs, tol=1e-12, max_iters=20)
    assert result.iterations == ref_iters
    for v, x in ref.items():
        assert result.value_map()[v] == pytest.approx(x, abs=1e-12)


def test_wcc_exact(loaded, graph):
    us, vs, _ = graph
    ref, _ = reference_wcc(us, vs)
    assert {v: int(x) for v, x in loaded.wcc().value_map().items()} == ref


def test_per_iteration_dominated_by_stage_overhead(loaded):
    result = loaded.pagerank(max_iters=3, tol=1e-15)
    # At this scale each Spark iteration is essentially the fixed stage
    # cost — the architectural difference from ElGA/Blogel.
    assert result.mean_iter_seconds >= 0.3


def test_job_includes_startup_teardown(loaded):
    result = loaded.pagerank(max_iters=2, tol=1e-15)
    assert result.job_seconds > result.compute_seconds + 30


def test_all_partitioners_same_results(graph):
    us, vs, _ = graph
    values = []
    for part in ("rvc", "crvc", "2d"):
        gx = GraphX(nodes=4, partitioner=part)
        gx.load(us, vs)
        values.append(gx.wcc().value_map())
    assert values[0] == values[1] == values[2]


def test_incremental_recompute_matches_full(graph):
    """The Figure 15 snapshot-dynamic strategy is exact."""
    us, vs, _ = graph
    gx = GraphX(nodes=4)
    gx.load(us, vs)
    prior = gx.wcc().value_map()
    # Grow the graph by one bridging edge and recompute incrementally.
    new_edge = (int(us[0]), int(vs[-1]))
    us2 = np.concatenate([us, [new_edge[0]]])
    vs2 = np.concatenate([vs, [new_edge[1]]])
    gx2 = GraphX(nodes=4)
    gx2.load(us2, vs2)
    incremental = gx2.wcc_incremental(prior, np.array(new_edge))
    ref, _ = reference_wcc(us2, vs2)
    assert {v: int(x) for v, x in incremental.value_map().items()} == ref


def test_incremental_converges_faster_than_scratch(graph):
    us, vs, _ = graph
    gx = GraphX(nodes=4)
    gx.load(us, vs)
    scratch = gx.wcc()
    prior = scratch.value_map()
    new_edge = (int(us[3]), int(vs[7]))
    us2 = np.concatenate([us, [new_edge[0]]])
    vs2 = np.concatenate([vs, [new_edge[1]]])
    gx2 = GraphX(nodes=4)
    gx2.load(us2, vs2)
    incremental = gx2.wcc_incremental(prior, np.array(new_edge))
    assert incremental.iterations <= scratch.iterations
    # ... but the job still pays the full startup floor (Fig 15's point).
    assert incremental.job_seconds > 30


def test_oom_thresholds_match_paper():
    # GraphX OOMs on Graph500-30 (17 B) and the larger graphs; it runs
    # Twitter-2010 (1.5 B).  CRVC OOMs on almost everything.
    assert graphx_would_oom(17e9)
    assert graphx_would_oom(112e9)
    assert not graphx_would_oom(1.5e9)
    assert graphx_would_oom(8.6e9, partitioner="crvc")
    assert not graphx_would_oom(1.5e9, partitioner="crvc")


def test_unknown_partitioner_rejected():
    with pytest.raises(ValueError):
        GraphX(partitioner="range")


def test_run_before_load_rejected():
    with pytest.raises(RuntimeError):
        GraphX().wcc()
