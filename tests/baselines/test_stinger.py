"""STINGER baseline: dynamic connectivity and batch-latency modes."""

import numpy as np
import pytest

from repro.baselines import Stinger
from repro.gen import powerlaw_graph
from repro.graph import EdgeBatch
from tests.conftest import reference_wcc


def test_components_match_reference():
    us, vs, _ = powerlaw_graph(400, 3000, alpha=2.3, seed=42)
    st = Stinger()
    st.load(us, vs)
    ref, _ = reference_wcc(us, vs)
    labels = st.label_map()
    assert {v: labels[v] for v in ref} == ref


def test_insert_updates_components():
    st = Stinger()
    st.load(np.array([0, 10]), np.array([1, 11]))
    assert st.component_of(0) != st.component_of(10)
    st.insert_batch(EdgeBatch.insertions([1], [10]))
    assert st.component_of(0) == st.component_of(10)
    assert st.n_components() == 1


def test_easy_batch_is_fast_hard_batch_is_slow():
    """The Figure 13 bimodality mechanism: intra-component insertions
    are O(batch); merges pay a relabel + sweep."""
    us, vs, _ = powerlaw_graph(500, 4000, alpha=2.2, seed=43)
    st = Stinger(edge_scale=5000.0)  # model a paper-scale resident graph
    st.load(us, vs)
    # Easy: an edge inside the giant component.
    giant = [v for v in range(500) if st.labels.get(v) == st.component_of(int(us[0]))]
    easy = st.insert_batch(EdgeBatch.insertions([giant[0]], [giant[1]]))
    # Hard: bridge to a brand-new component.
    st.insert_batch(EdgeBatch.insertions([90_001], [90_002]))
    hard = st.insert_batch(EdgeBatch.insertions([giant[0]], [90_001]))
    assert hard > 1.5 * easy


def test_deletions_rejected():
    st = Stinger()
    st.load(np.array([0]), np.array([1]))
    with pytest.raises(ValueError):
        st.insert_batch(EdgeBatch.deletions([0], [1]))


def test_batch_latency_scales_with_size():
    st = Stinger()
    st.load(np.array([0]), np.array([1]))
    small = st.insert_batch(EdgeBatch.insertions([0], [1]))  # duplicate: easy
    us = np.arange(100, 200)
    big = st.insert_batch(EdgeBatch.insertions(us, us + 1000))
    assert big > small


def test_edge_scale_inflates_hard_mode_only():
    def hard_latency(scale):
        st = Stinger(edge_scale=scale)
        st.load(np.arange(100), np.arange(100) + 1)
        return st.insert_batch(EdgeBatch.insertions([5000], [0]))

    assert hard_latency(1000.0) > hard_latency(1.0)
