"""PerfCounters: snapshot key safety and timer clock sources."""

import pytest

from repro.bench.counters import PerfCounters, aggregate_counters
from repro.sim.kernel import SimKernel


def test_snapshot_suffixes_timers():
    c = PerfCounters()
    c.add("hits", 3)
    with c.phase("build"):
        pass
    snap = c.snapshot()
    assert snap["hits"] == 3
    assert snap["build_s"] >= 0.0


def test_snapshot_detects_counter_timer_clash():
    c = PerfCounters()
    c.add("build_s", 1)  # counter that shadows a timer's export key
    with c.phase("build"):
        pass
    with pytest.raises(ValueError, match="collides"):
        c.snapshot()


def test_snapshot_clash_only_when_both_present():
    c = PerfCounters()
    c.add("build_s", 1)
    assert c.snapshot() == {"build_s": 1}  # no timer: no clash


def test_wall_clock_default_is_not_deterministic():
    c = PerfCounters()
    assert not c.deterministic


def test_sim_clock_timers_are_deterministic():
    kernel = SimKernel()
    c = PerfCounters(clock=kernel.clock)
    assert c.deterministic

    def work():
        with c.phase("settle"):
            kernel.schedule(0.25, lambda: None)

    kernel.schedule(1.0, work)
    kernel.run()
    # Sim time cannot advance inside a callback, so the phase measures
    # exactly zero simulated seconds — reproducibly.
    assert c.timers["settle"] == 0.0


def test_sim_clock_phase_across_scheduling():
    kernel = SimKernel()
    c = PerfCounters(clock=kernel.clock)
    start = kernel.clock()
    kernel.schedule(0.5, lambda: None)
    kernel.run()
    with c.phase("outer"):
        kernel.schedule(0.5, lambda: None)
        kernel.run()
    assert c.timers["outer"] == pytest.approx(0.5)
    assert start == 0.0


def test_aggregate_preserves_timers_and_counts():
    a, b = PerfCounters(), PerfCounters()
    a.add("x", 1)
    b.add("x", 2)
    a.timers["t"] = 0.5
    b.timers["t"] = 0.25
    total = aggregate_counters([a, b])
    assert total.counts["x"] == 3
    assert total.timers["t"] == pytest.approx(0.75)
