"""Benchmark output formatting."""

import pytest

from repro.bench import Series, Table, print_experiment_header, t_confidence_interval


def test_table_renders_aligned(capsys):
    t = Table(["graph", "elga", "blogel"])
    t.add_row("twitter", 0.12, 0.3)
    t.add_row("skitter", t_confidence_interval([1.0, 1.1, 0.9]), None)
    text = t.render()
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert "twitter" in lines[2]
    assert "—" in lines[3]  # None renders as em dash
    t.show()
    assert capsys.readouterr().out.rstrip("\n") == text


def test_table_rejects_ragged_rows():
    t = Table(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)


def test_series_collects_and_prints(capsys):
    s = Series("elga", x_name="nodes", y_name="seconds")
    s.add(1, 2.0)
    s.add(2, t_confidence_interval([1.0, 1.0]))
    s.show()
    out = capsys.readouterr().out
    assert "elga" in out and "nodes" in out
    assert s.ys() == [2.0, 1.0]


def test_header(capsys):
    print_experiment_header("Figure 8", "strong scaling")
    out = capsys.readouterr().out
    assert "Figure 8" in out and "strong scaling" in out
