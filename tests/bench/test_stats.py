"""Trial statistics: the paper's 5-trial / t-distribution methodology."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.bench import TrialStats, t_confidence_interval, trials
from repro.bench.stats import welch_t_test


def test_mean_and_interval():
    s = t_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
    assert s.mean == 3.0
    assert s.n == 5
    assert s.ci_low < 3.0 < s.ci_high
    # Closed form: mean ± t_{.975,4} · s/√5.
    sem = np.std([1, 2, 3, 4, 5], ddof=1) / np.sqrt(5)
    t_crit = scipy_stats.t.ppf(0.975, df=4)
    assert s.ci_high == pytest.approx(3.0 + t_crit * sem)


def test_single_sample_collapses():
    s = t_confidence_interval([7.0])
    assert s.mean == s.ci_low == s.ci_high == 7.0


def test_identical_samples_collapse():
    s = t_confidence_interval([2.0, 2.0, 2.0])
    assert s.half_width == 0.0


def test_empty_rejected():
    with pytest.raises(ValueError):
        t_confidence_interval([])


def test_trials_runs_independent_seeds():
    seen = []

    def fn(seed):
        seen.append(seed)
        return float(seed % 7)

    s = trials(fn, n_trials=5, base_seed=3)
    assert len(seen) == len(set(seen)) == 5
    assert s.n == 5


def test_trials_validates():
    with pytest.raises(ValueError):
        trials(lambda s: 0.0, n_trials=0)


def test_str_format():
    s = t_confidence_interval([1.0, 1.2, 0.8])
    text = str(s)
    assert "±" in text


def test_welch_t_test_direction():
    fast = [1.0, 1.1, 0.9, 1.05, 0.95]
    slow = [2.0, 2.1, 1.9, 2.05, 1.95]
    assert welch_t_test(fast, slow) < 0.0005  # "ElGA fastest, p < 0.0005"
    assert welch_t_test(slow, fast) > 0.5


def test_welch_t_test_inconclusive_when_overlapping():
    a = [1.0, 1.5, 0.6, 1.2, 0.9]
    b = [1.1, 1.4, 0.7, 1.3, 0.8]
    assert welch_t_test(a, b) > 0.05  # the paper's Graph500-30 case


def test_welch_t_test_degenerate_zero_variance():
    # Deterministic trials: identical samples on both sides.
    assert welch_t_test([1.0, 1.0], [2.0, 2.0]) == 0.0
    assert welch_t_test([2.0, 2.0], [1.0, 1.0]) == 1.0
    assert welch_t_test([1.0, 1.0], [1.0, 1.0]) == 0.5


def test_welch_t_test_one_degenerate_side_no_warning():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        p = welch_t_test([1.0, 1.0, 1.0], [2.0, 2.1, 1.9])
    assert p < 0.05
