"""Pytest-facing wrapper around the chaos scenario runner.

:mod:`repro.bench.chaos` does the work (engine pair, fault matrix,
invariant checks); this module turns a :class:`~repro.bench.chaos.ChaosReport`
into readable assertion failures and provides the small shared graph
the chaos suite runs on.  Import from here in chaos tests so every test
states the same claim the same way::

    report = assert_chaos_survives(plan)

asserts that, under ``plan``, every program converged bit-identically
to the fault-free reference, the cluster invariants held after every
settle, and — unless the plan genuinely injects nothing — the fabric
actually took abuse (otherwise the scenario proves nothing).
"""

from __future__ import annotations

from repro.bench.chaos import ChaosReport, run_chaos_scenario
from repro.gen import powerlaw_graph

#: The default chaos graph: small enough for a fault-matrix sweep in CI
#: seconds, skewed enough to exercise uneven placement.
CHAOS_GRAPH_SEED = 5


def chaos_graph(n: int = 80, m: int = 320, seed: int = CHAOS_GRAPH_SEED):
    us, vs, _ = powerlaw_graph(n, m, alpha=2.2, seed=seed)
    return us, vs


def assert_chaos_survives(
    plan,
    us=None,
    vs=None,
    expect_faults: bool = True,
    **scenario_kwargs,
) -> ChaosReport:
    """Run one fault plan and assert the full invariant contract."""
    if us is None or vs is None:
        us, vs = chaos_graph()
    report = run_chaos_scenario(us, vs, plan, **scenario_kwargs)
    for program, equal in report.bit_equal.items():
        assert equal, (
            f"{program} diverged from the fault-free reference under "
            f"plan seed {report.plan_seed} (steps={report.steps}, "
            f"drops={report.drops_chaos}, dups={report.messages_duplicated})"
        )
    if expect_faults:
        assert report.faults_injected > 0, (
            f"plan seed {report.plan_seed} injected no faults — "
            "the scenario exercised nothing"
        )
    return report
