"""Property-based chaos: random fault plans x random power-law graphs.

Hypothesis drives the sweep the fixed matrix cannot: arbitrary
drop/dup/reorder probabilities, arbitrary crash steps, arbitrary small
graphs.  The properties are the invariant contract itself — results
bit-equal to the fault-free reference, every reference edge resident
exactly once per copy direction.  Examples are few (each runs two
clusters to convergence) but every failure shrinks to a minimal plan
and replays from its seeds.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import CrashEvent, FaultPlan

from tests.chaos.harness import assert_chaos_survives, chaos_graph

pytestmark = pytest.mark.chaos

fault_plans = st.builds(
    FaultPlan.data_plane_chaos,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    drop_p=st.floats(min_value=0.0, max_value=0.15),
    dup_p=st.floats(min_value=0.0, max_value=0.15),
    reorder_p=st.floats(min_value=0.0, max_value=0.3),
    delay_p=st.floats(min_value=0.0, max_value=0.1),
    crashes=st.lists(
        st.builds(CrashEvent, after_step=st.integers(min_value=1, max_value=4)),
        max_size=1,
    ),
)

graphs = st.builds(
    chaos_graph,
    n=st.integers(min_value=30, max_value=90),
    m=st.integers(min_value=120, max_value=360),
    seed=st.integers(min_value=0, max_value=1000),
)

slow_settings = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@slow_settings
@given(plan=fault_plans, graph=graphs)
def test_random_plan_random_graph_bit_equal(plan, graph):
    """Any data-plane plan on any small power-law graph: bit-equal
    results and conserved edges (checked inside the scenario runner)."""
    us, vs = graph
    assert_chaos_survives(plan, us, vs, expect_faults=False)


@slow_settings
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    drop_p=st.floats(min_value=0.3, max_value=0.6),
)
def test_extreme_loss_still_converges(seed, drop_p):
    """Even 30-60% data loss only slows the run down — the retransmit
    layer (with backoff headroom) eventually lands every message."""
    plan = FaultPlan.data_plane_chaos(seed=seed, drop_p=drop_p, dup_p=0.0)
    report = assert_chaos_survives(
        plan, expect_faults=False, max_retries=60
    )
    if report.drops_chaos:
        assert report.messages_retried > 0
