"""Crash-recovery acceptance: abrupt agent death under data-plane chaos.

The claim under test is the PR's tentpole contract: an Agent killed
mid-PageRank — detached from the fabric with no drain, while the
reliable transport underneath is dropping 5% and duplicating 5% of data
traffic — is detected by heartbeat leases, evicted by the directory,
and replaced from its durable checkpoint + WAL; the run then converges
**bit-identical** to a fault-free reference, with edge conservation and
directory-epoch monotonicity holding at every settle.

All seeds are fixed; recovery itself must be deterministic (same seed
and fault plan ⇒ the same eviction, the same replacement id, the same
replay counts).
"""

import pytest

from repro.core import PageRank
from repro.net.faults import CrashEvent, FaultPlan
from tests.chaos.harness import assert_chaos_survives, chaos_graph

pytestmark = [pytest.mark.chaos, pytest.mark.recovery]

#: Failure detection + checkpointing knobs every scenario here shares.
#: Heartbeats every 5 ms against a 25 ms lease; checkpoint every 2
#: supersteps so a rollback step always exists by mid-run.
RECOVERY_CONFIG = dict(
    heartbeat_interval=0.005,
    lease_timeout=0.025,
    checkpoint_every=2,
)


def crash_plan(seed: int = 0, after_step: int = 3) -> FaultPlan:
    """5% drop + 5% dup on the data plane, one abrupt kill mid-run."""
    return FaultPlan.data_plane_chaos(
        seed=seed,
        drop_p=0.05,
        dup_p=0.05,
        crashes=[CrashEvent(after_step=after_step, abrupt=True)],
    )


def test_abrupt_crash_mid_pagerank_recovers_bit_identical():
    """The headline acceptance scenario (checkpoint rollback path)."""
    report = assert_chaos_survives(
        crash_plan(seed=21),
        programs=[PageRank(max_iters=12)],
        **RECOVERY_CONFIG,
    )
    assert report.crash_plan == {3: 1}
    assert report.recoveries == 1
    events = {e["event"] for e in report.recovery_log}
    assert events == {"crash", "recover", "replace"}
    recover = next(e for e in report.recovery_log if e["event"] == "recover")
    assert recover["mode"] == "rollback"
    assert recover["step"] >= 1  # rolled back to a real checkpoint


def test_recovery_then_second_program_still_converges():
    """After a crash-recovery cycle the cluster is healthy: a second
    program (WCC, the harness default) runs on the recovered membership
    and also matches its reference bit-for-bit."""
    report = assert_chaos_survives(crash_plan(seed=33), **RECOVERY_CONFIG)
    assert report.recoveries == 1
    assert len(report.bit_equal) == 2 and report.ok


def test_recovery_is_deterministic_per_seed():
    """Same seed, same plan ⇒ the identical recovery trace: crash time,
    eviction, recovery mode and step, replacement id, WAL replay and
    edge-restore counts."""
    kwargs = dict(programs=[PageRank(max_iters=10)], **RECOVERY_CONFIG)
    first = assert_chaos_survives(crash_plan(seed=5), **kwargs)
    second = assert_chaos_survives(crash_plan(seed=5), **kwargs)
    assert first.recovery_log == second.recovery_log
    assert first.recoveries == 1


def test_crash_without_checkpoints_degrades_to_restart():
    """``checkpoint_every=0``: no rollback point exists, so recovery
    must degrade gracefully — restart the run from WAL-restored edges
    and pre-run values — rather than deadlock the barrier."""
    report = assert_chaos_survives(
        crash_plan(seed=8),
        programs=[PageRank(max_iters=12)],
        heartbeat_interval=0.005,
        lease_timeout=0.025,
        checkpoint_every=0,
    )
    assert report.recoveries == 1
    recover = next(e for e in report.recovery_log if e["event"] == "recover")
    assert recover["mode"] == "restart"
    assert recover["step"] == 0


def test_crash_plan_requires_failure_detection():
    """A crash plan with heartbeats disabled is a configuration error,
    not a deadlock: the engine refuses up front."""
    import numpy as np

    from repro.core import ElGA

    elga = ElGA(nodes=2, agents_per_node=2, seed=1)
    us, vs = chaos_graph(n=20, m=60)
    elga.ingest_edges(np.asarray(us), np.asarray(vs))
    with pytest.raises(ValueError, match="heartbeat"):
        elga.run(PageRank(max_iters=5), crash_plan={2: 1})
