"""Control-plane fault tolerance acceptance: lead failover under chaos.

The tentpole contract: the lead Directory killed abruptly mid-PageRank
— while the reliable transport drops 5% and duplicates 5% of data
traffic — lapses its lease, the lowest-index live peer succeeds under a
bumped term, reconstructs the barrier from its mirror plus the agents'
re-reported READYs, and the run converges **bit-identical** to a
fault-free reference.  The same holds with a concurrent Agent crash
(election and checkpoint recovery composing), the DirectoryMaster can
die and restart mid-run, the serving plane reads zero stale values
across the failover, and the whole election trace is a deterministic
function of the seed.
"""

import pytest

from repro.bench.chaos import (
    fault_matrix,
    run_serving_chaos_scenario,
    serving_chaos_plan,
)
from repro.core import PageRank
from repro.net.faults import CrashEvent, FaultPlan
from tests.chaos.harness import assert_chaos_survives, chaos_graph

pytestmark = [pytest.mark.chaos, pytest.mark.ctrlplane]


def lead_crash_plan(seed: int = 0, after_step: int = 3, **extra) -> FaultPlan:
    """5% drop + 5% dup on the data plane, lead Directory killed mid-run."""
    crashes = [CrashEvent(after_step=after_step, abrupt=True, target="directory")]
    crashes += extra.pop("crashes", [])
    return FaultPlan.data_plane_chaos(
        seed=seed, drop_p=0.05, dup_p=0.05, crashes=crashes, **extra
    )


def test_lead_crash_mid_pagerank_converges_bit_identical():
    """The headline scenario: abrupt lead kill under data-plane chaos."""
    report = assert_chaos_survives(
        lead_crash_plan(seed=31),
        programs=[PageRank(max_iters=12)],
    )
    assert report.elections == 1
    assert report.lead_elections == 1
    crash = next(e for e in report.recovery_log if e["event"] == "directory_crash")
    assert crash["lead"] is True
    elected = next(e for e in report.recovery_log if e["event"] == "lead_elected")
    # Deterministic succession: the lowest-index survivor takes term 1.
    assert elected["index"] == 1
    assert elected["term"] == 1


def test_lead_crash_with_concurrent_agent_crash():
    """Election and checkpoint recovery compose: the lead dies at step
    3, an Agent dies at step 4, and the successor lead must detect,
    evict, and recover the agent it never held a lease for."""
    plan = FaultPlan.data_plane_chaos(
        seed=32,
        drop_p=0.05,
        dup_p=0.05,
        crashes=[
            CrashEvent(after_step=3, abrupt=True, target="directory"),
            CrashEvent(after_step=4, abrupt=True),
        ],
    )
    report = assert_chaos_survives(plan, programs=[PageRank(max_iters=12)])
    assert report.elections == 1
    assert report.recoveries == 1
    events = [e["event"] for e in report.recovery_log]
    assert events.index("lead_elected") < events.index("recover")


def test_master_crash_and_restart_mid_run():
    """The DirectoryMaster dies mid-run and restarts with an empty
    registry; the run completes and the registry rebuilds from the
    directories' periodic re-registration."""
    report = assert_chaos_survives(
        fault_matrix(seed=0)["master-crash"],
        programs=[PageRank(max_iters=12)],
    )
    events = [e["event"] for e in report.recovery_log]
    assert events == ["master_crash", "master_restart"]


def test_fault_matrix_control_entries_survive():
    """The matrix's lead-crash entry holds the bit-identical claim for
    PageRank + WCC back-to-back (the second program runs under the
    successor's term)."""
    report = assert_chaos_survives(fault_matrix(seed=0)["lead-crash"])
    assert report.elections == 1
    assert set(report.bit_equal) == {"pagerank", "wcc"}


def test_serving_zero_stale_reads_across_lead_failover():
    """Queries in flight while the lead dies: none lost, none answered
    stale — after the run every vertex read through a proxy equals the
    converged fixpoint exactly."""
    us, vs = chaos_graph()
    report = run_serving_chaos_scenario(
        us,
        vs,
        serving_chaos_plan(seed=33, after_step=3, target="directory"),
        rate=1500.0,
        duration=0.4,
    )
    assert report.ok, (
        f"serving failover failed: bit_equal={report.bit_equal} "
        f"outstanding={report.outstanding} dropped={report.dropped} "
        f"stale={report.post_run_mismatches}"
    )
    assert report.lead_elections == 1
    assert report.delivered == report.submitted - report.shed


def test_election_trace_is_deterministic_per_seed():
    """Same seed, same plan ⇒ byte-equal recovery logs (crash times,
    successor index, term sequence) across independent runs."""
    traces = []
    for _ in range(2):
        report = assert_chaos_survives(
            lead_crash_plan(seed=34), programs=[PageRank(max_iters=10)]
        )
        traces.append(report.recovery_log)
    assert traces[0] == traces[1]
