"""Combining determinism under data-plane chaos.

The fast path's referee: with drops, duplicates, and reordering all
active, a combining cluster must converge bit-identically to (a) its
own fault-free reference and (b) a fault-free cluster that never
combined at all.  Split vertices are forced (low replication
threshold) so the replica sync/value choreography runs through the
coalesced path too.
"""

import pytest

from repro.bench.chaos import FaultPlan
from repro.core import ElGA, PageRank
from repro.core.algorithms import WCC

from .harness import assert_chaos_survives, chaos_graph

pytestmark = [pytest.mark.chaos, pytest.mark.dataplane]

SPLIT_THRESHOLD = 40  # low enough that chaos_graph's hubs split


def _plan(seed: int) -> FaultPlan:
    return FaultPlan.data_plane_chaos(
        seed=seed, drop_p=0.05, dup_p=0.08, reorder_p=0.25
    )


@pytest.mark.parametrize("plan_seed", [3, 11])
def test_combining_survives_drop_dup_reorder(plan_seed):
    """Chaos run (combining on, default) == fault-free reference,
    bitwise, for both the sum (PageRank) and min (WCC) aggregators."""
    report = assert_chaos_survives(
        _plan(plan_seed),
        programs=[PageRank(max_iters=12), WCC()],
        replication_threshold=SPLIT_THRESHOLD,
    )
    assert report.faults_injected > 0


def test_chaotic_combining_matches_faultfree_uncombined():
    """The strongest claim: a combining cluster under chaos produces
    the exact bits of a pristine cluster with the fast path fully off."""
    us, vs = chaos_graph()
    plain = ElGA(
        nodes=2,
        agents_per_node=2,
        seed=9,
        replication_threshold=SPLIT_THRESHOLD,
        combining=False,
        coalescing=True,
    )
    fast = ElGA(
        nodes=2,
        agents_per_node=2,
        seed=9,
        replication_threshold=SPLIT_THRESHOLD,
        reliable_transport=True,
    )
    fast.cluster.network.install_faults(_plan(7))
    plain.ingest_edges(us, vs)
    fast.ingest_edges(us, vs)
    for make in (lambda: PageRank(max_iters=12), WCC):
        r_plain = plain.run(make())
        r_fast = fast.run(make())
        assert r_fast.values == r_plain.values  # bitwise on floats
    assert any(
        a.metrics.pairs_combined > 0 for a in fast.cluster.agents.values()
    ), "combining never fired under chaos"
    assert any(
        a.metrics.replica_syncs > 0 for a in fast.cluster.agents.values()
    ), "no split vertices — the replica choreography went untested"


def test_fault_seed_does_not_leak_into_results():
    """Different fault schedules (same cluster seed) give identical
    bits: delivery order cannot reach the reduction tree."""
    results = []
    for plan_seed in (13, 21):
        us, vs = chaos_graph()
        engine = ElGA(
            nodes=2,
            agents_per_node=2,
            seed=9,
            replication_threshold=SPLIT_THRESHOLD,
            reliable_transport=True,
        )
        engine.cluster.network.install_faults(_plan(plan_seed))
        engine.ingest_edges(us, vs)
        results.append(engine.run(PageRank(max_iters=12)).values)
    assert results[0] == results[1]
