"""Chaos ride-along for the incremental delta engine.

The contract: an agent abruptly killed *mid-delta-run* — while the run
is converging from the previous fixpoint with only a frontier active —
is detected, evicted, and replaced from its durable state (checkpoint
rollback or WAL-replay restart), and the recovered run's result is
**bit-identical** to the fault-free incremental run on the same stream.
Warm-start state (persisted fixpoint values, residual baselines, dirty
mutation rows) must therefore survive the crash intact.
"""

import numpy as np
import pytest

from repro.core import ElGA, PageRank
from repro.graph import EdgeBatch

pytestmark = [pytest.mark.chaos, pytest.mark.recovery, pytest.mark.incremental]

RECOVERY_CONFIG = dict(
    heartbeat_interval=0.005,
    lease_timeout=0.025,
    checkpoint_every=2,
)


def _incremental_run(crash_plan=None, checkpoint_every=2):
    """Fixpoint -> insert batch -> incremental delta run (maybe crashed)."""
    config = dict(RECOVERY_CONFIG, checkpoint_every=checkpoint_every)
    elga = ElGA(nodes=2, agents_per_node=2, seed=29, **config)
    us = np.concatenate([np.arange(40), np.array([0, 5, 11])])
    vs = np.concatenate([(np.arange(40) + 1) % 40, np.array([20, 30, 4])])
    elga.ingest_edges(us, vs)
    pr = PageRank(max_iters=200, tol=1e-8)
    elga.run(pr)
    elga.apply_batch(EdgeBatch.insertions([7, 25], [19, 2]))
    result = elga.run(pr, incremental=True, crash_plan=crash_plan)
    return elga, result


def test_crash_mid_delta_run_recovers_bit_identical():
    _, fault_free = _incremental_run()
    elga, recovered = _incremental_run(crash_plan={3: 1})
    assert fault_free.strategy == recovered.strategy == "delta"
    assert len(elga.cluster.recovery_log) >= 2  # crash + recover events
    recover = next(
        e for e in elga.cluster.recovery_log if e["event"] == "recover"
    )
    assert recover["mode"] == "rollback"
    assert recovered.values == fault_free.values  # bit-identical


def test_crash_mid_delta_run_without_checkpoints_restarts_bit_identical():
    """WAL-only degradation: with no rollback point the delta run is
    restarted from persisted warm-start state and still lands on the
    identical answer."""
    _, fault_free = _incremental_run(checkpoint_every=0)
    elga, recovered = _incremental_run(crash_plan={1: 1}, checkpoint_every=0)
    assert fault_free.strategy == recovered.strategy == "delta"
    recover = next(
        e for e in elga.cluster.recovery_log if e["event"] == "recover"
    )
    assert recover["mode"] == "restart"
    assert recovered.values == fault_free.values
